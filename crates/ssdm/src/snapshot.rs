//! Memory-snapshot persistence.
//!
//! SSDM is a main-memory DBMS: "a memory snapshot can typically be
//! dumped to disk and loaded back to memory in order to survive the
//! server restarts" (thesis §2.2.3). A snapshot holds the default and
//! named graphs (N-Triples, with resident arrays expanded to collection
//! lists and re-consolidated on load) plus the external-array catalog.
//! Chunk payloads are *not* in the snapshot — they live in the
//! back-end, which is durable on its own for the file and
//! relational-file configurations.
//!
//! Durability integration (see [`crate::durability`]):
//!
//! * Snapshots are published **atomically**: temp file in the same
//!   directory, `fsync`, rename over the target, directory `fsync`. A
//!   crash mid-save leaves either the old snapshot or the new one,
//!   never a torn mix.
//! * Loads **parse first, commit second**: the file is decoded into
//!   fresh graphs before anything in the engine changes, so a corrupt
//!   or truncated snapshot leaves the instance exactly as it was.
//! * A checkpoint snapshot carries a `[wal N]` line — the WAL LSN up to
//!   which its state is already included; recovery replays only records
//!   at or above it.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use scisparql::QueryError;
use ssdm_array::NumericType;
use ssdm_rdf::Graph;
use ssdm_storage::{ArrayMeta, ChunkSummary, Chunking, ZoneMap};

use crate::Ssdm;

const MAGIC: &str = "SSDM-SNAPSHOT v1";

/// Everything a snapshot file decodes to, built before any of it is
/// committed to an engine instance.
pub(crate) struct SnapshotContents {
    /// WAL LSN already reflected in this snapshot (`[wal N]` line);
    /// 0 for plain `.save` snapshots.
    pub(crate) wal_lsn: u64,
    metas: Vec<ArrayMeta>,
    /// Chunk-summary zone maps (`zm` catalog lines), keyed by array id.
    /// Restored after the catalog link so skipping survives restarts
    /// without re-reading any chunk.
    zone_maps: HashMap<u64, Vec<ChunkSummary>>,
    /// Planner calibration entries (`cal` catalog lines):
    /// `(predicate, ln_factor, samples)`. The learned per-predicate
    /// cardinality corrections survive restarts instead of the planner
    /// re-learning them from scratch.
    calibration: Vec<(String, f64, u64)>,
    default_graph: Graph,
    named: HashMap<String, Graph>,
}

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target, best-effort directory fsync.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("snapshot path has no file name"))?;
    let tmp = path.with_file_name(format!("{}.tmp", name.to_string_lossy()));
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        // Make the rename itself durable. Filesystems that cannot sync
        // a directory handle set the durability ceiling, not us.
        if let Ok(handle) = std::fs::File::open(dir) {
            let _ = handle.sync_all();
        }
    }
    Ok(())
}

impl Ssdm {
    /// Serialize the instance's graphs and array catalog to a file
    /// (atomically — see the module docs).
    pub fn save_snapshot(&self, path: &Path) -> Result<(), QueryError> {
        self.save_snapshot_with_lsn(path, None)
    }

    /// As [`Ssdm::save_snapshot`], embedding the WAL LSN this snapshot
    /// covers (checkpointing's half of the recovery contract).
    pub(crate) fn save_snapshot_with_lsn(
        &self,
        path: &Path,
        wal_lsn: Option<u64>,
    ) -> Result<(), QueryError> {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        if let Some(lsn) = wal_lsn {
            writeln!(out, "[wal {lsn}]").expect("string write");
        }
        out.push_str("[catalog]\n");
        let mut metas: Vec<_> = self.dataset.arrays.catalog().collect();
        metas.sort_by_key(|m| m.array_id);
        for m in metas {
            let ty = match m.numeric_type {
                NumericType::Int => "int",
                NumericType::Real => "real",
            };
            let shape = m
                .shape
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("x");
            // A fifth token marks arrays stored as SCC1 codec frames;
            // older four-token lines read back as raw (`encoded:
            // false`), so pre-codec snapshots keep loading.
            if m.encoded {
                writeln!(
                    out,
                    "{} {} {} {} scc1",
                    m.array_id, ty, shape, m.chunking.chunk_bytes
                )
                .expect("string write");
            } else {
                writeln!(
                    out,
                    "{} {} {} {}",
                    m.array_id, ty, shape, m.chunking.chunk_bytes
                )
                .expect("string write");
            }
            // Persist the chunk-summary zone map so predicate-driven
            // skipping works immediately after a restart, without
            // touching the back-end: one `count:nulls:min:max` cell
            // per chunk (bit patterns, so NaN/-0.0 survive exactly).
            if let Some(zm) = self.dataset.arrays.zone_map(m.array_id) {
                let cells = zm
                    .summaries
                    .iter()
                    .map(|s| format!("{}:{}:{}:{}", s.count, s.nulls, s.min_bits, s.max_bits))
                    .collect::<Vec<_>>()
                    .join(",");
                writeln!(out, "zm {} {}", m.array_id, cells).expect("string write");
            }
        }
        // Persist the planner's learned per-predicate corrections:
        // `cal <ln_factor bits> <samples> <predicate>` — the factor as
        // an f64 bit pattern (exact round trip), the predicate last so
        // unusual IRIs cannot confuse the tokenizer.
        let mut cal: Vec<_> = self.dataset.calibration.export().collect();
        cal.sort_by(|a, b| a.0.cmp(b.0));
        for (predicate, ln_factor, samples) in cal {
            writeln!(out, "cal {} {} {}", ln_factor.to_bits(), samples, predicate)
                .expect("string write");
        }
        out.push_str("[graph]\n");
        out.push_str(&graph_to_block(&self.dataset.graph));
        let mut names: Vec<&String> = self.dataset.named_graphs.keys().collect();
        names.sort();
        for name in names {
            writeln!(out, "[graph {name}]").expect("string write");
            out.push_str(&graph_to_block(&self.dataset.named_graphs[name]));
        }
        atomic_write(path, out.as_bytes())
            .map_err(|e| QueryError::Eval(format!("cannot write snapshot: {e}")))
    }

    /// Load a snapshot into this instance, replacing its graphs and
    /// catalog. The back-end must already contain the chunk data the
    /// catalog references (e.g. a reopened file store). The file is
    /// fully parsed before the instance is touched, so an error leaves
    /// the engine unchanged.
    pub fn load_snapshot(&mut self, path: &Path) -> Result<(), QueryError> {
        self.load_snapshot_contents(path).map(|_| ())
    }

    /// [`Ssdm::load_snapshot`] returning the snapshot's WAL LSN, for
    /// the recovery driver.
    pub(crate) fn load_snapshot_contents(&mut self, path: &Path) -> Result<u64, QueryError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| QueryError::Eval(format!("cannot read snapshot: {e}")))?;
        let contents = parse_snapshot(&text)?;
        let wal_lsn = contents.wal_lsn;
        // Commit phase: plain moves and catalog links, nothing fallible.
        self.dataset.graph = contents.default_graph;
        self.dataset.named_graphs = contents.named;
        let mut calibration = scisparql::Calibration::default();
        for (predicate, ln_factor, samples) in &contents.calibration {
            calibration.restore(predicate, *ln_factor, *samples);
        }
        self.dataset.calibration = calibration;
        let mut zone_maps = contents.zone_maps;
        for meta in contents.metas {
            let ty = meta.numeric_type;
            let array_id = meta.array_id;
            self.dataset.arrays.link_external(meta);
            if let Some(summaries) = zone_maps.remove(&array_id) {
                self.dataset
                    .arrays
                    .set_zone_map(array_id, ZoneMap { ty, summaries });
            }
        }
        Ok(wal_lsn)
    }
}

/// Decode one `zm <id> <count:nulls:min:max>,...` catalog line into an
/// array id plus its per-chunk summaries. A two-token line (an array
/// with zero chunks) decodes to an empty summary list.
fn parse_zone_map_line(parts: &[&str]) -> Result<(u64, Vec<ChunkSummary>), QueryError> {
    if parts.len() < 2 || parts.len() > 3 {
        return Err(QueryError::Eval("malformed zone-map line".into()));
    }
    let id: u64 = parts[1]
        .parse()
        .map_err(|_| QueryError::Eval("bad zone-map array id".into()))?;
    let mut summaries = Vec::new();
    if let Some(cells) = parts.get(2) {
        for cell in cells.split(',') {
            let fields: Vec<&str> = cell.split(':').collect();
            if fields.len() != 4 {
                return Err(QueryError::Eval(format!("malformed zone-map cell {cell}")));
            }
            let parse = |s: &str| -> Result<u64, QueryError> {
                s.parse()
                    .map_err(|_| QueryError::Eval("bad zone-map number".into()))
            };
            summaries.push(ChunkSummary {
                count: parse(fields[0])?,
                nulls: parse(fields[1])?,
                min_bits: parse(fields[2])?,
                max_bits: parse(fields[3])?,
            });
        }
    }
    Ok((id, summaries))
}

/// Decode one `cal <ln_factor bits> <samples> <predicate>` body (the
/// part after the `cal ` tag) into a calibration entry. The predicate
/// is everything after the second token, preserved verbatim.
fn parse_calibration_line(rest: &str) -> Result<(String, f64, u64), QueryError> {
    let mut it = rest.splitn(3, ' ');
    let bits: u64 = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| QueryError::Eval("bad calibration factor bits".into()))?;
    let samples: u64 = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| QueryError::Eval("bad calibration sample count".into()))?;
    let predicate = it
        .next()
        .filter(|p| !p.is_empty())
        .ok_or_else(|| QueryError::Eval("calibration line has no predicate".into()))?;
    Ok((predicate.to_string(), f64::from_bits(bits), samples))
}

/// Decode a snapshot file into fresh graphs and a catalog list, without
/// touching any engine state.
fn parse_snapshot(text: &str) -> Result<SnapshotContents, QueryError> {
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return Err(QueryError::Eval("not an SSDM snapshot".into()));
    }
    let mut contents = SnapshotContents {
        wal_lsn: 0,
        metas: Vec::new(),
        zone_maps: HashMap::new(),
        calibration: Vec::new(),
        default_graph: Graph::new(),
        named: HashMap::new(),
    };
    let mut header = lines.next();
    if let Some(lsn) = header
        .and_then(|l| l.strip_prefix("[wal "))
        .and_then(|rest| rest.strip_suffix(']'))
    {
        contents.wal_lsn = lsn
            .parse()
            .map_err(|_| QueryError::Eval("bad snapshot wal lsn".into()))?;
        header = lines.next();
    }
    if header != Some("[catalog]") {
        return Err(QueryError::Eval("malformed snapshot: no catalog".into()));
    }
    // `None` = catalog section, `Some(None)` = default graph,
    // `Some(Some(name))` = named graph.
    let mut section: Option<Option<String>> = None;
    let mut block = String::new();
    let flush = |contents: &mut SnapshotContents,
                 section: &Option<Option<String>>,
                 block: &str|
     -> Result<(), QueryError> {
        if let Some(target) = section {
            let graph = match target {
                None => &mut contents.default_graph,
                Some(name) => contents.named.entry(name.clone()).or_default(),
            };
            ssdm_rdf::turtle::parse_into(graph, block)?;
            // Restore consolidated arrays and external references.
            ssdm_rdf::consolidate_collections(graph);
            relink_array_refs(graph);
        }
        Ok(())
    };
    for line in lines {
        if let Some(rest) = line.strip_prefix("[graph") {
            flush(&mut contents, &section, &block)?;
            block.clear();
            let name = rest.trim_end_matches(']').trim();
            section = Some(if name.is_empty() {
                None
            } else {
                Some(name.to_string())
            });
            continue;
        }
        if section.is_none() {
            // Catalog line: `id type shape chunk_bytes [scc1]`, or a
            // zone-map line `zm id count:nulls:min:max,...`.
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.first() == Some(&"zm") {
                let (id, summaries) = parse_zone_map_line(&parts)?;
                contents.zone_maps.insert(id, summaries);
                continue;
            }
            if let Some(rest) = line.strip_prefix("cal ") {
                contents.calibration.push(parse_calibration_line(rest)?);
                continue;
            }
            if parts.len() != 4 && parts.len() != 5 {
                if line.trim().is_empty() {
                    continue;
                }
                return Err(QueryError::Eval(format!("malformed catalog line: {line}")));
            }
            let id: u64 = parts[0]
                .parse()
                .map_err(|_| QueryError::Eval("bad catalog id".into()))?;
            let ty = match parts[1] {
                "int" => NumericType::Int,
                "real" => NumericType::Real,
                other => return Err(QueryError::Eval(format!("bad catalog type {other}"))),
            };
            let shape: Vec<usize> = if parts[2].is_empty() {
                Vec::new()
            } else {
                parts[2]
                    .split('x')
                    .map(|d| d.parse().map_err(|_| QueryError::Eval("bad shape".into())))
                    .collect::<Result<_, _>>()?
            };
            let chunk_bytes: usize = parts[3]
                .parse()
                .map_err(|_| QueryError::Eval("bad chunk size".into()))?;
            let encoded = match parts.get(4) {
                None => false,
                Some(&"scc1") => true,
                Some(other) => {
                    return Err(QueryError::Eval(format!("bad catalog codec tag {other}")))
                }
            };
            let total: usize = shape.iter().product();
            contents.metas.push(ArrayMeta {
                array_id: id,
                numeric_type: ty,
                shape,
                chunking: Chunking::new(chunk_bytes, total),
                encoded,
            });
        } else {
            block.push_str(line);
            block.push('\n');
        }
    }
    flush(&mut contents, &section, &block)?;
    Ok(contents)
}

/// Serialize one graph as N-Triples (arrays expand to lists; external
/// references render as `urn:ssdm:array:N`).
fn graph_to_block(graph: &Graph) -> String {
    ssdm_rdf::ntriples::serialize(graph)
}

/// Convert `urn:ssdm:array:N` URIs back into `Term::ArrayRef(N)`.
fn relink_array_refs(graph: &mut Graph) {
    use ssdm_rdf::Term;
    let refs: Vec<(ssdm_rdf::TermId, u64)> = graph
        .iter()
        .filter_map(|t| match graph.term(t.o) {
            Term::Uri(u) => u
                .strip_prefix("urn:ssdm:array:")
                .and_then(|n| n.parse::<u64>().ok())
                .map(|id| (t.o, id)),
            _ => None,
        })
        .collect();
    // Rewrite every triple whose object is such a URI.
    let mut rewrites = Vec::new();
    for (uri_id, array_id) in refs {
        for t in graph.iter().filter(|t| t.o == uri_id).collect::<Vec<_>>() {
            rewrites.push((t, array_id));
        }
    }
    for (t, array_id) in rewrites {
        graph.remove_ids(t.s, t.p, t.o);
        let new_o = graph.intern(Term::ArrayRef(array_id));
        graph.insert_ids(t.s, t.p, new_o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Backend;
    use ssdm_storage::ChunkStore;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ssdm-snap-{}-{name}", std::process::id()))
    }

    #[test]
    fn snapshot_round_trip_resident() {
        let path = tmp("resident");
        let mut db = Ssdm::open(Backend::Memory);
        db.load_turtle(
            r#"@prefix ex: <http://e#> .
               ex:a ex:name "x" ; ex:v (1 2 3) ."#,
        )
        .unwrap();
        db.load_turtle_named("http://g1", "<http://s> <http://p> 5 .")
            .unwrap();
        db.save_snapshot(&path).unwrap();

        let mut back = Ssdm::open(Backend::Memory);
        back.load_snapshot(&path).unwrap();
        assert_eq!(back.dataset.graph.len(), 2);
        assert_eq!(back.dataset.named_graphs.len(), 1);
        let rows = back
            .query("PREFIX ex: <http://e#> SELECT (array_sum(?v) AS ?s) WHERE { ex:a ex:v ?v }")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows[0][0].as_ref().unwrap().to_string(), "6");
        let rows = back
            .query("SELECT ?o WHERE { GRAPH <http://g1> { ?s <http://p> ?o } }")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows[0][0].as_ref().unwrap().to_string(), "5");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_round_trip_external_arrays() {
        let dir = tmp("files");
        let path = tmp("external.snap");
        {
            let mut db = Ssdm::open(Backend::File(dir.clone()));
            db.set_externalize_threshold(2, 32);
            db.load_turtle(r#"@prefix ex: <http://e#> . ex:r ex:data (10 20 30 40 50) ."#)
                .unwrap();
            db.save_snapshot(&path).unwrap();
        }
        // A fresh instance over the SAME file back-end directory.
        let mut back = Ssdm::open(Backend::File(dir.clone()));
        // Re-register the array files (the file store tracks open handles
        // per array; a reopened store re-declares them through the
        // snapshot catalog + begin_array metadata).
        back.load_snapshot(&path).unwrap();
        // The file back-end needs its per-array handles reopened:
        for meta in back.dataset.arrays.catalog().cloned().collect::<Vec<_>>() {
            // Re-opening truncates; instead verify catalog+graph state and
            // reload content through a memory copy below.
            let _ = meta;
        }
        // Graph state restored with an ArrayRef object.
        let p = back
            .dataset
            .graph
            .dictionary()
            .lookup(&ssdm_rdf::Term::uri("http://e#data"))
            .unwrap();
        let t = back
            .dataset
            .graph
            .match_pattern(None, Some(p), None)
            .next()
            .unwrap();
        assert!(matches!(
            back.dataset.graph.term(t.o),
            ssdm_rdf::Term::ArrayRef(_)
        ));
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, "not a snapshot").unwrap();
        let mut db = Ssdm::open(Backend::Memory);
        assert!(db.load_snapshot(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_snapshot_leaves_engine_unchanged() {
        let good = tmp("atomic-good");
        let bad = tmp("atomic-bad");
        let mut db = Ssdm::open(Backend::Memory);
        db.load_turtle("<http://s> <http://p> 1 .").unwrap();
        db.load_turtle_named("http://g", "<http://s2> <http://p2> 2 .")
            .unwrap();
        db.save_snapshot(&good).unwrap();
        // A snapshot truncated mid-triple: valid header, broken body.
        let mut text = std::fs::read_to_string(&good).unwrap();
        text.truncate(text.len() - 3);
        std::fs::write(&bad, &text).unwrap();
        assert!(db.load_snapshot(&bad).is_err());
        // The failed load must not have cleared or half-replaced state.
        assert_eq!(db.dataset.graph.len(), 1);
        assert_eq!(db.dataset.named_graphs.len(), 1);
        let rows = db
            .query("SELECT ?o WHERE { <http://s> <http://p> ?o }")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows[0][0].as_ref().unwrap().to_string(), "1");
        std::fs::remove_file(&good).ok();
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn save_leaves_no_temp_file_and_replaces_atomically() {
        let path = tmp("atomic-replace");
        let mut db = Ssdm::open(Backend::Memory);
        db.load_turtle("<http://s> <http://p> 1 .").unwrap();
        db.save_snapshot(&path).unwrap();
        db.load_turtle("<http://s> <http://p> 2 .").unwrap();
        db.save_snapshot(&path).unwrap();
        let tmp_path = path.with_file_name(format!(
            "{}.tmp",
            path.file_name().unwrap().to_string_lossy()
        ));
        assert!(!tmp_path.exists(), "temp file must be renamed away");
        let mut back = Ssdm::open(Backend::Memory);
        back.load_snapshot(&path).unwrap();
        assert_eq!(back.dataset.graph.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wal_lsn_line_round_trips_and_plain_snapshots_have_none() {
        let path = tmp("wal-lsn");
        let mut db = Ssdm::open(Backend::Memory);
        db.load_turtle("<http://s> <http://p> 1 .").unwrap();
        db.save_snapshot_with_lsn(&path, Some(42)).unwrap();
        let mut back = Ssdm::open(Backend::Memory);
        assert_eq!(back.load_snapshot_contents(&path).unwrap(), 42);
        assert_eq!(back.dataset.graph.len(), 1);
        db.save_snapshot(&path).unwrap();
        assert_eq!(back.load_snapshot_contents(&path).unwrap(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn calibration_table_round_trips_exactly() {
        let path = tmp("calibration");
        let mut db = Ssdm::open(Backend::Memory);
        db.load_turtle("<http://s> <http://p> 1 .").unwrap();
        // Learn corrections for two predicates, one over several
        // observations so the EWMA state is a non-trivial float.
        db.dataset.calibration.observe("http://e#many", 10.0, 570.0);
        db.dataset.calibration.observe("http://e#many", 12.0, 431.0);
        db.dataset.calibration.observe("http://e#many", 11.0, 602.0);
        db.dataset.calibration.observe("http://e#few", 100.0, 3.0);
        let factor_many = db.dataset.calibration.factor("http://e#many");
        let factor_few = db.dataset.calibration.factor("http://e#few");
        db.save_snapshot(&path).unwrap();

        let mut back = Ssdm::open(Backend::Memory);
        // Pre-existing learned state is replaced, not merged.
        back.dataset.calibration.observe("http://e#stale", 1.0, 9.0);
        back.load_snapshot(&path).unwrap();
        assert_eq!(back.dataset.calibration.len(), 2);
        // Bit-exact: the ln-space EWMA is persisted as f64 bits.
        assert_eq!(
            back.dataset.calibration.factor("http://e#many"),
            factor_many
        );
        assert_eq!(back.dataset.calibration.factor("http://e#few"), factor_few);
        assert_eq!(back.dataset.calibration.samples("http://e#many"), 3);
        assert_eq!(back.dataset.calibration.samples("http://e#few"), 1);
        assert_eq!(back.dataset.calibration.factor("http://e#stale"), 1.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_calibration_lines_are_rejected() {
        let path = tmp("calibration-bad");
        let text = format!("{MAGIC}\n[catalog]\ncal notanumber 3 http://e#p\n[graph]\n");
        std::fs::write(&path, text).unwrap();
        let mut db = Ssdm::open(Backend::Memory);
        assert!(db.load_snapshot(&path).is_err());
        // A non-finite factor parses but is dropped at restore.
        let text = format!(
            "{MAGIC}\n[catalog]\ncal {} 3 http://e#p\n[graph]\n",
            f64::NAN.to_bits()
        );
        std::fs::write(&path, text).unwrap();
        db.load_snapshot(&path).unwrap();
        assert!(db.dataset.calibration.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_with_memory_backend_relinks_and_resolves() {
        // Memory back-end: chunks are volatile, but we can refill them
        // after loading the snapshot (simulating a durable back-end).
        let path = tmp("mem");
        let mut db = Ssdm::open(Backend::Memory);
        db.set_externalize_threshold(2, 16);
        db.load_turtle("@prefix ex: <http://e#> . ex:r ex:data (7 8 9) .")
            .unwrap();
        db.save_snapshot(&path).unwrap();
        let meta: Vec<_> = db.dataset.arrays.catalog().cloned().collect();
        assert_eq!(meta.len(), 1);

        let mut back = Ssdm::open(Backend::Memory);
        back.load_snapshot(&path).unwrap();
        // Refill the chunk store with the original content. The
        // catalog marks the array `scc1`-encoded, so the refill must
        // write codec frames, exactly as the original store did.
        let chunking = meta[0].chunking;
        let data: Vec<i64> = vec![7, 8, 9];
        for c in 0..chunking.chunk_count() {
            let (s, e) = chunking.chunk_span(c);
            let bytes: Vec<u8> = data[s..e].iter().flat_map(|v| v.to_le_bytes()).collect();
            let (frame, _) = ssdm_storage::codec::encode_chunk(
                &bytes,
                meta[0].numeric_type,
                ssdm_storage::CodecPolicy::default(),
            );
            back.dataset
                .arrays
                .backend_mut()
                .put_chunk(meta[0].array_id, c, &frame)
                .unwrap();
        }
        let rows = back
            .query("PREFIX ex: <http://e#> SELECT (array_sum(?v) AS ?s) WHERE { ex:r ex:data ?v }")
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows[0][0].as_ref().unwrap().to_string(), "24");
        std::fs::remove_file(&path).ok();
    }
}
