//! Array metadata and proxies.
//!
//! An [`ArrayProxy`] is what an SSDM query variable binds to when it
//! matches an externally stored array: the array's catalog entry plus a
//! logical view. Dereferences, slices and transpositions apply to the
//! proxy without touching storage (thesis §5.2, §6.1) — only the APR
//! operator materializes elements.

use std::sync::Arc;

use ssdm_array::{ArrayError, ArrayView, NumericType, Subscript};

use crate::chunks::Chunking;

/// Catalog entry of one stored array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayMeta {
    pub array_id: u64,
    pub numeric_type: NumericType,
    /// Original (stored) shape, row-major.
    pub shape: Vec<usize>,
    pub chunking: Chunking,
    /// Whether the back-end holds `SCC1` codec frames
    /// ([`crate::codec`]) rather than raw little-endian elements. Set
    /// when the array is stored and persisted in snapshots: every
    /// consumer (APR resolve paths, bag assembly) decodes if and only
    /// if this flag is set — payload bytes are never sniffed, since
    /// adversarial raw data could begin with the frame magic.
    pub encoded: bool,
}

impl ArrayMeta {
    pub fn total_elements(&self) -> usize {
        self.shape.iter().product()
    }
}

/// A lazy handle to (a view of) a stored array.
#[derive(Debug, Clone)]
pub struct ArrayProxy {
    meta: Arc<ArrayMeta>,
    view: ArrayView,
}

impl ArrayProxy {
    /// A proxy over the whole stored array.
    pub fn whole(meta: Arc<ArrayMeta>) -> Self {
        let view = ArrayView::contiguous(&meta.shape);
        ArrayProxy { meta, view }
    }

    pub fn from_parts(meta: Arc<ArrayMeta>, view: ArrayView) -> Self {
        ArrayProxy { meta, view }
    }

    pub fn meta(&self) -> &Arc<ArrayMeta> {
        &self.meta
    }

    pub fn view(&self) -> &ArrayView {
        &self.view
    }

    pub fn array_id(&self) -> u64 {
        self.meta.array_id
    }

    pub fn shape(&self) -> Vec<usize> {
        self.view.shape()
    }

    pub fn ndims(&self) -> usize {
        self.view.ndims()
    }

    pub fn element_count(&self) -> usize {
        self.view.element_count()
    }

    /// Fraction of the stored array this proxy addresses.
    pub fn selectivity(&self) -> f64 {
        let total = self.meta.total_elements();
        if total == 0 {
            0.0
        } else {
            self.element_count() as f64 / total as f64
        }
    }

    /// Fix one dimension (0-based), like [`ssdm_array::NumArray::subscript`].
    pub fn subscript(&self, dim: usize, index: usize) -> Result<ArrayProxy, ArrayError> {
        Ok(ArrayProxy {
            meta: Arc::clone(&self.meta),
            view: self.view.subscript(dim, index)?,
        })
    }

    /// Slice one dimension (0-based inclusive bounds).
    pub fn slice(
        &self,
        dim: usize,
        lo: usize,
        stride: usize,
        hi: usize,
    ) -> Result<ArrayProxy, ArrayError> {
        Ok(ArrayProxy {
            meta: Arc::clone(&self.meta),
            view: self.view.slice(dim, lo, stride, hi)?,
        })
    }

    pub fn transpose(&self) -> ArrayProxy {
        ArrayProxy {
            meta: Arc::clone(&self.meta),
            view: self.view.transpose(),
        }
    }

    /// Apply a SciSPARQL dereference list (1-based, negatives from the
    /// end) — the proxy analogue of [`ssdm_array::NumArray::dereference`].
    pub fn dereference(&self, subs: &[Subscript]) -> Result<ArrayProxy, ArrayError> {
        if subs.len() > self.ndims() {
            return Err(ArrayError::DimensionMismatch {
                expected: self.ndims(),
                got: subs.len(),
            });
        }
        let mut out = self.clone();
        for (dim, sub) in subs.iter().enumerate().rev() {
            let size = out.view.dims()[dim].size;
            out = match *sub {
                Subscript::Index(i) => {
                    let idx = resolve_1based(i, size, dim)?;
                    out.subscript(dim, idx)?
                }
                Subscript::Range { lo, stride, hi } => {
                    let lo0 = match lo {
                        Some(l) => resolve_1based(l, size, dim)?,
                        None => 0,
                    };
                    let hi0 = match hi {
                        Some(h) => resolve_1based(h, size, dim)?,
                        None => size.saturating_sub(1),
                    };
                    if stride <= 0 {
                        return Err(ArrayError::InvalidSlice("stride must be positive".into()));
                    }
                    out.slice(dim, lo0, stride as usize, hi0)?
                }
                Subscript::All => out,
            };
        }
        Ok(out)
    }
}

fn resolve_1based(i: i64, size: usize, dim: usize) -> Result<usize, ArrayError> {
    let idx = if i >= 1 {
        (i - 1) as usize
    } else if i <= -1 {
        let back = (-i) as usize;
        if back > size {
            return Err(ArrayError::IndexOutOfBounds {
                dim,
                index: i,
                size,
            });
        }
        size - back
    } else {
        return Err(ArrayError::IndexOutOfBounds {
            dim,
            index: 0,
            size,
        });
    };
    if idx >= size {
        return Err(ArrayError::IndexOutOfBounds {
            dim,
            index: i,
            size,
        });
    }
    Ok(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdm_array::NumericType;

    fn meta() -> Arc<ArrayMeta> {
        Arc::new(ArrayMeta {
            array_id: 1,
            numeric_type: NumericType::Int,
            shape: vec![10, 20],
            chunking: Chunking::new(64, 200),
            encoded: false,
        })
    }

    #[test]
    fn whole_proxy_shape() {
        let p = ArrayProxy::whole(meta());
        assert_eq!(p.shape(), vec![10, 20]);
        assert_eq!(p.element_count(), 200);
        assert_eq!(p.selectivity(), 1.0);
    }

    #[test]
    fn transformations_are_lazy() {
        let p = ArrayProxy::whole(meta());
        let row = p.subscript(0, 3).unwrap();
        assert_eq!(row.shape(), vec![20]);
        assert_eq!(row.selectivity(), 0.1);
        let part = row.slice(0, 0, 2, 19).unwrap();
        assert_eq!(part.element_count(), 10);
    }

    #[test]
    fn dereference_one_based() {
        let p = ArrayProxy::whole(meta());
        let d = p
            .dereference(&[Subscript::Index(2), Subscript::Index(-1)])
            .unwrap();
        assert_eq!(d.element_count(), 1);
        // Row 2 (1-based) = row index 1, column -1 = index 19:
        // linear address 1*20 + 19 = 39.
        assert_eq!(d.view().addresses(), vec![39]);
    }

    #[test]
    fn bounds_errors_surface_without_io() {
        let p = ArrayProxy::whole(meta());
        assert!(p.subscript(0, 10).is_err());
        assert!(p.dereference(&[Subscript::Index(11)]).is_err());
    }
}
