//! External storage of *RDF with Arrays*: the Array Storage
//! Extensibility Interface and lazy array retrieval.
//!
//! Massive arrays do not live in SSDM's main memory: they are split into
//! fixed-size one-dimensional chunks (thesis §2.5: "we split the arrays
//! into one-dimensional chunks, so that the chunk size is the only
//! parameter") and stored in an external back-end behind the **ASEI**
//! ([`ChunkStore`]). Queries carry **array proxies** ([`ArrayProxy`]) —
//! descriptors holding shape and pending view transformations but no
//! elements — and the **array-proxy-resolve** operator ([`apr`])
//! materializes exactly the elements a query touches, using one of the
//! retrieval strategies compared in §6.3:
//!
//! * [`RetrievalStrategy::Single`] — one back-end statement per chunk;
//! * [`RetrievalStrategy::BufferedIn`] — buffered `IN`-list statements;
//! * [`RetrievalStrategy::SpdRange`] — the Sequence Pattern Detector
//!   ([`spd`]) compresses regular chunk-id sequences into range queries;
//! * [`RetrievalStrategy::WholeArray`] — fetch everything (the baseline).
//!
//! Back-ends provided: [`MemoryChunkStore`], [`FileChunkStore`] (binary
//! files, the paper's file-link scenario) and [`RelChunkStore`] (the
//! embedded relational substrate standing in for MySQL).

pub mod apr;
mod bag;
pub mod cache;
mod chunks;
pub mod codec;
pub mod fault;
pub mod frame;
mod meta;
pub mod parallel;
pub mod replica;
pub mod resilient;
pub mod shard;
pub mod spd;
mod store;
pub mod wal;

pub use apr::{AprStats, ArrayStore, RetrievalStrategy};
pub use cache::{CacheStats, CachedChunkStore, ChunkCache};
pub use chunks::{auto_chunk_bytes, chunk_of, chunk_range_for_run, Chunking};
pub use codec::{
    ChunkSummary, CodecError, CodecId, CodecPolicy, ValuePredicate, ZoneMap, SCC_HEADER, SCC_MAGIC,
};
pub use fault::{FaultInjectingChunkStore, FaultKind, FaultPlan, FaultStats, OpKind};
pub use meta::{ArrayMeta, ArrayProxy};
pub use parallel::ParallelConfig;
pub use replica::{Breaker, BreakerState, Replica, ReplicaHealth};
pub use resilient::{ResilienceStats, ResilientChunkStore, RetryPolicy};
pub use shard::{ShardHealth, ShardOptions, ShardStats, ShardedChunkStore};
pub use store::{
    Capabilities, ChunkStore, FileChunkStore, IoStats, MemoryChunkStore, RawChunkAccess,
    RelChunkStore, SharedChunkRead, SharedChunkStore, StorageError,
};
pub use wal::{
    CrashPlan, FsyncPolicy, WalOptions, WalReader, WalRecord, WalRecovery, WalStats, WalWriter,
};

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
