//! One-dimensional chunking of linearized arrays.
//!
//! SSDM partitions every externally stored array into equal-size 1-D
//! chunks of its row-major element stream; the chunk size (in bytes) is
//! the single tuning parameter (thesis §2.5, §6.3.4). Elements are 8
//! bytes, so a chunk holds `chunk_size_bytes / 8` elements.

use ssdm_array::Run;

/// The chunking layout of one stored array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunking {
    /// Chunk payload size in bytes (a multiple of 8).
    pub chunk_bytes: usize,
    /// Total number of elements in the array.
    pub total_elements: usize,
}

impl Chunking {
    pub fn new(chunk_bytes: usize, total_elements: usize) -> Self {
        assert!(chunk_bytes >= 8, "chunk must hold at least one element");
        assert_eq!(chunk_bytes % 8, 0, "chunk size must be element-aligned");
        Chunking {
            chunk_bytes,
            total_elements,
        }
    }

    /// Elements per full chunk.
    pub fn elements_per_chunk(&self) -> usize {
        self.chunk_bytes / 8
    }

    /// Number of chunks (the last may be partial).
    pub fn chunk_count(&self) -> u64 {
        if self.total_elements == 0 {
            0
        } else {
            self.total_elements.div_ceil(self.elements_per_chunk()) as u64
        }
    }

    /// Chunk holding linear element address `addr`.
    pub fn chunk_of(&self, addr: usize) -> u64 {
        (addr / self.elements_per_chunk()) as u64
    }

    /// Element range `[start, end)` stored in chunk `id`.
    pub fn chunk_span(&self, id: u64) -> (usize, usize) {
        let epc = self.elements_per_chunk();
        let start = id as usize * epc;
        (start, (start + epc).min(self.total_elements))
    }

    /// Number of elements actually stored in chunk `id`.
    pub fn chunk_len(&self, id: u64) -> usize {
        let (s, e) = self.chunk_span(id);
        e.saturating_sub(s)
    }

    /// The chunk ids touched by an arithmetic run of element addresses,
    /// in ascending order without duplicates.
    pub fn chunks_for_run(&self, run: &Run) -> Vec<u64> {
        let epc = self.elements_per_chunk();
        if run.len == 0 {
            return Vec::new();
        }
        if run.step == 0 || run.step >= epc {
            // Each element lands in its own (possibly repeated) chunk.
            let mut out: Vec<u64> = (0..run.len)
                .map(|k| self.chunk_of(run.start + k * run.step))
                .collect();
            out.dedup();
            return out;
        }
        // Dense-ish run: all chunks between first and last are touched.
        let first = self.chunk_of(run.start);
        let last = self.chunk_of(run.end());
        (first..=last).collect()
    }
}

/// The auto-tuning heuristic for the chunk size (thesis §2.5: "the
/// chunk size is the only parameter and its auto-tuning heuristics are
/// simple"). Targets roughly 1024 chunks per array — enough that
/// selective access skips most of the data, few enough that whole-array
/// scans don't drown in per-chunk overhead — clamped to [1 KiB, 256 KiB]
/// and rounded to a power of two. A chunk is never larger than the
/// array itself: tiny (and empty) arrays get one chunk of their own
/// size rounded up to a power of two, with an 8-byte (one-element)
/// floor, instead of the 1 KiB clamp.
pub fn auto_chunk_bytes(total_elements: usize) -> usize {
    const MIN: usize = 1024;
    const MAX: usize = 256 * 1024;
    let total_bytes = total_elements.saturating_mul(8).max(8);
    let target = (total_bytes / 1024).max(8);
    let cap = total_bytes.next_power_of_two().clamp(8, MAX);
    target.next_power_of_two().clamp(MIN, MAX).min(cap)
}

/// Chunk id of `addr` under element-per-chunk `epc` (free function for
/// call sites without a full [`Chunking`]).
pub fn chunk_of(addr: usize, epc: usize) -> u64 {
    (addr / epc) as u64
}

/// The inclusive chunk-id range covering a run.
pub fn chunk_range_for_run(run: &Run, epc: usize) -> (u64, u64) {
    ((run.start / epc) as u64, (run.end() / epc) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_layout() {
        let c = Chunking::new(64, 100); // 8 elements per chunk
        assert_eq!(c.elements_per_chunk(), 8);
        assert_eq!(c.chunk_count(), 13);
        assert_eq!(c.chunk_of(0), 0);
        assert_eq!(c.chunk_of(7), 0);
        assert_eq!(c.chunk_of(8), 1);
        assert_eq!(c.chunk_span(12), (96, 100), "last chunk is partial");
        assert_eq!(c.chunk_len(12), 4);
    }

    #[test]
    fn empty_array() {
        let c = Chunking::new(64, 0);
        assert_eq!(c.chunk_count(), 0);
    }

    #[test]
    fn chunks_for_dense_run() {
        let c = Chunking::new(64, 100);
        let run = Run {
            start: 4,
            step: 1,
            len: 10,
        }; // addresses 4..14 -> chunks 0,1
        assert_eq!(c.chunks_for_run(&run), vec![0, 1]);
    }

    #[test]
    fn chunks_for_strided_run() {
        let c = Chunking::new(64, 200);
        let run = Run {
            start: 0,
            step: 16,
            len: 5,
        }; // 0,16,32,48,64 -> chunks 0,2,4,6,8
        assert_eq!(c.chunks_for_run(&run), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn chunks_for_small_stride_covers_range() {
        let c = Chunking::new(64, 200);
        let run = Run {
            start: 0,
            step: 3,
            len: 10,
        }; // up to address 27 -> chunks 0..=3
        assert_eq!(c.chunks_for_run(&run), vec![0, 1, 2, 3]);
    }

    #[test]
    fn auto_tuning_heuristic() {
        // A 1M-element (8 MB) array lands near 8 KiB (≈ 1024 chunks).
        let c = auto_chunk_bytes(1_000_000);
        assert!((4096..=16384).contains(&c), "{c}");
        assert!(c.is_power_of_two());
        // Huge arrays are clamped.
        assert_eq!(auto_chunk_bytes(1 << 32), 256 * 1024);
        // Monotone non-decreasing in array size.
        let mut last = 0;
        for e in [1usize, 100, 10_000, 1_000_000, 100_000_000] {
            let c = auto_chunk_bytes(e);
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn auto_tuning_never_exceeds_array_size() {
        // Empty and one-element arrays: one minimal (8-byte) chunk, not
        // the 1 KiB clamp.
        assert_eq!(auto_chunk_bytes(0), 8);
        assert_eq!(auto_chunk_bytes(1), 8);
        // A 10-element (80-byte) array: one 128-byte chunk covers it.
        assert_eq!(auto_chunk_bytes(10), 128);
        // The proposed chunk never exceeds the array's own size rounded
        // up to a power of two, and is always usable with `Chunking`.
        for e in [0usize, 1, 2, 7, 10, 100, 127, 128, 129, 5000] {
            let c = auto_chunk_bytes(e);
            assert!(
                c >= 8 && c.is_multiple_of(8),
                "chunk {c} not element-aligned"
            );
            assert!(
                c <= (e * 8).max(8).next_power_of_two(),
                "chunk {c} larger than {e}-element array"
            );
            let _ = Chunking::new(c, e); // must not panic
        }
        // Mid-size arrays still hit the 1 KiB floor once they can fill it.
        assert_eq!(auto_chunk_bytes(128), 1024);
        assert_eq!(auto_chunk_bytes(10_000), 1024);
    }

    #[test]
    fn single_element_run() {
        let c = Chunking::new(64, 100);
        let run = Run {
            start: 42,
            step: 0,
            len: 1,
        };
        assert_eq!(c.chunks_for_run(&run), vec![5]);
    }
}
