//! A sharded LRU chunk cache wrapping any [`ChunkStore`].
//!
//! The thesis' mini-benchmark (§6.3) shows APR cost is dominated by
//! back-end round trips, and repeated queries over the same array
//! re-fetch the same chunks. [`CachedChunkStore`] keeps decoded chunk
//! payloads resident under a byte budget, keyed `(array_id, chunk_id)`:
//!
//! * **write-through** — `put_chunk` updates the cache as well as the
//!   back-end, so a freshly stored array is immediately warm;
//! * **invalidation** — `delete_array` / `begin_array` drop every
//!   cached chunk of that array, so re-storing under the same id can
//!   never serve stale bytes;
//! * **sharding** — entries hash across independently locked shards,
//!   so concurrent readers (the parallel retrieval pipeline) rarely
//!   contend on the same mutex;
//! * **composition** — the wrapper is itself a [`ChunkStore`] (and a
//!   [`SharedChunkRead`] when the inner store is), so it stacks above
//!   [`ResilientChunkStore`](crate::ResilientChunkStore): a chunk the
//!   resilient layer repaired through retries is cached and never
//!   re-fetched.
//!
//! Cached payloads are post-CRC bytes as stored: a hit skips both the
//! back-end statement and the checksum pass. For `SCC1` codec frames
//! ([`crate::codec`]) the cached bytes are still compressed — but the
//! budget charges each entry at its *uncompressed* size, since that is
//! the data volume a hit keeps hot for readers (see
//! [`codec::charged_size`]). Corruption injected behind the cache (via
//! [`RawChunkAccess`]) invalidates the touched key so fault-injection
//! tests still see the damage.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ssdm_obs as obs;

use crate::codec;
use crate::store::{
    Capabilities, ChunkStore, CompositeRows, IoStats, RawChunkAccess, SharedChunkRead, StorageError,
};

/// Number of independently locked shards. A small power of two: enough
/// to keep parallel workers off each other's locks, small enough that
/// per-shard budgets stay meaningful for modest cache sizes.
const SHARDS: usize = 8;

/// Upper bound on speculative pre-allocation in [`range_get`]: the span
/// width comes from the caller and must not translate into a giant
/// allocation before the first cached byte is found.
const RANGE_PREALLOC_CAP: u64 = 1024;

/// Process-wide cache hit counter (all [`ChunkCache`] instances).
fn obs_cache_hits() -> &'static Arc<obs::Counter> {
    static C: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    C.get_or_init(|| obs::recorder().counter("ssdm_cache_hits"))
}

/// Process-wide cache miss counter (all [`ChunkCache`] instances).
fn obs_cache_misses() -> &'static Arc<obs::Counter> {
    static C: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    C.get_or_init(|| obs::recorder().counter("ssdm_cache_misses"))
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to go to the back-end.
    pub misses: u64,
    /// Entries displaced to stay under the byte budget.
    pub evictions: u64,
    /// Entries written into the cache (fills + write-throughs).
    pub insertions: u64,
    /// Bytes currently charged against the budget. `SCC1` codec frames
    /// ([`crate::codec`]) are charged at their *uncompressed* size —
    /// the cost a reader pays once the payload is decoded — so a
    /// well-compressed store cannot silently pin more decoded data
    /// than the configured budget.
    pub resident_bytes: u64,
    /// Configured byte budget.
    pub capacity_bytes: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Shard {
    /// Key → (recency tick, stored payload).
    map: HashMap<(u64, u64), (u64, Vec<u8>)>,
    /// Recency index: oldest tick first. Ticks are globally unique, so
    /// this is a faithful LRU order across bumps.
    recency: BTreeMap<u64, (u64, u64)>,
    /// Bytes charged against this shard's budget: the payload size for
    /// raw chunks, the *uncompressed* size for codec frames (see
    /// [`codec::charged_size`]).
    bytes: usize,
}

impl Shard {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            recency: BTreeMap::new(),
            bytes: 0,
        }
    }

    fn remove(&mut self, key: (u64, u64)) -> bool {
        if let Some((tick, data)) = self.map.remove(&key) {
            self.recency.remove(&tick);
            self.bytes -= codec::charged_size(&data);
            true
        } else {
            false
        }
    }
}

/// The sharded LRU core. Usable on its own, but normally driven through
/// [`CachedChunkStore`].
pub struct ChunkCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget (total budget / shard count).
    shard_budget: usize,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
}

impl ChunkCache {
    /// A cache holding at most `capacity_bytes` of chunk payload.
    pub fn new(capacity_bytes: usize) -> Self {
        ChunkCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            shard_budget: capacity_bytes / SHARDS,
            capacity: capacity_bytes,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: (u64, u64)) -> &Mutex<Shard> {
        // SplitMix64-style mix so sequential chunk ids spread across
        // shards instead of all landing in one.
        let mut h = key.0 ^ key.1.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        &self.shards[(h % SHARDS as u64) as usize]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Look up one chunk, bumping its recency on a hit.
    pub fn get(&self, array_id: u64, chunk_id: u64) -> Option<Vec<u8>> {
        let key = (array_id, chunk_id);
        let mut shard = self.shard(key).lock().expect("cache shard");
        if let Some((tick, data)) = shard.map.get_mut(&key) {
            let old = *tick;
            *tick = self.next_tick();
            let new = *tick;
            let out = data.clone();
            shard.recency.remove(&old);
            shard.recency.insert(new, key);
            drop(shard);
            self.note_hits(1);
            Some(out)
        } else {
            drop(shard);
            self.note_misses(1);
            None
        }
    }

    /// Like [`get`](ChunkCache::get) — refreshes the entry's recency on
    /// a hit — but touches no hit/miss counters. Batched probes use it
    /// to walk a span once, deciding afterwards how the span counts.
    pub fn peek_bump(&self, array_id: u64, chunk_id: u64) -> Option<Vec<u8>> {
        let key = (array_id, chunk_id);
        let mut shard = self.shard(key).lock().expect("cache shard");
        if let Some((tick, data)) = shard.map.get_mut(&key) {
            let old = *tick;
            *tick = self.next_tick();
            let new = *tick;
            let out = data.clone();
            shard.recency.remove(&old);
            shard.recency.insert(new, key);
            Some(out)
        } else {
            None
        }
    }

    /// Count `n` lookups as hits (one atomic add, plus the process-wide
    /// obs counter when recording is on).
    fn note_hits(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
        if obs::recorder().enabled() {
            obs_cache_hits().add(n);
        }
    }

    /// Count `n` lookups as misses.
    fn note_misses(&self, n: u64) {
        self.misses.fetch_add(n, Ordering::Relaxed);
        if obs::recorder().enabled() {
            obs_cache_misses().add(n);
        }
    }

    /// Peek without touching hit/miss counters (used by batched reads
    /// to probe coverage before deciding to delegate).
    pub fn peek(&self, array_id: u64, chunk_id: u64) -> Option<Vec<u8>> {
        let key = (array_id, chunk_id);
        let shard = self.shard(key).lock().expect("cache shard");
        shard.map.get(&key).map(|(_, data)| data.clone())
    }

    /// Insert (or refresh) a chunk, evicting least-recently-used
    /// entries in the same shard until the shard fits its budget.
    /// Payloads charged larger than a whole shard's budget are not
    /// cached. Codec frames are charged at their uncompressed size:
    /// the budget bounds the decoded data the cache keeps hot, not the
    /// (smaller) wire bytes.
    pub fn insert(&self, array_id: u64, chunk_id: u64, data: &[u8]) {
        let charge = codec::charged_size(data);
        if charge > self.shard_budget {
            return;
        }
        let key = (array_id, chunk_id);
        let tick = self.next_tick();
        let mut shard = self.shard(key).lock().expect("cache shard");
        shard.remove(key);
        shard.bytes += charge;
        shard.map.insert(key, (tick, data.to_vec()));
        shard.recency.insert(tick, key);
        let mut evicted = 0;
        while shard.bytes > self.shard_budget {
            let (&oldest, &victim) = shard.recency.iter().next().expect("nonempty over budget");
            debug_assert_ne!(victim, key, "fresh insert should fit");
            let (t, data) = shard.map.remove(&victim).expect("recency/map in sync");
            debug_assert_eq!(t, oldest);
            shard.recency.remove(&oldest);
            shard.bytes -= codec::charged_size(&data);
            evicted += 1;
        }
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Drop one cached chunk (e.g. after the raw bytes under it were
    /// deliberately damaged).
    pub fn invalidate(&self, array_id: u64, chunk_id: u64) {
        let key = (array_id, chunk_id);
        self.shard(key).lock().expect("cache shard").remove(key);
    }

    /// Drop every cached chunk of `array_id`.
    pub fn invalidate_array(&self, array_id: u64) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard");
            let victims: Vec<(u64, u64)> = shard
                .map
                .keys()
                .filter(|(a, _)| *a == array_id)
                .copied()
                .collect();
            for key in victims {
                shard.remove(key);
            }
        }
    }

    /// Drop everything (counters are kept; use [`reset_stats`] too for
    /// a pristine cache).
    ///
    /// [`reset_stats`]: ChunkCache::reset_stats
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard");
            shard.map.clear();
            shard.recency.clear();
            shard.bytes = 0;
        }
    }

    /// Current counters plus resident/capacity bytes.
    pub fn stats(&self) -> CacheStats {
        let resident: usize = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard").bytes)
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            resident_bytes: resident as u64,
            capacity_bytes: self.capacity as u64,
        }
    }

    /// Zero the hit/miss/eviction/insertion counters.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.insertions.store(0, Ordering::Relaxed);
    }
}

/// A [`ChunkStore`] decorator that serves repeated reads from a
/// [`ChunkCache`]. See the module docs for the caching contract.
pub struct CachedChunkStore<S> {
    inner: S,
    cache: ChunkCache,
}

impl<S> CachedChunkStore<S> {
    /// Wrap `inner` with a cache of `capacity_bytes`.
    pub fn new(inner: S, capacity_bytes: usize) -> Self {
        CachedChunkStore {
            inner,
            cache: ChunkCache::new(capacity_bytes),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped store, mutably. Writing to the back-end directly
    /// bypasses write-through — pair with [`cache`](Self::cache)
    /// invalidation if the bytes under a cached key change.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// The cache core (for explicit `clear` / `invalidate` / stats).
    pub fn cache(&self) -> &ChunkCache {
        &self.cache
    }

    /// Unwrap, discarding the cache.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: ChunkStore> ChunkStore for CachedChunkStore<S> {
    fn begin_array(&mut self, array_id: u64, chunk_bytes: usize) -> Result<(), StorageError> {
        // (Re-)creating an array invalidates whatever was cached under
        // its id — back-ends may truncate or reset storage here.
        self.cache.invalidate_array(array_id);
        self.inner.begin_array(array_id, chunk_bytes)
    }

    fn put_chunk(&mut self, array_id: u64, chunk_id: u64, data: &[u8]) -> Result<(), StorageError> {
        self.inner.put_chunk(array_id, chunk_id, data)?;
        // Write-through only after the back-end accepted the write, so
        // the cache never holds bytes the store doesn't.
        self.cache.insert(array_id, chunk_id, data);
        Ok(())
    }

    fn get_chunk(&mut self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        if let Some(hit) = self.cache.get(array_id, chunk_id) {
            return Ok(hit);
        }
        let data = self.inner.get_chunk(array_id, chunk_id)?;
        self.cache.insert(array_id, chunk_id, &data);
        Ok(data)
    }

    fn get_chunks_in(
        &mut self,
        array_id: u64,
        chunk_ids: &[u64],
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        batched_get(&self.cache, array_id, chunk_ids, |missing| {
            self.inner.get_chunks_in(array_id, missing)
        })
    }

    fn get_chunk_range(
        &mut self,
        array_id: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        range_get(&self.cache, array_id, lo, hi, || {
            self.inner.get_chunk_range(array_id, lo, hi)
        })
    }

    fn delete_array(&mut self, array_id: u64, chunk_count: u64) -> Result<(), StorageError> {
        self.cache.invalidate_array(array_id);
        self.inner.delete_array(array_id, chunk_count)
    }

    fn get_composite_range(
        &mut self,
        lo: (u64, u64),
        hi: (u64, u64),
    ) -> Result<CompositeRows, StorageError> {
        // Cross-array scans bypass the cache (no per-key lookups), but
        // their results still warm it.
        let rows = self.inner.get_composite_range(lo, hi)?;
        for ((a, c), data) in &rows {
            self.cache.insert(*a, *c, data);
        }
        Ok(rows)
    }

    fn get_composite_in(&mut self, keys: &[(u64, u64)]) -> Result<CompositeRows, StorageError> {
        let rows = self.inner.get_composite_in(keys)?;
        for ((a, c), data) in &rows {
            self.cache.insert(*a, *c, data);
        }
        Ok(rows)
    }

    fn capabilities(&self) -> Capabilities {
        self.inner.capabilities()
    }

    fn io_stats(&self) -> IoStats {
        self.inner.io_stats()
    }

    fn reset_io_stats(&mut self) {
        self.inner.reset_io_stats();
    }

    fn resilience_stats(&self) -> crate::resilient::ResilienceStats {
        self.inner.resilience_stats()
    }

    fn shard_stats(&self) -> Option<crate::shard::ShardStats> {
        self.inner.shard_stats()
    }

    fn reset_resilience_stats(&mut self) {
        self.inner.reset_resilience_stats();
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn reset_cache_stats(&mut self) {
        self.cache.reset_stats();
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        // The cache is write-through, so syncing the inner store covers
        // everything ever written through this wrapper.
        self.inner.sync()
    }
}

impl<S: SharedChunkRead> SharedChunkRead for CachedChunkStore<S> {
    fn read_chunk(&self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        if let Some(hit) = self.cache.get(array_id, chunk_id) {
            return Ok(hit);
        }
        let data = self.inner.read_chunk(array_id, chunk_id)?;
        self.cache.insert(array_id, chunk_id, &data);
        Ok(data)
    }

    fn read_chunks_in(
        &self,
        array_id: u64,
        chunk_ids: &[u64],
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        batched_get(&self.cache, array_id, chunk_ids, |missing| {
            self.inner.read_chunks_in(array_id, missing)
        })
    }

    fn read_chunk_range(
        &self,
        array_id: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        range_get(&self.cache, array_id, lo, hi, || {
            self.inner.read_chunk_range(array_id, lo, hi)
        })
    }
}

impl<S: RawChunkAccess> RawChunkAccess for CachedChunkStore<S> {
    fn flip_stored_bit(
        &mut self,
        array_id: u64,
        chunk_id: u64,
        bit: u64,
    ) -> Result<bool, StorageError> {
        let flipped = self.inner.flip_stored_bit(array_id, chunk_id, bit)?;
        if flipped {
            // The bytes at rest no longer match the cached payload;
            // drop it so the corruption is observed (and detected by
            // the CRC check) on the next read.
            self.cache.invalidate(array_id, chunk_id);
        }
        Ok(flipped)
    }
}

/// Serve an `IN`-list read: cached ids come from the cache, the rest
/// from one delegated fetch of only the missing ids, merged back in
/// request order. Each id counts as one hit or one miss.
fn batched_get(
    cache: &ChunkCache,
    array_id: u64,
    chunk_ids: &[u64],
    fetch_missing: impl FnOnce(&[u64]) -> Result<Vec<(u64, Vec<u8>)>, StorageError>,
) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
    let mut found: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut missing = Vec::new();
    for &c in chunk_ids {
        match cache.get(array_id, c) {
            Some(data) => {
                found.insert(c, data);
            }
            None => missing.push(c),
        }
    }
    if !missing.is_empty() {
        for (c, data) in fetch_missing(&missing)? {
            cache.insert(array_id, c, &data);
            found.insert(c, data);
        }
    }
    Ok(chunk_ids
        .iter()
        .filter_map(|c| found.remove(c).map(|d| (*c, d)))
        .collect())
}

/// Serve a range read. All-or-nothing: only a fully cached `lo..=hi`
/// span avoids the back-end, because a cache miss in the middle of a
/// range cannot distinguish "not cached" from "never stored" without
/// asking the store anyway.
fn range_get(
    cache: &ChunkCache,
    array_id: u64,
    lo: u64,
    hi: u64,
    fetch: impl FnOnce() -> Result<Vec<(u64, Vec<u8>)>, StorageError>,
) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
    if lo > hi {
        // A reversed span is empty. Guarding here also keeps the
        // `hi - lo + 1` width below from underflowing into a huge
        // pre-allocation in release builds.
        return Ok(Vec::new());
    }
    let span = hi - lo + 1;
    let mut cached = Vec::with_capacity(span.min(RANGE_PREALLOC_CAP) as usize);
    let mut complete = true;
    for c in lo..=hi {
        // One pass: refresh recency as we probe, settle the hit
        // accounting only once the whole span is known to be resident.
        match cache.peek_bump(array_id, c) {
            Some(data) => cached.push((c, data)),
            None => {
                complete = false;
                break;
            }
        }
    }
    if complete {
        cache.note_hits(span);
        return Ok(cached);
    }
    let rows = fetch()?;
    for (c, data) in &rows {
        cache.insert(array_id, *c, data);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryChunkStore;

    #[test]
    fn hit_miss_and_write_through() {
        let mut s = CachedChunkStore::new(MemoryChunkStore::new(), 1 << 20);
        s.begin_array(1, 8).unwrap();
        s.put_chunk(1, 0, b"aaaaaaaa").unwrap();
        // Write-through: the read is a hit and issues no statement.
        assert_eq!(s.get_chunk(1, 0).unwrap(), b"aaaaaaaa");
        assert_eq!(s.io_stats().statements, 0);
        let cs = s.cache_stats();
        assert_eq!((cs.hits, cs.misses), (1, 0));
        assert!(cs.hit_rate() > 0.99);
    }

    #[test]
    fn miss_fills_then_hits() {
        let mut s = CachedChunkStore::new(MemoryChunkStore::new(), 1 << 20);
        s.begin_array(1, 8).unwrap();
        s.put_chunk(1, 0, b"aaaaaaaa").unwrap();
        s.cache().clear();
        assert_eq!(s.get_chunk(1, 0).unwrap(), b"aaaaaaaa"); // miss, fill
        assert_eq!(s.get_chunk(1, 0).unwrap(), b"aaaaaaaa"); // hit
        assert_eq!(s.io_stats().statements, 1);
        let cs = s.cache_stats();
        assert_eq!((cs.hits, cs.misses), (1, 1));
    }

    #[test]
    fn batched_read_fetches_only_missing() {
        let mut s = CachedChunkStore::new(MemoryChunkStore::new(), 1 << 20);
        s.begin_array(1, 8).unwrap();
        for c in 0..4 {
            s.put_chunk(1, c, &[c as u8; 8]).unwrap();
        }
        s.cache().clear();
        let _ = s.get_chunk(1, 1).unwrap(); // warm chunk 1 only
        s.reset_io_stats();
        let rows = s.get_chunks_in(1, &[0, 1, 2]).unwrap();
        assert_eq!(
            rows,
            vec![(0, vec![0u8; 8]), (1, vec![1u8; 8]), (2, vec![2u8; 8])]
        );
        // Only chunks 0 and 2 were fetched.
        assert_eq!(s.io_stats().chunks_returned, 2);
    }

    #[test]
    fn range_read_all_or_nothing() {
        let mut s = CachedChunkStore::new(MemoryChunkStore::new(), 1 << 20);
        s.begin_array(1, 8).unwrap();
        for c in 0..3 {
            s.put_chunk(1, c, &[c as u8; 8]).unwrap();
        }
        // Fully cached (write-through): no statement.
        s.reset_io_stats();
        assert_eq!(s.get_chunk_range(1, 0, 2).unwrap().len(), 3);
        assert_eq!(s.io_stats().statements, 0);
        // Punch a hole: the whole range is delegated.
        s.cache().invalidate(1, 1);
        assert_eq!(s.get_chunk_range(1, 0, 2).unwrap().len(), 3);
        assert_eq!(s.io_stats().statements, 1);
    }

    #[test]
    fn range_read_single_chunk_span() {
        // lo == hi: the degenerate one-chunk span behaves like a point
        // read, counted as one hit when warm.
        let mut s = CachedChunkStore::new(MemoryChunkStore::new(), 1 << 20);
        s.begin_array(1, 8).unwrap();
        s.put_chunk(1, 5, b"aaaaaaaa").unwrap();
        s.reset_io_stats();
        s.reset_cache_stats();
        let rows = s.get_chunk_range(1, 5, 5).unwrap();
        assert_eq!(rows, vec![(5, b"aaaaaaaa".to_vec())]);
        assert_eq!(s.io_stats().statements, 0);
        let cs = s.cache_stats();
        assert_eq!((cs.hits, cs.misses), (1, 0));
    }

    #[test]
    fn range_read_reversed_span_is_empty() {
        // A reversed span used to underflow `hi - lo + 1` into a huge
        // `Vec::with_capacity` (alloc bomb in release builds). It must
        // be an empty result that never reaches the back-end.
        let mut s = CachedChunkStore::new(MemoryChunkStore::new(), 1 << 20);
        s.begin_array(1, 8).unwrap();
        s.put_chunk(1, 0, b"aaaaaaaa").unwrap();
        s.reset_io_stats();
        s.reset_cache_stats();
        assert_eq!(s.get_chunk_range(1, 7, 3).unwrap(), vec![]);
        assert_eq!(s.get_chunk_range(1, u64::MAX, 0).unwrap(), vec![]);
        assert_eq!(s.io_stats().statements, 0);
        let cs = s.cache_stats();
        assert_eq!((cs.hits, cs.misses), (0, 0));
    }

    #[test]
    fn range_read_complete_hit_is_single_pass() {
        // A fully cached span is counted as span-many hits without a
        // second walk, and the probe itself refreshes recency: after
        // ranging over [0, 1], inserting a third same-shard key under
        // byte pressure must evict the *unranged* key, not a ranged one.
        let mut s = CachedChunkStore::new(MemoryChunkStore::new(), 1 << 20);
        s.begin_array(1, 8).unwrap();
        for c in 0..4 {
            s.put_chunk(1, c, &[c as u8; 8]).unwrap();
        }
        s.reset_cache_stats();
        assert_eq!(s.get_chunk_range(1, 0, 3).unwrap().len(), 4);
        let cs = s.cache_stats();
        assert_eq!((cs.hits, cs.misses), (4, 0));
    }

    #[test]
    fn range_read_survives_eviction_mid_span() {
        // Byte pressure evicts part of a previously warm span; the
        // range read must notice the hole and delegate the whole span,
        // returning every chunk.
        let shard_budget = 100;
        let mut s = CachedChunkStore::new(MemoryChunkStore::new(), SHARDS * shard_budget);
        s.begin_array(1, 60).unwrap();
        for c in 0..4 {
            s.put_chunk(1, c, &[c as u8; 60]).unwrap();
        }
        // Find a chunk id outside the span that shares a shard with a
        // span chunk; writing it overflows that shard's 100-byte budget
        // and evicts the older (span) entry.
        let probe = |c: u64| {
            let mut h = 1u64 ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 30;
            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^= h >> 27;
            h % SHARDS as u64
        };
        let colliding = (4..256)
            .find(|&c| (0..4).any(|s| probe(c) == probe(s)))
            .expect("some id collides with the span");
        s.put_chunk(1, colliding, &[9u8; 60]).unwrap();
        assert!(s.cache().stats().evictions > 0);
        s.reset_io_stats();
        let rows = s.get_chunk_range(1, 0, 3).unwrap();
        assert_eq!(rows.len(), 4);
        for (c, data) in rows {
            assert_eq!(data, vec![c as u8; 60]);
        }
        assert_eq!(s.io_stats().statements, 1);
    }

    #[test]
    fn peek_bump_refreshes_recency_without_counting() {
        // 200-byte shard budget: two 90-byte entries fit, three don't.
        let data = vec![1u8; 90];
        // Reuse the shard-colliding probe from eviction_prefers_least_recent.
        let probe = |c: u64| {
            let mut h = 1u64 ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 30;
            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^= h >> 27;
            h % SHARDS as u64
        };
        let target = probe(0);
        let same: Vec<u64> = (0..64).filter(|&c| probe(c) == target).take(3).collect();
        let (a, b, c) = (same[0], same[1], same[2]);
        let wide = ChunkCache::new(SHARDS * 200);
        wide.insert(1, a, &data);
        wide.insert(1, b, &data);
        assert!(wide.peek_bump(1, a).is_some()); // a is now most recent
        wide.insert(1, c, &data); // over budget: evicts b, the least recent
        assert!(wide.peek(1, b).is_none());
        assert!(wide.peek(1, a).is_some());
        let cs = wide.stats();
        assert_eq!((cs.hits, cs.misses), (0, 0));
    }

    #[test]
    fn lru_eviction_under_budget() {
        // Budget of one shard is capacity / SHARDS; use chunks big
        // enough that two can't share a shard.
        let cap = 1024;
        let chunk = vec![7u8; cap / SHARDS];
        let cache = ChunkCache::new(cap);
        cache.insert(1, 0, &chunk);
        cache.insert(1, 1, &chunk);
        cache.insert(1, 2, &chunk);
        let cs = cache.stats();
        assert_eq!(cs.insertions, 3);
        assert!(
            cs.resident_bytes <= cap as u64,
            "resident {} over budget {cap}",
            cs.resident_bytes
        );
    }

    #[test]
    fn eviction_prefers_least_recent() {
        // Single-shard-sized scenario: force keys into one shard by
        // using a cache where every entry fits but three don't.
        let cache = ChunkCache::new(SHARDS * 100); // 100 bytes/shard
        let data = vec![1u8; 60];
        // Find two keys in the same shard.
        let mut same: Vec<u64> = Vec::new();
        let probe = |c: u64| {
            let mut h = 1u64 ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 30;
            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^= h >> 27;
            h % SHARDS as u64
        };
        let target = probe(0);
        for c in 0..64 {
            if probe(c) == target {
                same.push(c);
            }
            if same.len() == 3 {
                break;
            }
        }
        let (a, b, c) = (same[0], same[1], same[2]);
        cache.insert(1, a, &data);
        cache.insert(1, b, &data); // evicts a (over 100-byte shard budget)
        assert!(cache.peek(1, a).is_none());
        assert!(cache.peek(1, b).is_some());
        cache.insert(1, c, &data); // evicts b
        assert!(cache.peek(1, b).is_none());
        assert!(cache.peek(1, c).is_some());
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn codec_frames_charge_uncompressed_size() {
        use crate::codec::{encode_chunk, CodecPolicy};
        use ssdm_array::NumericType;
        // A constant chunk compresses to a tiny RLE frame, but the
        // budget must account for what the entry costs once decoded:
        // 1 KiB, not the ~52 stored bytes.
        let raw = vec![7u8; 1024];
        let (frame, _) = encode_chunk(&raw, NumericType::Int, CodecPolicy::Rle);
        assert!(
            frame.len() < raw.len() / 4,
            "constant chunk should compress"
        );
        let cache = ChunkCache::new(SHARDS * 4096);
        cache.insert(1, 0, &frame);
        assert_eq!(cache.stats().resident_bytes, raw.len() as u64);
        // Removal refunds the same charge — the books stay balanced.
        cache.invalidate(1, 0);
        assert_eq!(cache.stats().resident_bytes, 0);
        // A frame whose *decoded* size exceeds the shard budget is
        // refused even though its stored bytes would fit comfortably.
        let tight = ChunkCache::new(SHARDS * 512);
        tight.insert(1, 0, &frame);
        assert!(tight.peek(1, 0).is_none());
        assert_eq!(tight.stats().insertions, 0);
    }

    #[test]
    fn codec_frames_evict_by_decoded_charge() {
        use crate::codec::{encode_chunk, CodecPolicy};
        use ssdm_array::NumericType;
        // Two 1 KiB-decoded frames in one shard with a 1.5 KiB shard
        // budget: the second insert must evict the first even though
        // both frames' stored bytes together are far under budget.
        let (frame, _) = encode_chunk(&vec![7u8; 1024], NumericType::Int, CodecPolicy::Rle);
        let probe = |c: u64| {
            let mut h = 1u64 ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 30;
            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^= h >> 27;
            h % SHARDS as u64
        };
        let target = probe(0);
        let same: Vec<u64> = (0..64).filter(|&c| probe(c) == target).take(2).collect();
        let cache = ChunkCache::new(SHARDS * 1536);
        cache.insert(1, same[0], &frame);
        cache.insert(1, same[1], &frame);
        assert!(cache.peek(1, same[0]).is_none());
        assert!(cache.peek(1, same[1]).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().resident_bytes, 1024);
    }

    #[test]
    fn oversized_payloads_are_not_cached() {
        let cache = ChunkCache::new(SHARDS * 16);
        cache.insert(1, 0, &[0u8; 64]);
        assert!(cache.peek(1, 0).is_none());
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn invalidate_array_is_selective() {
        let cache = ChunkCache::new(1 << 20);
        cache.insert(1, 0, b"one");
        cache.insert(2, 0, b"two");
        cache.invalidate_array(1);
        assert!(cache.peek(1, 0).is_none());
        assert_eq!(cache.peek(2, 0).unwrap(), b"two");
    }

    #[test]
    fn bit_flip_invalidates_cached_key() {
        let mut s = CachedChunkStore::new(MemoryChunkStore::new(), 1 << 20);
        s.begin_array(1, 8).unwrap();
        s.put_chunk(1, 0, b"aaaaaaaa").unwrap();
        assert!(s.flip_stored_bit(1, 0, 3).unwrap());
        // The cache must not mask the corruption.
        assert!(matches!(
            s.get_chunk(1, 0),
            Err(StorageError::Corrupt { .. })
        ));
    }
}
