//! Array-proxy resolution (APR) and the retrieval strategies.
//!
//! APR is the physical-algebra operator SSDM inserts where a query needs
//! the *elements* behind an array proxy (thesis §6.1.1). It computes the
//! linear addresses the proxy's view touches, maps them to chunk ids,
//! fetches those chunks from the back-end with a [`RetrievalStrategy`],
//! and assembles a resident [`NumArray`]. The aggregate variant (AAPR)
//! folds elements chunk-by-chunk without materializing the whole view —
//! the "costly array processing, e.g. filtering and aggregation, is thus
//! performed on the server" behaviour of the abstract.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, OnceLock};

use ssdm_array::{kernel, AggregateOp, ArrayData, LinearRuns, Num, NumArray, NumericType};

use crate::chunks::Chunking;
use crate::meta::{ArrayMeta, ArrayProxy};
use crate::resilient::ResilienceStats;
use crate::spd::{self, FetchOp, SpdOptions};
use crate::store::{ChunkStore, IoStats, StorageError};
use crate::Result;

/// How the APR turns a set of needed chunk ids into back-end statements
/// (the strategies compared in thesis §6.3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetrievalStrategy {
    /// One statement per chunk — the naive baseline whose cost is
    /// dominated by per-statement round trips.
    Single,
    /// Buffer up to `buffer_size` ids and issue one `IN`-list statement
    /// per batch (§6.2.4).
    BufferedIn { buffer_size: usize },
    /// Run the Sequence Pattern Detector over the id sequence and issue
    /// range statements for regular patterns (§6.2.5).
    SpdRange { options: SpdOptions },
    /// Fetch the whole array with one range statement regardless of the
    /// view — the degenerate strategy, optimal only for dense views.
    WholeArray,
}

impl RetrievalStrategy {
    pub fn name(&self) -> &'static str {
        match self {
            RetrievalStrategy::Single => "SINGLE",
            RetrievalStrategy::BufferedIn { .. } => "BUFFERED-IN",
            RetrievalStrategy::SpdRange { .. } => "SPD-RANGE",
            RetrievalStrategy::WholeArray => "WHOLE-ARRAY",
        }
    }
}

/// Per-resolution statistics (deltas of the back-end counters).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AprStats {
    pub statements: u64,
    pub chunks_fetched: u64,
    pub bytes_fetched: u64,
    pub elements_resolved: u64,
    /// Batched statements (`IN`-list or range) that failed and were
    /// served by per-chunk `Single` retrieval instead of aborting the
    /// query (graceful degradation).
    pub fallbacks: u64,
    /// Retries performed by a [`crate::ResilientChunkStore`] in the
    /// back-end stack during this resolution (zero for plain stacks).
    pub retries: u64,
    /// Checksum violations that were healed by a successful re-read
    /// during this resolution.
    pub corruption_repaired: u64,
}

impl AprStats {
    /// True when this resolution needed any resilience machinery —
    /// useful to flag degraded-but-successful queries in logs.
    pub fn degraded(&self) -> bool {
        self.fallbacks > 0 || self.retries > 0 || self.corruption_repaired > 0
    }

    /// Field-wise accumulation (used for the store-lifetime totals).
    fn accumulate(&mut self, delta: &AprStats) {
        self.statements += delta.statements;
        self.chunks_fetched += delta.chunks_fetched;
        self.bytes_fetched += delta.bytes_fetched;
        self.elements_resolved += delta.elements_resolved;
        self.fallbacks += delta.fallbacks;
        self.retries += delta.retries;
        self.corruption_repaired += delta.corruption_repaired;
    }
}

/// Process-wide chunk-fetch latency histogram. Sequential fetch ops
/// ([`ArrayStore::execute`]) and parallel workers
/// ([`crate::parallel::fetch_plan`]) both time each back-end statement
/// into it.
pub(crate) fn obs_chunk_fetch_hist() -> &'static Arc<ssdm_obs::Histogram> {
    static H: OnceLock<Arc<ssdm_obs::Histogram>> = OnceLock::new();
    H.get_or_init(|| ssdm_obs::recorder().histogram("ssdm_chunk_fetch_seconds"))
}

/// The array catalog plus its chunk back-end: SSDM's handle on
/// externally stored arrays.
pub struct ArrayStore<S: ChunkStore> {
    backend: S,
    catalog: HashMap<u64, Arc<ArrayMeta>>,
    next_id: u64,
    last_stats: AprStats,
    cumulative: AprStats,
}

impl<S: ChunkStore> ArrayStore<S> {
    pub fn new(backend: S) -> Self {
        ArrayStore {
            backend,
            catalog: HashMap::new(),
            next_id: 1,
            last_stats: AprStats::default(),
            cumulative: AprStats::default(),
        }
    }

    pub fn backend(&self) -> &S {
        &self.backend
    }

    pub fn backend_mut(&mut self) -> &mut S {
        &mut self.backend
    }

    /// Statistics of the most recent resolve call.
    pub fn last_stats(&self) -> AprStats {
        self.last_stats
    }

    /// Totals accumulated over every resolve this store has performed.
    /// Reported alongside [`last_stats`](Self::last_stats) under an
    /// explicit `cumulative` scope so the two can't be conflated.
    pub fn cumulative_stats(&self) -> AprStats {
        self.cumulative
    }

    /// Linearize and store an array in chunks of `chunk_bytes`,
    /// returning a whole-array proxy.
    pub fn store_array(&mut self, array: &NumArray, chunk_bytes: usize) -> Result<ArrayProxy> {
        let array_id = self.next_id;
        self.next_id += 1;
        let materialized;
        let dense = if array.view().is_contiguous() && array.view().offset() == 0 {
            array
        } else {
            materialized = array.materialize();
            &materialized
        };
        let shape = dense.shape();
        let chunking = Chunking::new(chunk_bytes, dense.element_count());
        self.backend.begin_array(array_id, chunk_bytes)?;
        for c in 0..chunking.chunk_count() {
            let (start, end) = chunking.chunk_span(c);
            let payload = dense.data().serialize_range(start, end);
            self.backend.put_chunk(array_id, c, &payload)?;
        }
        let meta = Arc::new(ArrayMeta {
            array_id,
            numeric_type: dense.numeric_type(),
            shape,
            chunking,
        });
        self.catalog.insert(array_id, Arc::clone(&meta));
        Ok(ArrayProxy::whole(meta))
    }

    /// A whole-array proxy for a cataloged array.
    pub fn proxy(&self, array_id: u64) -> Result<ArrayProxy> {
        self.catalog
            .get(&array_id)
            .map(|m| ArrayProxy::whole(Arc::clone(m)))
            .ok_or(StorageError::MissingArray(array_id))
    }

    /// Register an array that already lives in the back-end (the
    /// *mediator scenario*, thesis §6: linking external arrays into an
    /// RDF graph without loading them).
    pub fn link_external(&mut self, meta: ArrayMeta) -> ArrayProxy {
        let id = meta.array_id;
        self.next_id = self.next_id.max(id + 1);
        let meta = Arc::new(meta);
        self.catalog.insert(id, Arc::clone(&meta));
        ArrayProxy::whole(meta)
    }

    /// Iterate the catalog entries (for snapshots and inspection).
    pub fn catalog(&self) -> impl Iterator<Item = &Arc<ArrayMeta>> {
        self.catalog.values()
    }

    /// Drop an array from the catalog and the back-end.
    pub fn delete_array(&mut self, array_id: u64) -> Result<()> {
        let meta = self
            .catalog
            .remove(&array_id)
            .ok_or(StorageError::MissingArray(array_id))?;
        self.backend
            .delete_array(array_id, meta.chunking.chunk_count())
    }

    /// Resolve a proxy to a resident array (the APR operator).
    pub fn resolve(&mut self, proxy: &ArrayProxy, strategy: RetrievalStrategy) -> Result<NumArray> {
        let before = self.backend.io_stats();
        let before_res = self.backend.resilience_stats();
        let meta = proxy.meta();
        let chunking = meta.chunking;
        let addresses = proxy.view().addresses();
        let needed = needed_chunks(proxy, &chunking);
        let mut fallbacks = 0u64;
        let chunks = self.fetch(meta.array_id, &chunking, &needed, strategy, &mut fallbacks)?;
        let nums = gather(
            &chunks,
            &chunking,
            meta.numeric_type,
            &addresses,
            meta.array_id,
        )?;
        self.finish_stats(before, before_res, fallbacks, addresses.len());
        let data = match meta.numeric_type {
            NumericType::Int => ArrayData::from_i64(nums.iter().map(|n| n.as_i64()).collect()),
            NumericType::Real => ArrayData::from_f64(nums.iter().map(|n| n.as_f64()).collect()),
        };
        Ok(NumArray::from_data(data, &proxy.shape())?)
    }

    /// Resolve a proxy with the fetch plan partitioned across a worker
    /// pool (the parallel retrieval pipeline, [`crate::parallel`]).
    ///
    /// The result is bit-identical to [`resolve`](Self::resolve) with
    /// the same strategy — the same statements execute, concurrently —
    /// and [`last_stats`](Self::last_stats) stays exact. When the
    /// back-end does not tolerate shared reads
    /// ([`Capabilities::supports_parallel`] is false) or `config`
    /// requests at most one worker, this *is* the sequential path.
    ///
    /// [`Capabilities::supports_parallel`]: crate::Capabilities::supports_parallel
    pub fn resolve_parallel(
        &mut self,
        proxy: &ArrayProxy,
        strategy: RetrievalStrategy,
        config: crate::ParallelConfig,
    ) -> Result<NumArray>
    where
        S: crate::SharedChunkRead,
    {
        if config.workers <= 1 || !self.backend.capabilities().supports_parallel {
            return self.resolve(proxy, strategy);
        }
        let before = self.backend.io_stats();
        let before_res = self.backend.resilience_stats();
        let meta = proxy.meta();
        let chunking = meta.chunking;
        let addresses = proxy.view().addresses();
        let needed = needed_chunks(proxy, &chunking);
        let plan = make_plan(&needed, &chunking, strategy);
        let (per_op, fallbacks) = crate::parallel::fetch_plan(
            &self.backend,
            meta.array_id,
            &plan,
            &needed,
            config.workers,
        )?;
        let mut chunks = HashMap::with_capacity(needed.len());
        for rows in per_op {
            for (cid, payload) in rows {
                chunks.insert(cid, payload);
            }
        }
        let nums = gather(
            &chunks,
            &chunking,
            meta.numeric_type,
            &addresses,
            meta.array_id,
        )?;
        self.finish_stats(before, before_res, fallbacks, addresses.len());
        let data = match meta.numeric_type {
            NumericType::Int => ArrayData::from_i64(nums.iter().map(|n| n.as_i64()).collect()),
            NumericType::Real => ArrayData::from_f64(nums.iter().map(|n| n.as_f64()).collect()),
        };
        Ok(NumArray::from_data(data, &proxy.shape())?)
    }

    /// Streamed aggregate over a proxy (the AAPR operator): chunks are
    /// fetched batch-wise and folded immediately, so peak memory is one
    /// batch regardless of the view size.
    ///
    /// Each chunk's needed elements are decoded densely and folded into
    /// a *per-chunk partial* by the typed kernels
    /// (`ssdm_array::kernel`), and partials are combined in plan order —
    /// the exact same fold structure
    /// [`resolve_aggregate_parallel`](Self::resolve_aggregate_parallel)
    /// uses, so sequential and parallel AAPR are bit-identical by
    /// construction for every strategy (`f64` sums follow the
    /// documented pairwise order; see DESIGN.md).
    pub fn resolve_aggregate(
        &mut self,
        proxy: &ArrayProxy,
        op: AggregateOp,
        strategy: RetrievalStrategy,
    ) -> Result<Num> {
        let before = self.backend.io_stats();
        let before_res = self.backend.resilience_stats();
        let meta = proxy.meta();
        let chunking = meta.chunking;
        // Group needed addresses by chunk so each fetched chunk is
        // consumed once and dropped.
        let mut by_chunk: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut count = 0u64;
        proxy.view().for_each_address(|a| {
            by_chunk.entry(chunking.chunk_of(a)).or_default().push(a);
            count += 1;
        });
        if count == 0 {
            self.finish_stats(before, before_res, 0, 0);
            return match op {
                AggregateOp::Count => Ok(Num::Int(0)),
                AggregateOp::Sum => Ok(Num::Int(0)),
                AggregateOp::Prod => Ok(Num::Int(1)),
                _ => Err(StorageError::Backend(
                    "aggregate over empty array view".into(),
                )),
            };
        }
        if op == AggregateOp::Count {
            self.finish_stats(before, before_res, 0, 0);
            return Ok(Num::Int(count as i64));
        }
        let needed: Vec<u64> = by_chunk.keys().copied().collect();
        let plan = make_plan(&needed, &chunking, strategy);
        let mut acc: Option<Num> = None;
        let mut n = 0u64;
        let mut fallbacks = 0u64;
        for fetch_op in plan {
            let rows =
                self.execute_with_fallback(meta.array_id, &fetch_op, &needed, &mut fallbacks)?;
            for (cid, payload) in rows {
                let Some(addrs) = by_chunk.get(&cid) else {
                    continue; // overfetched by a covering range
                };
                let (chunk_start, _) = chunking.chunk_span(cid);
                let (part, c) = chunk_partial(
                    &payload,
                    addrs,
                    chunk_start,
                    meta.numeric_type,
                    op,
                    meta.array_id,
                    cid,
                )?;
                n += c;
                acc = Some(match acc {
                    None => part,
                    Some(prev) => fold(op, prev, part)?,
                });
            }
        }
        self.finish_stats(before, before_res, fallbacks, n as usize);
        let total = acc.ok_or(StorageError::Backend("no elements resolved".into()))?;
        Ok(match op {
            AggregateOp::Avg => Num::Real(total.as_f64() / n as f64),
            _ => total,
        })
    }

    /// Parallel AAPR: the fetch plan is partitioned across a scoped
    /// worker pool and each worker decodes and folds its chunks into
    /// per-chunk partial aggregates *in place* (via
    /// [`crate::parallel::run_plan`]), dropping the payloads without
    /// central assembly — fetch and compute overlap. Partials are then
    /// combined in deterministic plan order, so the result is
    /// bit-identical to [`resolve_aggregate`](Self::resolve_aggregate)
    /// for every worker count and strategy. Degrades to the sequential
    /// path when `config` requests at most one worker or the back-end
    /// lacks [`supports_parallel`].
    ///
    /// [`supports_parallel`]: crate::Capabilities::supports_parallel
    pub fn resolve_aggregate_parallel(
        &mut self,
        proxy: &ArrayProxy,
        op: AggregateOp,
        strategy: RetrievalStrategy,
        config: crate::ParallelConfig,
    ) -> Result<Num>
    where
        S: crate::SharedChunkRead,
    {
        if config.workers <= 1 || !self.backend.capabilities().supports_parallel {
            return self.resolve_aggregate(proxy, op, strategy);
        }
        let before = self.backend.io_stats();
        let before_res = self.backend.resilience_stats();
        let meta = proxy.meta();
        let chunking = meta.chunking;
        let mut by_chunk: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut count = 0u64;
        proxy.view().for_each_address(|a| {
            by_chunk.entry(chunking.chunk_of(a)).or_default().push(a);
            count += 1;
        });
        if count == 0 {
            self.finish_stats(before, before_res, 0, 0);
            return match op {
                AggregateOp::Count => Ok(Num::Int(0)),
                AggregateOp::Sum => Ok(Num::Int(0)),
                AggregateOp::Prod => Ok(Num::Int(1)),
                _ => Err(StorageError::Backend(
                    "aggregate over empty array view".into(),
                )),
            };
        }
        if op == AggregateOp::Count {
            self.finish_stats(before, before_res, 0, 0);
            return Ok(Num::Int(count as i64));
        }
        let needed: Vec<u64> = by_chunk.keys().copied().collect();
        let plan = make_plan(&needed, &chunking, strategy);
        let (ty, array_id) = (meta.numeric_type, meta.array_id);
        let by_chunk = &by_chunk;
        let (per_op, fallbacks) = crate::parallel::run_plan(
            &self.backend,
            array_id,
            &plan,
            &needed,
            config.workers,
            |_, rows| {
                let mut parts = Vec::with_capacity(rows.len());
                for (cid, payload) in rows {
                    let Some(addrs) = by_chunk.get(&cid) else {
                        continue; // overfetched by a covering range
                    };
                    let (chunk_start, _) = chunking.chunk_span(cid);
                    parts.push(chunk_partial(
                        &payload,
                        addrs,
                        chunk_start,
                        ty,
                        op,
                        array_id,
                        cid,
                    )?);
                }
                kernel::note_parallel_folds(parts.len() as u64);
                Ok(parts)
            },
        )?;
        let mut acc: Option<Num> = None;
        let mut n = 0u64;
        for parts in per_op {
            for (part, c) in parts {
                n += c;
                acc = Some(match acc {
                    None => part,
                    Some(prev) => fold(op, prev, part)?,
                });
            }
        }
        self.finish_stats(before, before_res, fallbacks, n as usize);
        let total = acc.ok_or(StorageError::Backend("no elements resolved".into()))?;
        Ok(match op {
            AggregateOp::Avg => Num::Real(total.as_f64() / n as f64),
            _ => total,
        })
    }

    fn fetch(
        &mut self,
        array_id: u64,
        chunking: &Chunking,
        needed: &[u64],
        strategy: RetrievalStrategy,
        fallbacks: &mut u64,
    ) -> Result<HashMap<u64, Vec<u8>>> {
        let mut out = HashMap::with_capacity(needed.len());
        for op in make_plan(needed, chunking, strategy) {
            for (cid, payload) in self.execute_with_fallback(array_id, &op, needed, fallbacks)? {
                out.insert(cid, payload);
            }
        }
        Ok(out)
    }

    fn execute(&mut self, array_id: u64, op: &FetchOp) -> Result<Vec<(u64, Vec<u8>)>> {
        let _span = ssdm_obs::Span::start(obs_chunk_fetch_hist());
        match op {
            FetchOp::Range { lo, hi } => self.backend.get_chunk_range(array_id, *lo, *hi),
            FetchOp::In(ids) => {
                if ids.len() == 1 {
                    Ok(vec![(ids[0], self.backend.get_chunk(array_id, ids[0])?)])
                } else {
                    self.backend.get_chunks_in(array_id, ids)
                }
            }
        }
    }

    /// Execute one fetch op; when a *batched* statement (`IN`-list of
    /// several ids, or a range) fails, degrade to per-chunk `Single`
    /// retrieval of the needed ids it covered instead of aborting the
    /// whole resolution. A corrupt or unavailable chunk that was only
    /// *overfetched* by a covering range thus cannot sink a query that
    /// never needed it.
    fn execute_with_fallback(
        &mut self,
        array_id: u64,
        op: &FetchOp,
        needed: &[u64],
        fallbacks: &mut u64,
    ) -> Result<Vec<(u64, Vec<u8>)>> {
        let batched = match op {
            FetchOp::Range { .. } => true,
            FetchOp::In(ids) => ids.len() > 1,
        };
        match self.execute(array_id, op) {
            Ok(rows) => Ok(rows),
            Err(e) if !batched => Err(e),
            Err(_) => {
                *fallbacks += 1;
                let ids: Vec<u64> = match op {
                    FetchOp::In(ids) => ids.clone(),
                    FetchOp::Range { lo, hi } => needed
                        .iter()
                        .copied()
                        .filter(|c| (*lo..=*hi).contains(c))
                        .collect(),
                };
                let mut out = Vec::with_capacity(ids.len());
                for c in ids {
                    out.push((c, self.backend.get_chunk(array_id, c)?));
                }
                Ok(out)
            }
        }
    }

    fn finish_stats(
        &mut self,
        before: IoStats,
        before_res: ResilienceStats,
        fallbacks: u64,
        elements: usize,
    ) {
        let after = self.backend.io_stats();
        let res = self.backend.resilience_stats().since(&before_res);
        self.last_stats = AprStats {
            statements: after.statements - before.statements,
            chunks_fetched: after.chunks_returned - before.chunks_returned,
            bytes_fetched: after.bytes_returned - before.bytes_returned,
            elements_resolved: elements as u64,
            fallbacks,
            retries: res.retries,
            corruption_repaired: res.corruption_repaired,
        };
        self.cumulative.accumulate(&self.last_stats);
    }
}

/// Needed chunk ids of a proxy's view, ascending.
fn needed_chunks(proxy: &ArrayProxy, chunking: &Chunking) -> Vec<u64> {
    let runs = LinearRuns::of_view(proxy.view());
    let mut set = BTreeSet::new();
    for run in runs.runs() {
        set.extend(chunking.chunks_for_run(run));
    }
    set.into_iter().collect()
}

/// Build the statement plan for a strategy.
fn make_plan(needed: &[u64], chunking: &Chunking, strategy: RetrievalStrategy) -> Vec<FetchOp> {
    match strategy {
        RetrievalStrategy::Single => needed.iter().map(|&c| FetchOp::In(vec![c])).collect(),
        RetrievalStrategy::BufferedIn { buffer_size } => needed
            .chunks(buffer_size.max(1))
            .map(|b| FetchOp::In(b.to_vec()))
            .collect(),
        RetrievalStrategy::SpdRange { options } => spd::plan(needed, options),
        RetrievalStrategy::WholeArray => {
            if chunking.chunk_count() == 0 {
                Vec::new()
            } else {
                vec![FetchOp::Range {
                    lo: 0,
                    hi: chunking.chunk_count() - 1,
                }]
            }
        }
    }
}

/// Decode one fetched chunk's needed addresses into a dense scratch
/// vector and fold them into a partial aggregate with the typed
/// kernels (`ssdm_array::kernel`). Returns the partial and the number
/// of elements it covers; `Avg` partials are raw sums — the caller
/// divides once by the total count.
fn chunk_partial(
    payload: &[u8],
    addrs: &[usize],
    chunk_start: usize,
    ty: NumericType,
    op: AggregateOp,
    array_id: u64,
    chunk_id: u64,
) -> Result<(Num, u64)> {
    let missing = || StorageError::MissingChunk { array_id, chunk_id };
    let part = match ty {
        NumericType::Int => {
            let mut vals = Vec::with_capacity(addrs.len());
            for &a in addrs {
                let off = (a - chunk_start) * 8;
                let bytes = payload.get(off..off + 8).ok_or_else(missing)?;
                vals.push(i64::from_le_bytes(bytes.try_into().expect("8 bytes")));
            }
            kernel::fold_i64(&vals, op).map_err(StorageError::Array)?
        }
        NumericType::Real => {
            let mut vals = Vec::with_capacity(addrs.len());
            for &a in addrs {
                let off = (a - chunk_start) * 8;
                let bytes = payload.get(off..off + 8).ok_or_else(missing)?;
                vals.push(f64::from_le_bytes(bytes.try_into().expect("8 bytes")));
            }
            kernel::fold_f64(&vals, op).map_err(StorageError::Array)?
        }
    };
    Ok((part, addrs.len() as u64))
}

/// Decode element `off` (in elements) of a chunk payload.
fn decode_element(payload: &[u8], off: usize, ty: NumericType) -> Option<Num> {
    let bytes = payload.get(off * 8..off * 8 + 8)?;
    Some(match ty {
        NumericType::Int => Num::Int(i64::from_le_bytes(bytes.try_into().unwrap())),
        NumericType::Real => Num::Real(f64::from_le_bytes(bytes.try_into().unwrap())),
    })
}

/// Gather the elements at `addresses` from fetched chunks, in order.
fn gather(
    chunks: &HashMap<u64, Vec<u8>>,
    chunking: &Chunking,
    ty: NumericType,
    addresses: &[usize],
    array_id: u64,
) -> Result<Vec<Num>> {
    let mut out = Vec::with_capacity(addresses.len());
    for &a in addresses {
        let cid = chunking.chunk_of(a);
        let payload = chunks.get(&cid).ok_or(StorageError::MissingChunk {
            array_id,
            chunk_id: cid,
        })?;
        let (start, _) = chunking.chunk_span(cid);
        out.push(
            decode_element(payload, a - start, ty).ok_or(StorageError::MissingChunk {
                array_id,
                chunk_id: cid,
            })?,
        );
    }
    Ok(out)
}

fn fold(op: AggregateOp, a: Num, b: Num) -> Result<Num> {
    let r = match op {
        AggregateOp::Sum | AggregateOp::Avg => a.checked_add(b),
        AggregateOp::Prod => a.checked_mul(b),
        AggregateOp::Min => Ok(a.min(b)),
        AggregateOp::Max => Ok(a.max(b)),
        AggregateOp::Count => unreachable!("count handled separately"),
    };
    r.map_err(StorageError::Array)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryChunkStore;
    use ssdm_array::Subscript;

    fn store_with_matrix(chunk_bytes: usize) -> (ArrayStore<MemoryChunkStore>, ArrayProxy) {
        let mut store = ArrayStore::new(MemoryChunkStore::new());
        let m = NumArray::from_i64_shaped((0..400).collect(), &[20, 20]).unwrap();
        let proxy = store.store_array(&m, chunk_bytes).unwrap();
        (store, proxy)
    }

    #[test]
    fn whole_array_round_trip() {
        let (mut store, proxy) = store_with_matrix(64);
        let back = store
            .resolve(&proxy, RetrievalStrategy::WholeArray)
            .unwrap();
        assert_eq!(back.shape(), vec![20, 20]);
        assert_eq!(back.get(&[19, 19]).unwrap().as_i64(), 399);
        assert_eq!(store.last_stats().statements, 1);
    }

    #[test]
    fn strategies_agree_on_content() {
        let (mut store, proxy) = store_with_matrix(64);
        let col = proxy.subscript(1, 7).unwrap();
        let strategies = [
            RetrievalStrategy::Single,
            RetrievalStrategy::BufferedIn { buffer_size: 4 },
            RetrievalStrategy::SpdRange {
                options: SpdOptions::default(),
            },
            RetrievalStrategy::WholeArray,
        ];
        let expected: Vec<i64> = (0..20).map(|r| r * 20 + 7).collect();
        for s in strategies {
            let a = store.resolve(&col, s).unwrap();
            let got: Vec<i64> = a.elements().iter().map(|n| n.as_i64()).collect();
            assert_eq!(got, expected, "strategy {}", s.name());
        }
    }

    #[test]
    fn statement_counts_differ_by_strategy() {
        let (mut store, proxy) = store_with_matrix(64); // 8 elems/chunk, 50 chunks
        let col = proxy.subscript(1, 0).unwrap(); // touches 20 distinct rows
        store.resolve(&col, RetrievalStrategy::Single).unwrap();
        let single = store.last_stats();
        store
            .resolve(&col, RetrievalStrategy::BufferedIn { buffer_size: 8 })
            .unwrap();
        let buffered = store.last_stats();
        store
            .resolve(
                &col,
                RetrievalStrategy::SpdRange {
                    options: SpdOptions::default(),
                },
            )
            .unwrap();
        let spd = store.last_stats();
        assert!(single.statements > buffered.statements);
        assert!(buffered.statements >= spd.statements);
        assert_eq!(single.chunks_fetched, buffered.chunks_fetched);
    }

    #[test]
    fn spd_overfetch_is_filtered_out() {
        let (mut store, proxy) = store_with_matrix(8); // 1 element per chunk
                                                       // Every second element of row 0: chunks 0,2,4,...,18 -> one
                                                       // covering range 0..=18 fetches 19 chunks for 10 elements.
        let row = proxy.subscript(0, 0).unwrap();
        let every2 = row.slice(0, 0, 2, 18).unwrap();
        let a = store
            .resolve(
                &every2,
                RetrievalStrategy::SpdRange {
                    options: SpdOptions::default(),
                },
            )
            .unwrap();
        let got: Vec<i64> = a.elements().iter().map(|n| n.as_i64()).collect();
        assert_eq!(got, vec![0, 2, 4, 6, 8, 10, 12, 14, 16, 18]);
        let st = store.last_stats();
        assert_eq!(st.statements, 1);
        assert_eq!(st.chunks_fetched, 19);
        assert_eq!(st.elements_resolved, 10);
    }

    #[test]
    fn single_element_access() {
        let (mut store, proxy) = store_with_matrix(64);
        let cell = proxy
            .dereference(&[Subscript::Index(3), Subscript::Index(5)])
            .unwrap();
        let a = store.resolve(&cell, RetrievalStrategy::Single).unwrap();
        assert_eq!(a.scalar_value().unwrap().as_i64(), 2 * 20 + 4); // (3-1)*20+(5-1)
        assert_eq!(store.last_stats().chunks_fetched, 1);
    }

    #[test]
    fn aggregate_matches_materialized() {
        let (mut store, proxy) = store_with_matrix(64);
        let slice = proxy.slice(0, 2, 3, 17).unwrap();
        let materialized = store
            .resolve(&slice, RetrievalStrategy::WholeArray)
            .unwrap();
        for op in [
            AggregateOp::Sum,
            AggregateOp::Avg,
            AggregateOp::Min,
            AggregateOp::Max,
            AggregateOp::Count,
        ] {
            let streamed = store
                .resolve_aggregate(&slice, op, RetrievalStrategy::BufferedIn { buffer_size: 4 })
                .unwrap();
            assert_eq!(streamed, materialized.aggregate(op).unwrap(), "{op:?}");
        }
    }

    #[test]
    fn aggregate_count_needs_no_io() {
        let (mut store, proxy) = store_with_matrix(64);
        let n = store
            .resolve_aggregate(&proxy, AggregateOp::Count, RetrievalStrategy::Single)
            .unwrap();
        assert_eq!(n, Num::Int(400));
        assert_eq!(store.last_stats().statements, 0);
    }

    #[test]
    fn real_arrays_round_trip() {
        let mut store = ArrayStore::new(MemoryChunkStore::new());
        let a = NumArray::from_f64((0..100).map(|i| i as f64 / 4.0).collect());
        let proxy = store.store_array(&a, 32).unwrap();
        let back = store
            .resolve(&proxy, RetrievalStrategy::WholeArray)
            .unwrap();
        assert!(back.array_eq(&a));
        assert_eq!(back.numeric_type(), NumericType::Real);
    }

    #[test]
    fn storing_a_view_stores_logical_content() {
        let mut store = ArrayStore::new(MemoryChunkStore::new());
        let m = NumArray::from_i64_shaped((0..12).collect(), &[3, 4]).unwrap();
        let t = m.transpose();
        let proxy = store.store_array(&t, 32).unwrap();
        let back = store
            .resolve(&proxy, RetrievalStrategy::WholeArray)
            .unwrap();
        assert!(back.array_eq(&t));
    }

    #[test]
    fn delete_array_removes_chunks() {
        let (mut store, proxy) = store_with_matrix(64);
        let id = proxy.array_id();
        store.delete_array(id).unwrap();
        assert!(store.proxy(id).is_err());
        assert!(store.resolve(&proxy, RetrievalStrategy::Single).is_err());
    }

    #[test]
    fn mediator_link_external() {
        let mut store = ArrayStore::new(MemoryChunkStore::new());
        // Simulate pre-existing chunks written by another system.
        let chunking = Chunking::new(32, 10);
        for c in 0..chunking.chunk_count() {
            let (s, e) = chunking.chunk_span(c);
            let data: Vec<u8> = (s..e).flat_map(|i| (i as i64).to_le_bytes()).collect();
            store.backend_mut().put_chunk(77, c, &data).unwrap();
        }
        let proxy = store.link_external(ArrayMeta {
            array_id: 77,
            numeric_type: NumericType::Int,
            shape: vec![10],
            chunking,
        });
        let a = store
            .resolve(&proxy, RetrievalStrategy::WholeArray)
            .unwrap();
        assert_eq!(a.elements().iter().map(|n| n.as_i64()).sum::<i64>(), 45);
    }
}
