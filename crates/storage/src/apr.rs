//! Array-proxy resolution (APR) and the retrieval strategies.
//!
//! APR is the physical-algebra operator SSDM inserts where a query needs
//! the *elements* behind an array proxy (thesis §6.1.1). It computes the
//! linear addresses the proxy's view touches, maps them to chunk ids,
//! fetches those chunks from the back-end with a [`RetrievalStrategy`],
//! and assembles a resident [`NumArray`]. The aggregate variant (AAPR)
//! folds elements chunk-by-chunk without materializing the whole view —
//! the "costly array processing, e.g. filtering and aggregation, is thus
//! performed on the server" behaviour of the abstract.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, OnceLock};

use ssdm_array::{kernel, AggregateOp, ArrayData, LinearRuns, Num, NumArray, NumericType};

use crate::chunks::Chunking;
use crate::codec::{self, ChunkSummary, CodecPolicy, ValuePredicate, ZoneMap};
use crate::meta::{ArrayMeta, ArrayProxy};
use crate::resilient::ResilienceStats;
use crate::spd::{self, FetchOp, SpdOptions};
use crate::store::{ChunkStore, IoStats, StorageError};
use crate::Result;

/// How the APR turns a set of needed chunk ids into back-end statements
/// (the strategies compared in thesis §6.3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetrievalStrategy {
    /// One statement per chunk — the naive baseline whose cost is
    /// dominated by per-statement round trips.
    Single,
    /// Buffer up to `buffer_size` ids and issue one `IN`-list statement
    /// per batch (§6.2.4).
    BufferedIn { buffer_size: usize },
    /// Run the Sequence Pattern Detector over the id sequence and issue
    /// range statements for regular patterns (§6.2.5).
    SpdRange { options: SpdOptions },
    /// Fetch the whole array with one range statement regardless of the
    /// view — the degenerate strategy, optimal only for dense views.
    WholeArray,
}

impl RetrievalStrategy {
    pub fn name(&self) -> &'static str {
        match self {
            RetrievalStrategy::Single => "SINGLE",
            RetrievalStrategy::BufferedIn { .. } => "BUFFERED-IN",
            RetrievalStrategy::SpdRange { .. } => "SPD-RANGE",
            RetrievalStrategy::WholeArray => "WHOLE-ARRAY",
        }
    }
}

/// Per-resolution statistics (deltas of the back-end counters).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AprStats {
    pub statements: u64,
    pub chunks_fetched: u64,
    pub bytes_fetched: u64,
    pub elements_resolved: u64,
    /// Batched statements (`IN`-list or range) that failed and were
    /// served by per-chunk `Single` retrieval instead of aborting the
    /// query (graceful degradation).
    pub fallbacks: u64,
    /// Retries performed by a [`crate::ResilientChunkStore`] in the
    /// back-end stack during this resolution (zero for plain stacks).
    pub retries: u64,
    /// Checksum violations that were healed by a successful re-read
    /// during this resolution.
    pub corruption_repaired: u64,
    /// Chunks the zone map proved irrelevant for a filtered resolution:
    /// they were dropped from the fetch plan before any back-end
    /// statement was issued.
    pub chunks_skipped: u64,
    /// Fetched `SCC1` frames that were decompressed during this
    /// resolution (zero for raw-stored arrays).
    pub chunks_decoded: u64,
    /// Uncompressed bytes produced by those decodes.
    pub bytes_decoded: u64,
}

impl AprStats {
    /// True when this resolution needed any resilience machinery —
    /// useful to flag degraded-but-successful queries in logs.
    pub fn degraded(&self) -> bool {
        self.fallbacks > 0 || self.retries > 0 || self.corruption_repaired > 0
    }

    /// Field-wise accumulation (used for the store-lifetime totals).
    fn accumulate(&mut self, delta: &AprStats) {
        self.statements += delta.statements;
        self.chunks_fetched += delta.chunks_fetched;
        self.bytes_fetched += delta.bytes_fetched;
        self.elements_resolved += delta.elements_resolved;
        self.fallbacks += delta.fallbacks;
        self.retries += delta.retries;
        self.corruption_repaired += delta.corruption_repaired;
        self.chunks_skipped += delta.chunks_skipped;
        self.chunks_decoded += delta.chunks_decoded;
        self.bytes_decoded += delta.bytes_decoded;
    }
}

/// Process-wide count of chunks skipped via zone-map pruning.
fn obs_chunks_skipped() -> &'static Arc<ssdm_obs::Counter> {
    static C: OnceLock<Arc<ssdm_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| ssdm_obs::recorder().counter("ssdm_chunks_skipped"))
}

/// Process-wide count of `SCC1` frames decompressed.
fn obs_chunks_decoded() -> &'static Arc<ssdm_obs::Counter> {
    static C: OnceLock<Arc<ssdm_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| ssdm_obs::recorder().counter("ssdm_chunks_decoded"))
}

/// Decode tallies of one resolution (chunk frames decompressed and the
/// uncompressed bytes they produced).
#[derive(Debug, Default, Clone, Copy)]
struct DecodeTally {
    chunks: u64,
    bytes: u64,
}

impl DecodeTally {
    fn note(&mut self, decoded_bytes: u64) {
        if decoded_bytes > 0 {
            self.chunks += 1;
            self.bytes += decoded_bytes;
        }
    }
}

/// Decode a fetched payload back to raw little-endian elements when the
/// owning array stores `SCC1` frames; raw-stored arrays pass through
/// untouched. Returns the raw payload and the decoded byte count (zero
/// when no decode happened). Malformed frames surface as the same typed
/// [`StorageError::Corrupt`] the CRC layer raises, so resilience and
/// retry accounting treat codec damage exactly like frame damage.
pub(crate) fn decode_payload(
    encoded: bool,
    payload: Vec<u8>,
    array_id: u64,
    chunk_id: u64,
) -> Result<(Vec<u8>, u64)> {
    if !encoded {
        return Ok((payload, 0));
    }
    match codec::decode_chunk(&payload) {
        Ok(raw) => {
            let bytes = raw.len() as u64;
            if ssdm_obs::recorder().enabled() {
                obs_chunks_decoded().add(1);
            }
            Ok((raw, bytes))
        }
        Err(e) => Err(StorageError::Corrupt {
            array_id,
            chunk_id,
            detail: e.to_string(),
        }),
    }
}

/// Process-wide chunk-fetch latency histogram. Sequential fetch ops
/// ([`ArrayStore::execute`]) and parallel workers
/// ([`crate::parallel::fetch_plan`]) both time each back-end statement
/// into it.
pub(crate) fn obs_chunk_fetch_hist() -> &'static Arc<ssdm_obs::Histogram> {
    static H: OnceLock<Arc<ssdm_obs::Histogram>> = OnceLock::new();
    H.get_or_init(|| ssdm_obs::recorder().histogram("ssdm_chunk_fetch_seconds"))
}

/// The array catalog plus its chunk back-end: SSDM's handle on
/// externally stored arrays.
pub struct ArrayStore<S: ChunkStore> {
    backend: S,
    catalog: HashMap<u64, Arc<ArrayMeta>>,
    /// Chunk-summary catalog: one zone map per *stored* array (linked
    /// external arrays have none until one is restored from a
    /// snapshot), consulted by the filtered resolve paths to skip
    /// chunks before fetch.
    zone_maps: HashMap<u64, Arc<ZoneMap>>,
    codec: CodecPolicy,
    skip_enabled: bool,
    next_id: u64,
    last_stats: AprStats,
    cumulative: AprStats,
}

impl<S: ChunkStore> ArrayStore<S> {
    pub fn new(backend: S) -> Self {
        ArrayStore {
            backend,
            catalog: HashMap::new(),
            zone_maps: HashMap::new(),
            codec: CodecPolicy::from_env(),
            skip_enabled: true,
            next_id: 1,
            last_stats: AprStats::default(),
            cumulative: AprStats::default(),
        }
    }

    /// The codec policy newly stored arrays are encoded with.
    pub fn codec(&self) -> CodecPolicy {
        self.codec
    }

    pub fn set_codec(&mut self, codec: CodecPolicy) {
        self.codec = codec;
    }

    /// Whether filtered resolutions consult zone maps to skip chunks.
    /// On by default; turning it off never changes results (skipping is
    /// strictly conservative), only how many chunks are fetched.
    pub fn skip_enabled(&self) -> bool {
        self.skip_enabled
    }

    pub fn set_skip_enabled(&mut self, enabled: bool) {
        self.skip_enabled = enabled;
    }

    /// The zone map of a stored array, if one exists.
    pub fn zone_map(&self, array_id: u64) -> Option<&Arc<ZoneMap>> {
        self.zone_maps.get(&array_id)
    }

    /// Install a zone map for an array (snapshot restore of linked
    /// external arrays).
    pub fn set_zone_map(&mut self, array_id: u64, zone_map: ZoneMap) {
        self.zone_maps.insert(array_id, Arc::new(zone_map));
    }

    /// Every zone map in the store, unordered. The planner walks these
    /// to cost `array_contains` / `array_*_range` pushdown by expected
    /// matching-chunk fraction.
    pub fn zone_maps(&self) -> impl Iterator<Item = &Arc<ZoneMap>> {
        self.zone_maps.values()
    }

    pub fn backend(&self) -> &S {
        &self.backend
    }

    pub fn backend_mut(&mut self) -> &mut S {
        &mut self.backend
    }

    /// Statistics of the most recent resolve call.
    pub fn last_stats(&self) -> AprStats {
        self.last_stats
    }

    /// Totals accumulated over every resolve this store has performed.
    /// Reported alongside [`last_stats`](Self::last_stats) under an
    /// explicit `cumulative` scope so the two can't be conflated.
    pub fn cumulative_stats(&self) -> AprStats {
        self.cumulative
    }

    /// Linearize and store an array in chunks of `chunk_bytes`,
    /// returning a whole-array proxy.
    pub fn store_array(&mut self, array: &NumArray, chunk_bytes: usize) -> Result<ArrayProxy> {
        let array_id = self.next_id;
        self.next_id += 1;
        let materialized;
        let dense = if array.view().is_contiguous() && array.view().offset() == 0 {
            array
        } else {
            materialized = array.materialize();
            &materialized
        };
        let shape = dense.shape();
        let chunking = Chunking::new(chunk_bytes, dense.element_count());
        let ty = dense.numeric_type();
        self.backend.begin_array(array_id, chunk_bytes)?;
        let mut summaries: Vec<ChunkSummary> = Vec::with_capacity(chunking.chunk_count() as usize);
        for c in 0..chunking.chunk_count() {
            let (start, end) = chunking.chunk_span(c);
            let raw = dense.data().serialize_range(start, end);
            let (frame, summary) = codec::encode_chunk(&raw, ty, self.codec);
            summaries.push(summary);
            self.backend.put_chunk(array_id, c, &frame)?;
        }
        self.zone_maps
            .insert(array_id, Arc::new(ZoneMap { ty, summaries }));
        let meta = Arc::new(ArrayMeta {
            array_id,
            numeric_type: ty,
            shape,
            chunking,
            encoded: true,
        });
        self.catalog.insert(array_id, Arc::clone(&meta));
        Ok(ArrayProxy::whole(meta))
    }

    /// A whole-array proxy for a cataloged array.
    pub fn proxy(&self, array_id: u64) -> Result<ArrayProxy> {
        self.catalog
            .get(&array_id)
            .map(|m| ArrayProxy::whole(Arc::clone(m)))
            .ok_or(StorageError::MissingArray(array_id))
    }

    /// Register an array that already lives in the back-end (the
    /// *mediator scenario*, thesis §6: linking external arrays into an
    /// RDF graph without loading them).
    pub fn link_external(&mut self, meta: ArrayMeta) -> ArrayProxy {
        let id = meta.array_id;
        self.next_id = self.next_id.max(id + 1);
        let meta = Arc::new(meta);
        self.catalog.insert(id, Arc::clone(&meta));
        ArrayProxy::whole(meta)
    }

    /// Iterate the catalog entries (for snapshots and inspection).
    pub fn catalog(&self) -> impl Iterator<Item = &Arc<ArrayMeta>> {
        self.catalog.values()
    }

    /// Drop an array from the catalog and the back-end.
    pub fn delete_array(&mut self, array_id: u64) -> Result<()> {
        let meta = self
            .catalog
            .remove(&array_id)
            .ok_or(StorageError::MissingArray(array_id))?;
        self.zone_maps.remove(&array_id);
        self.backend
            .delete_array(array_id, meta.chunking.chunk_count())
    }

    /// Resolve a proxy to a resident array (the APR operator).
    pub fn resolve(&mut self, proxy: &ArrayProxy, strategy: RetrievalStrategy) -> Result<NumArray> {
        let before = self.backend.io_stats();
        let before_res = self.backend.resilience_stats();
        let meta = proxy.meta();
        let chunking = meta.chunking;
        let addresses = proxy.view().addresses();
        let needed = needed_chunks(proxy, &chunking);
        let mut fallbacks = 0u64;
        let mut decoded = DecodeTally::default();
        let chunks = self.fetch(
            meta,
            &chunking,
            &needed,
            strategy,
            &mut fallbacks,
            &mut decoded,
        )?;
        let nums = gather(
            &chunks,
            &chunking,
            meta.numeric_type,
            &addresses,
            meta.array_id,
        )?;
        self.finish_stats(before, before_res, fallbacks, addresses.len(), 0, decoded);
        let data = match meta.numeric_type {
            NumericType::Int => ArrayData::from_i64(nums.iter().map(|n| n.as_i64()).collect()),
            NumericType::Real => ArrayData::from_f64(nums.iter().map(|n| n.as_f64()).collect()),
        };
        Ok(NumArray::from_data(data, &proxy.shape())?)
    }

    /// Resolve a proxy with the fetch plan partitioned across a worker
    /// pool (the parallel retrieval pipeline, [`crate::parallel`]).
    ///
    /// The result is bit-identical to [`resolve`](Self::resolve) with
    /// the same strategy — the same statements execute, concurrently —
    /// and [`last_stats`](Self::last_stats) stays exact. When the
    /// back-end does not tolerate shared reads
    /// ([`Capabilities::supports_parallel`] is false) or `config`
    /// requests at most one worker, this *is* the sequential path.
    ///
    /// [`Capabilities::supports_parallel`]: crate::Capabilities::supports_parallel
    pub fn resolve_parallel(
        &mut self,
        proxy: &ArrayProxy,
        strategy: RetrievalStrategy,
        config: crate::ParallelConfig,
    ) -> Result<NumArray>
    where
        S: crate::SharedChunkRead,
    {
        if config.workers <= 1 || !self.backend.capabilities().supports_parallel {
            return self.resolve(proxy, strategy);
        }
        let before = self.backend.io_stats();
        let before_res = self.backend.resilience_stats();
        let meta = proxy.meta();
        let chunking = meta.chunking;
        let addresses = proxy.view().addresses();
        let needed = needed_chunks(proxy, &chunking);
        let plan = make_plan(&needed, &chunking, strategy);
        let (encoded, array_id) = (meta.encoded, meta.array_id);
        let dec_chunks = std::sync::atomic::AtomicU64::new(0);
        let dec_bytes = std::sync::atomic::AtomicU64::new(0);
        // Decode inside the fetching worker (via `run_plan`'s `process`
        // hook), so decompression overlaps the round trips of the other
        // ops exactly like CRC verification does.
        let (per_op, fallbacks) = crate::parallel::run_plan(
            &self.backend,
            array_id,
            &plan,
            &needed,
            config.workers,
            |_, rows| {
                let mut out = Vec::with_capacity(rows.len());
                for (cid, payload) in rows {
                    let (raw, bytes) = decode_payload(encoded, payload, array_id, cid)?;
                    if bytes > 0 {
                        dec_chunks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        dec_bytes.fetch_add(bytes, std::sync::atomic::Ordering::Relaxed);
                    }
                    out.push((cid, raw));
                }
                Ok(out)
            },
        )?;
        let mut chunks = HashMap::with_capacity(needed.len());
        for rows in per_op {
            for (cid, payload) in rows {
                chunks.insert(cid, payload);
            }
        }
        let nums = gather(
            &chunks,
            &chunking,
            meta.numeric_type,
            &addresses,
            meta.array_id,
        )?;
        let decoded = DecodeTally {
            chunks: dec_chunks.into_inner(),
            bytes: dec_bytes.into_inner(),
        };
        self.finish_stats(before, before_res, fallbacks, addresses.len(), 0, decoded);
        let data = match meta.numeric_type {
            NumericType::Int => ArrayData::from_i64(nums.iter().map(|n| n.as_i64()).collect()),
            NumericType::Real => ArrayData::from_f64(nums.iter().map(|n| n.as_f64()).collect()),
        };
        Ok(NumArray::from_data(data, &proxy.shape())?)
    }

    /// Streamed aggregate over a proxy (the AAPR operator): chunks are
    /// fetched batch-wise and folded immediately, so peak memory is one
    /// batch regardless of the view size.
    ///
    /// Each chunk's needed elements are decoded densely and folded into
    /// a *per-chunk partial* by the typed kernels
    /// (`ssdm_array::kernel`), and partials are combined in plan order —
    /// the exact same fold structure
    /// [`resolve_aggregate_parallel`](Self::resolve_aggregate_parallel)
    /// uses, so sequential and parallel AAPR are bit-identical by
    /// construction for every strategy (`f64` sums follow the
    /// documented pairwise order; see DESIGN.md).
    pub fn resolve_aggregate(
        &mut self,
        proxy: &ArrayProxy,
        op: AggregateOp,
        strategy: RetrievalStrategy,
    ) -> Result<Num> {
        let before = self.backend.io_stats();
        let before_res = self.backend.resilience_stats();
        let meta = proxy.meta();
        let chunking = meta.chunking;
        // Group needed addresses by chunk so each fetched chunk is
        // consumed once and dropped.
        let mut by_chunk: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut count = 0u64;
        proxy.view().for_each_address(|a| {
            by_chunk.entry(chunking.chunk_of(a)).or_default().push(a);
            count += 1;
        });
        if count == 0 {
            self.finish_stats(before, before_res, 0, 0, 0, DecodeTally::default());
            return match op {
                AggregateOp::Count => Ok(Num::Int(0)),
                AggregateOp::Sum => Ok(Num::Int(0)),
                AggregateOp::Prod => Ok(Num::Int(1)),
                _ => Err(StorageError::Backend(
                    "aggregate over empty array view".into(),
                )),
            };
        }
        if op == AggregateOp::Count {
            self.finish_stats(before, before_res, 0, 0, 0, DecodeTally::default());
            return Ok(Num::Int(count as i64));
        }
        let needed: Vec<u64> = by_chunk.keys().copied().collect();
        let plan = make_plan(&needed, &chunking, strategy);
        let encoded = meta.encoded;
        let mut acc: Option<Num> = None;
        let mut n = 0u64;
        let mut fallbacks = 0u64;
        let mut decoded = DecodeTally::default();
        for fetch_op in plan {
            let rows =
                self.execute_with_fallback(meta.array_id, &fetch_op, &needed, &mut fallbacks)?;
            for (cid, payload) in rows {
                let Some(addrs) = by_chunk.get(&cid) else {
                    continue; // overfetched by a covering range
                };
                let (payload, bytes) = decode_payload(encoded, payload, meta.array_id, cid)?;
                decoded.note(bytes);
                let (chunk_start, _) = chunking.chunk_span(cid);
                let (part, c) = chunk_partial(
                    &payload,
                    addrs,
                    chunk_start,
                    meta.numeric_type,
                    op,
                    meta.array_id,
                    cid,
                )?;
                n += c;
                acc = Some(match acc {
                    None => part,
                    Some(prev) => fold(op, prev, part)?,
                });
            }
        }
        self.finish_stats(before, before_res, fallbacks, n as usize, 0, decoded);
        let total = acc.ok_or(StorageError::Backend("no elements resolved".into()))?;
        Ok(match op {
            AggregateOp::Avg => Num::Real(total.as_f64() / n as f64),
            _ => total,
        })
    }

    /// Parallel AAPR: the fetch plan is partitioned across a scoped
    /// worker pool and each worker decodes and folds its chunks into
    /// per-chunk partial aggregates *in place* (via
    /// [`crate::parallel::run_plan`]), dropping the payloads without
    /// central assembly — fetch and compute overlap. Partials are then
    /// combined in deterministic plan order, so the result is
    /// bit-identical to [`resolve_aggregate`](Self::resolve_aggregate)
    /// for every worker count and strategy. Degrades to the sequential
    /// path when `config` requests at most one worker or the back-end
    /// lacks [`supports_parallel`].
    ///
    /// [`supports_parallel`]: crate::Capabilities::supports_parallel
    pub fn resolve_aggregate_parallel(
        &mut self,
        proxy: &ArrayProxy,
        op: AggregateOp,
        strategy: RetrievalStrategy,
        config: crate::ParallelConfig,
    ) -> Result<Num>
    where
        S: crate::SharedChunkRead,
    {
        if config.workers <= 1 || !self.backend.capabilities().supports_parallel {
            return self.resolve_aggregate(proxy, op, strategy);
        }
        let before = self.backend.io_stats();
        let before_res = self.backend.resilience_stats();
        let meta = proxy.meta();
        let chunking = meta.chunking;
        let mut by_chunk: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut count = 0u64;
        proxy.view().for_each_address(|a| {
            by_chunk.entry(chunking.chunk_of(a)).or_default().push(a);
            count += 1;
        });
        if count == 0 {
            self.finish_stats(before, before_res, 0, 0, 0, DecodeTally::default());
            return match op {
                AggregateOp::Count => Ok(Num::Int(0)),
                AggregateOp::Sum => Ok(Num::Int(0)),
                AggregateOp::Prod => Ok(Num::Int(1)),
                _ => Err(StorageError::Backend(
                    "aggregate over empty array view".into(),
                )),
            };
        }
        if op == AggregateOp::Count {
            self.finish_stats(before, before_res, 0, 0, 0, DecodeTally::default());
            return Ok(Num::Int(count as i64));
        }
        let needed: Vec<u64> = by_chunk.keys().copied().collect();
        let plan = make_plan(&needed, &chunking, strategy);
        let (ty, array_id, encoded) = (meta.numeric_type, meta.array_id, meta.encoded);
        let by_chunk = &by_chunk;
        let dec_chunks = std::sync::atomic::AtomicU64::new(0);
        let dec_bytes = std::sync::atomic::AtomicU64::new(0);
        let (per_op, fallbacks) = crate::parallel::run_plan(
            &self.backend,
            array_id,
            &plan,
            &needed,
            config.workers,
            |_, rows| {
                let mut parts = Vec::with_capacity(rows.len());
                for (cid, payload) in rows {
                    let Some(addrs) = by_chunk.get(&cid) else {
                        continue; // overfetched by a covering range
                    };
                    let (payload, bytes) = decode_payload(encoded, payload, array_id, cid)?;
                    if bytes > 0 {
                        dec_chunks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        dec_bytes.fetch_add(bytes, std::sync::atomic::Ordering::Relaxed);
                    }
                    let (chunk_start, _) = chunking.chunk_span(cid);
                    parts.push(chunk_partial(
                        &payload,
                        addrs,
                        chunk_start,
                        ty,
                        op,
                        array_id,
                        cid,
                    )?);
                }
                kernel::note_parallel_folds(parts.len() as u64);
                Ok(parts)
            },
        )?;
        let mut acc: Option<Num> = None;
        let mut n = 0u64;
        for parts in per_op {
            for (part, c) in parts {
                n += c;
                acc = Some(match acc {
                    None => part,
                    Some(prev) => fold(op, prev, part)?,
                });
            }
        }
        let decoded = DecodeTally {
            chunks: dec_chunks.into_inner(),
            bytes: dec_bytes.into_inner(),
        };
        self.finish_stats(before, before_res, fallbacks, n as usize, 0, decoded);
        let total = acc.ok_or(StorageError::Backend("no elements resolved".into()))?;
        Ok(match op {
            AggregateOp::Avg => Num::Real(total.as_f64() / n as f64),
            _ => total,
        })
    }

    fn fetch(
        &mut self,
        meta: &ArrayMeta,
        chunking: &Chunking,
        needed: &[u64],
        strategy: RetrievalStrategy,
        fallbacks: &mut u64,
        decoded: &mut DecodeTally,
    ) -> Result<HashMap<u64, Vec<u8>>> {
        let (array_id, encoded) = (meta.array_id, meta.encoded);
        let mut out = HashMap::with_capacity(needed.len());
        for op in make_plan(needed, chunking, strategy) {
            for (cid, payload) in self.execute_with_fallback(array_id, &op, needed, fallbacks)? {
                let (raw, bytes) = decode_payload(encoded, payload, array_id, cid)?;
                decoded.note(bytes);
                out.insert(cid, raw);
            }
        }
        Ok(out)
    }

    fn execute(&mut self, array_id: u64, op: &FetchOp) -> Result<Vec<(u64, Vec<u8>)>> {
        let _span = ssdm_obs::Span::start(obs_chunk_fetch_hist());
        match op {
            FetchOp::Range { lo, hi } => self.backend.get_chunk_range(array_id, *lo, *hi),
            FetchOp::In(ids) => {
                if ids.len() == 1 {
                    Ok(vec![(ids[0], self.backend.get_chunk(array_id, ids[0])?)])
                } else {
                    self.backend.get_chunks_in(array_id, ids)
                }
            }
        }
    }

    /// Execute one fetch op; when a *batched* statement (`IN`-list of
    /// several ids, or a range) fails, degrade to per-chunk `Single`
    /// retrieval of the needed ids it covered instead of aborting the
    /// whole resolution. A corrupt or unavailable chunk that was only
    /// *overfetched* by a covering range thus cannot sink a query that
    /// never needed it.
    fn execute_with_fallback(
        &mut self,
        array_id: u64,
        op: &FetchOp,
        needed: &[u64],
        fallbacks: &mut u64,
    ) -> Result<Vec<(u64, Vec<u8>)>> {
        let batched = match op {
            FetchOp::Range { .. } => true,
            FetchOp::In(ids) => ids.len() > 1,
        };
        match self.execute(array_id, op) {
            Ok(rows) => Ok(rows),
            Err(e) if !batched => Err(e),
            Err(_) => {
                *fallbacks += 1;
                let ids: Vec<u64> = match op {
                    FetchOp::In(ids) => ids.clone(),
                    FetchOp::Range { lo, hi } => needed
                        .iter()
                        .copied()
                        .filter(|c| (*lo..=*hi).contains(c))
                        .collect(),
                };
                let mut out = Vec::with_capacity(ids.len());
                for c in ids {
                    out.push((c, self.backend.get_chunk(array_id, c)?));
                }
                Ok(out)
            }
        }
    }

    fn finish_stats(
        &mut self,
        before: IoStats,
        before_res: ResilienceStats,
        fallbacks: u64,
        elements: usize,
        skipped: u64,
        decoded: DecodeTally,
    ) {
        let after = self.backend.io_stats();
        let res = self.backend.resilience_stats().since(&before_res);
        self.last_stats = AprStats {
            statements: after.statements - before.statements,
            chunks_fetched: after.chunks_returned - before.chunks_returned,
            bytes_fetched: after.bytes_returned - before.bytes_returned,
            elements_resolved: elements as u64,
            fallbacks,
            retries: res.retries,
            corruption_repaired: res.corruption_repaired,
            chunks_skipped: skipped,
            chunks_decoded: decoded.chunks,
            bytes_decoded: decoded.bytes,
        };
        self.cumulative.accumulate(&self.last_stats);
    }

    /// Drop the chunks of `by_chunk` whose zone-map summary proves they
    /// cannot hold a match for `pred` — *before* the fetch plan is
    /// built, so range plans shrink and skipped chunks never reach the
    /// back-end. Returns the number of chunks skipped. No-ops (and
    /// stays correct) when skipping is disabled or the array has no
    /// zone map.
    fn prune_chunks(
        &self,
        array_id: u64,
        by_chunk: &mut BTreeMap<u64, Vec<usize>>,
        pred: &ValuePredicate,
    ) -> u64 {
        if !self.skip_enabled {
            return 0;
        }
        let Some(zm) = self.zone_maps.get(&array_id) else {
            return 0;
        };
        let before = by_chunk.len();
        by_chunk.retain(|cid, _| zm.may_match(*cid, pred));
        let skipped = (before - by_chunk.len()) as u64;
        if skipped > 0 && ssdm_obs::recorder().enabled() {
            obs_chunks_skipped().add(skipped);
        }
        skipped
    }

    /// Resolve the elements of a proxy's view that satisfy `pred`, in
    /// view order (the APR analogue of a `FILTER` scan). Chunks whose
    /// summary proves no element can match are skipped before fetch;
    /// the returned values are identical with skipping on or off.
    pub fn resolve_filtered(
        &mut self,
        proxy: &ArrayProxy,
        pred: &ValuePredicate,
        strategy: RetrievalStrategy,
    ) -> Result<Vec<Num>> {
        let before = self.backend.io_stats();
        let before_res = self.backend.resilience_stats();
        let meta = Arc::clone(proxy.meta());
        let chunking = meta.chunking;
        let addresses = proxy.view().addresses();
        let mut by_chunk: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for &a in &addresses {
            by_chunk.entry(chunking.chunk_of(a)).or_default().push(a);
        }
        let skipped = self.prune_chunks(meta.array_id, &mut by_chunk, pred);
        let needed: Vec<u64> = by_chunk.keys().copied().collect();
        let mut fallbacks = 0u64;
        let mut decoded = DecodeTally::default();
        let chunks = self.fetch(
            &meta,
            &chunking,
            &needed,
            strategy,
            &mut fallbacks,
            &mut decoded,
        )?;
        let mut out = Vec::new();
        for &a in &addresses {
            let cid = chunking.chunk_of(a);
            if !by_chunk.contains_key(&cid) {
                continue; // skipped: provably no match at this address
            }
            let payload = chunks.get(&cid).ok_or(StorageError::MissingChunk {
                array_id: meta.array_id,
                chunk_id: cid,
            })?;
            let (start, _) = chunking.chunk_span(cid);
            let v = decode_element(payload, a - start, meta.numeric_type).ok_or(
                StorageError::MissingChunk {
                    array_id: meta.array_id,
                    chunk_id: cid,
                },
            )?;
            if pred.matches(v) {
                out.push(v);
            }
        }
        let elements = out.len();
        self.finish_stats(before, before_res, fallbacks, elements, skipped, decoded);
        Ok(out)
    }

    /// Whether any element of the proxy's view satisfies `pred`
    /// (membership / `EXISTS`). Skips non-qualifying chunks via the
    /// zone map and stops at the first match.
    pub fn resolve_exists(
        &mut self,
        proxy: &ArrayProxy,
        pred: &ValuePredicate,
        strategy: RetrievalStrategy,
    ) -> Result<bool> {
        let before = self.backend.io_stats();
        let before_res = self.backend.resilience_stats();
        let meta = Arc::clone(proxy.meta());
        let chunking = meta.chunking;
        let mut by_chunk: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        proxy.view().for_each_address(|a| {
            by_chunk.entry(chunking.chunk_of(a)).or_default().push(a);
        });
        let skipped = self.prune_chunks(meta.array_id, &mut by_chunk, pred);
        let needed: Vec<u64> = by_chunk.keys().copied().collect();
        let plan = make_plan(&needed, &chunking, strategy);
        let mut fallbacks = 0u64;
        let mut decoded = DecodeTally::default();
        let mut examined = 0usize;
        let mut found = false;
        'ops: for fetch_op in plan {
            let rows =
                self.execute_with_fallback(meta.array_id, &fetch_op, &needed, &mut fallbacks)?;
            for (cid, payload) in rows {
                let Some(addrs) = by_chunk.get(&cid) else {
                    continue; // overfetched by a covering range
                };
                let (payload, bytes) = decode_payload(meta.encoded, payload, meta.array_id, cid)?;
                decoded.note(bytes);
                let (start, _) = chunking.chunk_span(cid);
                for &a in addrs {
                    let v = decode_element(&payload, a - start, meta.numeric_type).ok_or(
                        StorageError::MissingChunk {
                            array_id: meta.array_id,
                            chunk_id: cid,
                        },
                    )?;
                    examined += 1;
                    if pred.matches(v) {
                        found = true;
                        break 'ops;
                    }
                }
            }
        }
        self.finish_stats(before, before_res, fallbacks, examined, skipped, decoded);
        Ok(found)
    }

    /// Streamed aggregate over the elements of a proxy's view that
    /// satisfy `pred` (filtered AAPR). Non-qualifying chunks are
    /// skipped before fetch; chunks none of whose addressed elements
    /// match contribute *no* fold partial, which is what makes the
    /// result bit-identical with skipping on or off (including `f64`
    /// sums, whose fold order is structural). With no matching elements
    /// the result mirrors the empty-view semantics: `Count`/`Sum` are
    /// 0, `Prod` is 1, the rest error.
    pub fn resolve_aggregate_filtered(
        &mut self,
        proxy: &ArrayProxy,
        pred: &ValuePredicate,
        op: AggregateOp,
        strategy: RetrievalStrategy,
    ) -> Result<Num> {
        let before = self.backend.io_stats();
        let before_res = self.backend.resilience_stats();
        let meta = Arc::clone(proxy.meta());
        let chunking = meta.chunking;
        let mut by_chunk: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        proxy.view().for_each_address(|a| {
            by_chunk.entry(chunking.chunk_of(a)).or_default().push(a);
        });
        let skipped = self.prune_chunks(meta.array_id, &mut by_chunk, pred);
        let needed: Vec<u64> = by_chunk.keys().copied().collect();
        let plan = make_plan(&needed, &chunking, strategy);
        let mut acc: Option<Num> = None;
        let mut n = 0u64;
        let mut fallbacks = 0u64;
        let mut decoded = DecodeTally::default();
        for fetch_op in plan {
            let rows =
                self.execute_with_fallback(meta.array_id, &fetch_op, &needed, &mut fallbacks)?;
            for (cid, payload) in rows {
                let Some(addrs) = by_chunk.get(&cid) else {
                    continue; // overfetched by a covering range
                };
                let (payload, bytes) = decode_payload(meta.encoded, payload, meta.array_id, cid)?;
                decoded.note(bytes);
                let (chunk_start, _) = chunking.chunk_span(cid);
                if let Some((part, c)) = chunk_partial_filtered(
                    &payload,
                    addrs,
                    chunk_start,
                    meta.numeric_type,
                    op,
                    pred,
                    meta.array_id,
                    cid,
                )? {
                    n += c;
                    acc = Some(match acc {
                        None => part,
                        Some(prev) => fold(combine_op(op), prev, part)?,
                    });
                }
            }
        }
        self.finish_stats(before, before_res, fallbacks, n as usize, skipped, decoded);
        finish_filtered_aggregate(acc, n, op)
    }

    /// Parallel filtered AAPR: zone-map pruning happens up front, then
    /// the surviving plan is partitioned across the worker pool with
    /// decode + filter + fold inside the fetching workers. Partials
    /// combine in plan order, so the result is bit-identical to
    /// [`resolve_aggregate_filtered`](Self::resolve_aggregate_filtered)
    /// for every worker count. Degrades to the sequential path when the
    /// back-end lacks `supports_parallel` or at most one worker is
    /// requested.
    #[allow(clippy::too_many_arguments)]
    pub fn resolve_aggregate_filtered_parallel(
        &mut self,
        proxy: &ArrayProxy,
        pred: &ValuePredicate,
        op: AggregateOp,
        strategy: RetrievalStrategy,
        config: crate::ParallelConfig,
    ) -> Result<Num>
    where
        S: crate::SharedChunkRead,
    {
        if config.workers <= 1 || !self.backend.capabilities().supports_parallel {
            return self.resolve_aggregate_filtered(proxy, pred, op, strategy);
        }
        let before = self.backend.io_stats();
        let before_res = self.backend.resilience_stats();
        let meta = Arc::clone(proxy.meta());
        let chunking = meta.chunking;
        let mut by_chunk: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        proxy.view().for_each_address(|a| {
            by_chunk.entry(chunking.chunk_of(a)).or_default().push(a);
        });
        let skipped = self.prune_chunks(meta.array_id, &mut by_chunk, pred);
        let needed: Vec<u64> = by_chunk.keys().copied().collect();
        let plan = make_plan(&needed, &chunking, strategy);
        let (ty, array_id, encoded) = (meta.numeric_type, meta.array_id, meta.encoded);
        let by_chunk = &by_chunk;
        let dec_chunks = std::sync::atomic::AtomicU64::new(0);
        let dec_bytes = std::sync::atomic::AtomicU64::new(0);
        let (per_op, fallbacks) = crate::parallel::run_plan(
            &self.backend,
            array_id,
            &plan,
            &needed,
            config.workers,
            |_, rows| {
                let mut parts = Vec::with_capacity(rows.len());
                for (cid, payload) in rows {
                    let Some(addrs) = by_chunk.get(&cid) else {
                        continue; // overfetched by a covering range
                    };
                    let (payload, bytes) = decode_payload(encoded, payload, array_id, cid)?;
                    if bytes > 0 {
                        dec_chunks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        dec_bytes.fetch_add(bytes, std::sync::atomic::Ordering::Relaxed);
                    }
                    let (chunk_start, _) = chunking.chunk_span(cid);
                    if let Some(part) = chunk_partial_filtered(
                        &payload,
                        addrs,
                        chunk_start,
                        ty,
                        op,
                        pred,
                        array_id,
                        cid,
                    )? {
                        parts.push(part);
                    }
                }
                kernel::note_parallel_folds(parts.len() as u64);
                Ok(parts)
            },
        )?;
        let mut acc: Option<Num> = None;
        let mut n = 0u64;
        for parts in per_op {
            for (part, c) in parts {
                n += c;
                acc = Some(match acc {
                    None => part,
                    Some(prev) => fold(combine_op(op), prev, part)?,
                });
            }
        }
        let decoded = DecodeTally {
            chunks: dec_chunks.into_inner(),
            bytes: dec_bytes.into_inner(),
        };
        self.finish_stats(before, before_res, fallbacks, n as usize, skipped, decoded);
        finish_filtered_aggregate(acc, n, op)
    }
}

/// Needed chunk ids of a proxy's view, ascending.
fn needed_chunks(proxy: &ArrayProxy, chunking: &Chunking) -> Vec<u64> {
    let runs = LinearRuns::of_view(proxy.view());
    let mut set = BTreeSet::new();
    for run in runs.runs() {
        set.extend(chunking.chunks_for_run(run));
    }
    set.into_iter().collect()
}

/// Build the statement plan for a strategy.
fn make_plan(needed: &[u64], chunking: &Chunking, strategy: RetrievalStrategy) -> Vec<FetchOp> {
    match strategy {
        RetrievalStrategy::Single => needed.iter().map(|&c| FetchOp::In(vec![c])).collect(),
        RetrievalStrategy::BufferedIn { buffer_size } => needed
            .chunks(buffer_size.max(1))
            .map(|b| FetchOp::In(b.to_vec()))
            .collect(),
        RetrievalStrategy::SpdRange { options } => spd::plan(needed, options),
        RetrievalStrategy::WholeArray => {
            if chunking.chunk_count() == 0 {
                Vec::new()
            } else {
                vec![FetchOp::Range {
                    lo: 0,
                    hi: chunking.chunk_count() - 1,
                }]
            }
        }
    }
}

/// Decode one fetched chunk's needed addresses into a dense scratch
/// vector and fold them into a partial aggregate with the typed
/// kernels (`ssdm_array::kernel`). Returns the partial and the number
/// of elements it covers; `Avg` partials are raw sums — the caller
/// divides once by the total count.
fn chunk_partial(
    payload: &[u8],
    addrs: &[usize],
    chunk_start: usize,
    ty: NumericType,
    op: AggregateOp,
    array_id: u64,
    chunk_id: u64,
) -> Result<(Num, u64)> {
    let missing = || StorageError::MissingChunk { array_id, chunk_id };
    let part = match ty {
        NumericType::Int => {
            let mut vals = Vec::with_capacity(addrs.len());
            for &a in addrs {
                let off = (a - chunk_start) * 8;
                let bytes = payload.get(off..off + 8).ok_or_else(missing)?;
                vals.push(i64::from_le_bytes(bytes.try_into().expect("8 bytes")));
            }
            kernel::fold_i64(&vals, op).map_err(StorageError::Array)?
        }
        NumericType::Real => {
            let mut vals = Vec::with_capacity(addrs.len());
            for &a in addrs {
                let off = (a - chunk_start) * 8;
                let bytes = payload.get(off..off + 8).ok_or_else(missing)?;
                vals.push(f64::from_le_bytes(bytes.try_into().expect("8 bytes")));
            }
            kernel::fold_f64(&vals, op).map_err(StorageError::Array)?
        }
    };
    Ok((part, addrs.len() as u64))
}

/// Like [`chunk_partial`], but folding only the addressed elements that
/// satisfy `pred`. Returns `None` when no addressed element matches —
/// the chunk then contributes nothing to the combine, exactly as if the
/// zone map had skipped it, which is what keeps filtered aggregates
/// bit-identical with skipping on or off. `Count` partials are element
/// counts and combine by addition.
#[allow(clippy::too_many_arguments)]
fn chunk_partial_filtered(
    payload: &[u8],
    addrs: &[usize],
    chunk_start: usize,
    ty: NumericType,
    op: AggregateOp,
    pred: &ValuePredicate,
    array_id: u64,
    chunk_id: u64,
) -> Result<Option<(Num, u64)>> {
    let missing = || StorageError::MissingChunk { array_id, chunk_id };
    let part = match ty {
        NumericType::Int => {
            let mut vals = Vec::with_capacity(addrs.len());
            for &a in addrs {
                let off = (a - chunk_start) * 8;
                let bytes = payload.get(off..off + 8).ok_or_else(missing)?;
                let v = i64::from_le_bytes(bytes.try_into().expect("8 bytes"));
                if pred.matches(Num::Int(v)) {
                    vals.push(v);
                }
            }
            if vals.is_empty() {
                return Ok(None);
            }
            if op == AggregateOp::Count {
                return Ok(Some((Num::Int(vals.len() as i64), vals.len() as u64)));
            }
            let n = vals.len() as u64;
            (kernel::fold_i64(&vals, op).map_err(StorageError::Array)?, n)
        }
        NumericType::Real => {
            let mut vals = Vec::with_capacity(addrs.len());
            for &a in addrs {
                let off = (a - chunk_start) * 8;
                let bytes = payload.get(off..off + 8).ok_or_else(missing)?;
                let v = f64::from_le_bytes(bytes.try_into().expect("8 bytes"));
                if pred.matches(Num::Real(v)) {
                    vals.push(v);
                }
            }
            if vals.is_empty() {
                return Ok(None);
            }
            if op == AggregateOp::Count {
                return Ok(Some((Num::Int(vals.len() as i64), vals.len() as u64)));
            }
            let n = vals.len() as u64;
            (kernel::fold_f64(&vals, op).map_err(StorageError::Array)?, n)
        }
    };
    Ok(Some(part))
}

/// The operator used to *combine* per-chunk partials of `op`: `Count`
/// partials are counts, so they add; everything else combines with the
/// aggregate itself (`Avg` partials are raw sums, divided once by the
/// caller).
fn combine_op(op: AggregateOp) -> AggregateOp {
    match op {
        AggregateOp::Count => AggregateOp::Sum,
        other => other,
    }
}

/// Final-value semantics of a filtered aggregate: with no matching
/// elements, mirror the empty-view behaviour of `resolve_aggregate`
/// (`Count`/`Sum` 0, `Prod` 1, the rest error); otherwise divide `Avg`
/// by the matched count.
fn finish_filtered_aggregate(acc: Option<Num>, n: u64, op: AggregateOp) -> Result<Num> {
    match acc {
        None => match op {
            AggregateOp::Count => Ok(Num::Int(0)),
            AggregateOp::Sum => Ok(Num::Int(0)),
            AggregateOp::Prod => Ok(Num::Int(1)),
            _ => Err(StorageError::Backend(
                "aggregate over empty filtered view".into(),
            )),
        },
        Some(total) => Ok(match op {
            AggregateOp::Avg => Num::Real(total.as_f64() / n as f64),
            _ => total,
        }),
    }
}

/// Decode element `off` (in elements) of a chunk payload.
fn decode_element(payload: &[u8], off: usize, ty: NumericType) -> Option<Num> {
    let bytes = payload.get(off * 8..off * 8 + 8)?;
    Some(match ty {
        NumericType::Int => Num::Int(i64::from_le_bytes(bytes.try_into().unwrap())),
        NumericType::Real => Num::Real(f64::from_le_bytes(bytes.try_into().unwrap())),
    })
}

/// Gather the elements at `addresses` from fetched chunks, in order.
fn gather(
    chunks: &HashMap<u64, Vec<u8>>,
    chunking: &Chunking,
    ty: NumericType,
    addresses: &[usize],
    array_id: u64,
) -> Result<Vec<Num>> {
    let mut out = Vec::with_capacity(addresses.len());
    for &a in addresses {
        let cid = chunking.chunk_of(a);
        let payload = chunks.get(&cid).ok_or(StorageError::MissingChunk {
            array_id,
            chunk_id: cid,
        })?;
        let (start, _) = chunking.chunk_span(cid);
        out.push(
            decode_element(payload, a - start, ty).ok_or(StorageError::MissingChunk {
                array_id,
                chunk_id: cid,
            })?,
        );
    }
    Ok(out)
}

fn fold(op: AggregateOp, a: Num, b: Num) -> Result<Num> {
    let r = match op {
        AggregateOp::Sum | AggregateOp::Avg => a.checked_add(b),
        AggregateOp::Prod => a.checked_mul(b),
        AggregateOp::Min => Ok(a.min(b)),
        AggregateOp::Max => Ok(a.max(b)),
        AggregateOp::Count => unreachable!("count handled separately"),
    };
    r.map_err(StorageError::Array)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryChunkStore;
    use ssdm_array::Subscript;

    fn store_with_matrix(chunk_bytes: usize) -> (ArrayStore<MemoryChunkStore>, ArrayProxy) {
        let mut store = ArrayStore::new(MemoryChunkStore::new());
        let m = NumArray::from_i64_shaped((0..400).collect(), &[20, 20]).unwrap();
        let proxy = store.store_array(&m, chunk_bytes).unwrap();
        (store, proxy)
    }

    #[test]
    fn whole_array_round_trip() {
        let (mut store, proxy) = store_with_matrix(64);
        let back = store
            .resolve(&proxy, RetrievalStrategy::WholeArray)
            .unwrap();
        assert_eq!(back.shape(), vec![20, 20]);
        assert_eq!(back.get(&[19, 19]).unwrap().as_i64(), 399);
        assert_eq!(store.last_stats().statements, 1);
    }

    #[test]
    fn strategies_agree_on_content() {
        let (mut store, proxy) = store_with_matrix(64);
        let col = proxy.subscript(1, 7).unwrap();
        let strategies = [
            RetrievalStrategy::Single,
            RetrievalStrategy::BufferedIn { buffer_size: 4 },
            RetrievalStrategy::SpdRange {
                options: SpdOptions::default(),
            },
            RetrievalStrategy::WholeArray,
        ];
        let expected: Vec<i64> = (0..20).map(|r| r * 20 + 7).collect();
        for s in strategies {
            let a = store.resolve(&col, s).unwrap();
            let got: Vec<i64> = a.elements().iter().map(|n| n.as_i64()).collect();
            assert_eq!(got, expected, "strategy {}", s.name());
        }
    }

    #[test]
    fn statement_counts_differ_by_strategy() {
        let (mut store, proxy) = store_with_matrix(64); // 8 elems/chunk, 50 chunks
        let col = proxy.subscript(1, 0).unwrap(); // touches 20 distinct rows
        store.resolve(&col, RetrievalStrategy::Single).unwrap();
        let single = store.last_stats();
        store
            .resolve(&col, RetrievalStrategy::BufferedIn { buffer_size: 8 })
            .unwrap();
        let buffered = store.last_stats();
        store
            .resolve(
                &col,
                RetrievalStrategy::SpdRange {
                    options: SpdOptions::default(),
                },
            )
            .unwrap();
        let spd = store.last_stats();
        assert!(single.statements > buffered.statements);
        assert!(buffered.statements >= spd.statements);
        assert_eq!(single.chunks_fetched, buffered.chunks_fetched);
    }

    #[test]
    fn spd_overfetch_is_filtered_out() {
        let (mut store, proxy) = store_with_matrix(8); // 1 element per chunk
                                                       // Every second element of row 0: chunks 0,2,4,...,18 -> one
                                                       // covering range 0..=18 fetches 19 chunks for 10 elements.
        let row = proxy.subscript(0, 0).unwrap();
        let every2 = row.slice(0, 0, 2, 18).unwrap();
        let a = store
            .resolve(
                &every2,
                RetrievalStrategy::SpdRange {
                    options: SpdOptions::default(),
                },
            )
            .unwrap();
        let got: Vec<i64> = a.elements().iter().map(|n| n.as_i64()).collect();
        assert_eq!(got, vec![0, 2, 4, 6, 8, 10, 12, 14, 16, 18]);
        let st = store.last_stats();
        assert_eq!(st.statements, 1);
        assert_eq!(st.chunks_fetched, 19);
        assert_eq!(st.elements_resolved, 10);
    }

    #[test]
    fn single_element_access() {
        let (mut store, proxy) = store_with_matrix(64);
        let cell = proxy
            .dereference(&[Subscript::Index(3), Subscript::Index(5)])
            .unwrap();
        let a = store.resolve(&cell, RetrievalStrategy::Single).unwrap();
        assert_eq!(a.scalar_value().unwrap().as_i64(), 2 * 20 + 4); // (3-1)*20+(5-1)
        assert_eq!(store.last_stats().chunks_fetched, 1);
    }

    #[test]
    fn aggregate_matches_materialized() {
        let (mut store, proxy) = store_with_matrix(64);
        let slice = proxy.slice(0, 2, 3, 17).unwrap();
        let materialized = store
            .resolve(&slice, RetrievalStrategy::WholeArray)
            .unwrap();
        for op in [
            AggregateOp::Sum,
            AggregateOp::Avg,
            AggregateOp::Min,
            AggregateOp::Max,
            AggregateOp::Count,
        ] {
            let streamed = store
                .resolve_aggregate(&slice, op, RetrievalStrategy::BufferedIn { buffer_size: 4 })
                .unwrap();
            assert_eq!(streamed, materialized.aggregate(op).unwrap(), "{op:?}");
        }
    }

    #[test]
    fn aggregate_count_needs_no_io() {
        let (mut store, proxy) = store_with_matrix(64);
        let n = store
            .resolve_aggregate(&proxy, AggregateOp::Count, RetrievalStrategy::Single)
            .unwrap();
        assert_eq!(n, Num::Int(400));
        assert_eq!(store.last_stats().statements, 0);
    }

    #[test]
    fn real_arrays_round_trip() {
        let mut store = ArrayStore::new(MemoryChunkStore::new());
        let a = NumArray::from_f64((0..100).map(|i| i as f64 / 4.0).collect());
        let proxy = store.store_array(&a, 32).unwrap();
        let back = store
            .resolve(&proxy, RetrievalStrategy::WholeArray)
            .unwrap();
        assert!(back.array_eq(&a));
        assert_eq!(back.numeric_type(), NumericType::Real);
    }

    #[test]
    fn storing_a_view_stores_logical_content() {
        let mut store = ArrayStore::new(MemoryChunkStore::new());
        let m = NumArray::from_i64_shaped((0..12).collect(), &[3, 4]).unwrap();
        let t = m.transpose();
        let proxy = store.store_array(&t, 32).unwrap();
        let back = store
            .resolve(&proxy, RetrievalStrategy::WholeArray)
            .unwrap();
        assert!(back.array_eq(&t));
    }

    #[test]
    fn delete_array_removes_chunks() {
        let (mut store, proxy) = store_with_matrix(64);
        let id = proxy.array_id();
        store.delete_array(id).unwrap();
        assert!(store.proxy(id).is_err());
        assert!(store.resolve(&proxy, RetrievalStrategy::Single).is_err());
    }

    #[test]
    fn mediator_link_external() {
        let mut store = ArrayStore::new(MemoryChunkStore::new());
        // Simulate pre-existing chunks written by another system.
        let chunking = Chunking::new(32, 10);
        for c in 0..chunking.chunk_count() {
            let (s, e) = chunking.chunk_span(c);
            let data: Vec<u8> = (s..e).flat_map(|i| (i as i64).to_le_bytes()).collect();
            store.backend_mut().put_chunk(77, c, &data).unwrap();
        }
        let proxy = store.link_external(ArrayMeta {
            array_id: 77,
            numeric_type: NumericType::Int,
            shape: vec![10],
            chunking,
            encoded: false,
        });
        let a = store
            .resolve(&proxy, RetrievalStrategy::WholeArray)
            .unwrap();
        assert_eq!(a.elements().iter().map(|n| n.as_i64()).sum::<i64>(), 45);
    }

    #[test]
    fn stored_chunks_are_scc1_frames_with_zone_map() {
        let (mut store, proxy) = store_with_matrix(64); // 8 elems/chunk, 50 chunks
        let id = proxy.array_id();
        let zm = Arc::clone(store.zone_map(id).expect("zone map built at store time"));
        assert_eq!(zm.summaries.len(), 50);
        assert_eq!(zm.summaries[0].min(NumericType::Int), Num::Int(0));
        assert_eq!(zm.summaries[0].max(NumericType::Int), Num::Int(7));
        let frame = store.backend_mut().get_chunk(id, 0).unwrap();
        let (summary, ty) = codec::summary_of(&frame).expect("SCC1 frame");
        assert_eq!(ty, NumericType::Int);
        assert_eq!(summary.min_bits, zm.summaries[0].min_bits);
        store.delete_array(id).unwrap();
        assert!(store.zone_map(id).is_none());
    }

    #[test]
    fn filtered_aggregate_skips_and_is_identical_without_skipping() {
        let (mut store, proxy) = store_with_matrix(64); // values 0..400
        let pred = ValuePredicate::Range {
            lo: Num::Int(100),
            hi: Num::Int(149),
        };
        let expected: i64 = (100..150).sum();
        let sum = store
            .resolve_aggregate_filtered(&proxy, &pred, AggregateOp::Sum, RetrievalStrategy::Single)
            .unwrap();
        assert_eq!(sum, Num::Int(expected));
        let st = store.last_stats();
        // Chunks 12..=18 qualify (they span elements 96..152); the other
        // 43 are proven irrelevant and never fetched.
        assert_eq!(st.chunks_skipped, 43);
        assert_eq!(st.chunks_fetched, 7);
        assert_eq!(st.chunks_decoded, 7);
        assert!(st.bytes_decoded > 0);
        store.set_skip_enabled(false);
        let sum_off = store
            .resolve_aggregate_filtered(&proxy, &pred, AggregateOp::Sum, RetrievalStrategy::Single)
            .unwrap();
        assert_eq!(sum_off, sum);
        let st_off = store.last_stats();
        assert_eq!(st_off.chunks_skipped, 0);
        assert_eq!(st_off.chunks_fetched, 50);
    }

    #[test]
    fn filtered_count_and_avg_follow_matched_elements() {
        let (mut store, proxy) = store_with_matrix(64);
        let pred = ValuePredicate::Range {
            lo: Num::Int(10),
            hi: Num::Int(13),
        };
        let n = store
            .resolve_aggregate_filtered(
                &proxy,
                &pred,
                AggregateOp::Count,
                RetrievalStrategy::Single,
            )
            .unwrap();
        assert_eq!(n, Num::Int(4));
        let avg = store
            .resolve_aggregate_filtered(&proxy, &pred, AggregateOp::Avg, RetrievalStrategy::Single)
            .unwrap();
        assert_eq!(avg, Num::Real(11.5));
        // No matches: Count/Sum yield zero, Min errors (empty semantics).
        let none = ValuePredicate::Range {
            lo: Num::Int(1000),
            hi: Num::Int(2000),
        };
        assert_eq!(
            store
                .resolve_aggregate_filtered(
                    &proxy,
                    &none,
                    AggregateOp::Count,
                    RetrievalStrategy::Single
                )
                .unwrap(),
            Num::Int(0)
        );
        assert_eq!(store.last_stats().chunks_skipped, 50);
        assert_eq!(store.last_stats().statements, 0);
        assert!(store
            .resolve_aggregate_filtered(&proxy, &none, AggregateOp::Min, RetrievalStrategy::Single)
            .is_err());
    }

    #[test]
    fn resolve_filtered_preserves_view_order() {
        let (mut store, proxy) = store_with_matrix(64);
        let pred = ValuePredicate::In(vec![Num::Int(399), Num::Int(5), Num::Int(123)]);
        let got = store
            .resolve_filtered(&proxy, &pred, RetrievalStrategy::Single)
            .unwrap();
        // View order, not predicate order.
        assert_eq!(got, vec![Num::Int(5), Num::Int(123), Num::Int(399)]);
        assert_eq!(store.last_stats().chunks_fetched, 3);
        assert_eq!(store.last_stats().chunks_skipped, 47);
    }

    #[test]
    fn resolve_exists_early_exit_and_full_skip() {
        let (mut store, proxy) = store_with_matrix(64);
        let hit = ValuePredicate::In(vec![Num::Int(42)]);
        assert!(store
            .resolve_exists(&proxy, &hit, RetrievalStrategy::Single)
            .unwrap());
        let miss = ValuePredicate::In(vec![Num::Int(-7)]);
        assert!(!store
            .resolve_exists(&proxy, &miss, RetrievalStrategy::Single)
            .unwrap());
        // Everything pruned: no statements reached the back-end.
        assert_eq!(store.last_stats().statements, 0);
        assert_eq!(store.last_stats().chunks_skipped, 50);
    }

    #[test]
    fn filtered_parallel_matches_sequential_bitwise() {
        let mut store = ArrayStore::new(MemoryChunkStore::new());
        let vals: Vec<f64> = (0..500).map(|i| (i as f64 * 0.7).sin() * 100.0).collect();
        let a = NumArray::from_f64(vals);
        let proxy = store.store_array(&a, 64).unwrap();
        let pred = ValuePredicate::Range {
            lo: Num::Real(-25.0),
            hi: Num::Real(25.0),
        };
        for op in [
            AggregateOp::Sum,
            AggregateOp::Avg,
            AggregateOp::Min,
            AggregateOp::Max,
            AggregateOp::Count,
        ] {
            let seq = store
                .resolve_aggregate_filtered(&proxy, &pred, op, RetrievalStrategy::Single)
                .unwrap();
            for workers in [2, 4, 8] {
                let par = store
                    .resolve_aggregate_filtered_parallel(
                        &proxy,
                        &pred,
                        op,
                        RetrievalStrategy::Single,
                        crate::ParallelConfig::with_workers(workers),
                    )
                    .unwrap();
                assert_eq!(
                    par.as_f64().to_bits(),
                    seq.as_f64().to_bits(),
                    "{op:?} @ {workers} workers"
                );
            }
        }
    }

    #[test]
    fn raw_policy_still_skips_via_summaries() {
        let mut store = ArrayStore::new(MemoryChunkStore::new());
        store.set_codec(CodecPolicy::Raw);
        let m = NumArray::from_i64_shaped((0..400).collect(), &[20, 20]).unwrap();
        let proxy = store.store_array(&m, 64).unwrap();
        let pred = ValuePredicate::Range {
            lo: Num::Int(0),
            hi: Num::Int(7),
        };
        let sum = store
            .resolve_aggregate_filtered(&proxy, &pred, AggregateOp::Sum, RetrievalStrategy::Single)
            .unwrap();
        assert_eq!(sum, Num::Int(28));
        assert_eq!(store.last_stats().chunks_fetched, 1);
        assert_eq!(store.last_stats().chunks_skipped, 49);
    }
}
