//! The Sequence Pattern Detector (SPD, thesis §6.2.5).
//!
//! When a query resolves many array proxies (or a strided view of one
//! array), the chunk ids it needs often form regular arithmetic
//! sequences — e.g. every task's result array stores its first chunk at
//! a fixed offset pattern. Instead of designing multidimensional tiles
//! up front (as Rasdaman does), SSDM *discovers regularity at query
//! runtime*: the SPD compresses the chunk-id stream into arithmetic
//! patterns and converts them into the cheapest mix of back-end range
//! and `IN`-list statements.

/// A maximal arithmetic pattern `start, start+step, …` of chunk ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pattern {
    pub start: u64,
    pub step: u64,
    pub count: usize,
}

impl Pattern {
    pub fn last(&self) -> u64 {
        self.start + self.step * (self.count.saturating_sub(1)) as u64
    }

    /// Ids covered by the pattern.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.count as u64).map(move |k| self.start + k * self.step)
    }

    /// Needed ÷ fetched ratio if the pattern is served by one dense
    /// range statement.
    pub fn density(&self) -> f64 {
        let span = self.last() - self.start + 1;
        self.count as f64 / span as f64
    }
}

/// Detect maximal constant-step patterns in an ascending id sequence.
/// Duplicates are collapsed first.
pub fn detect(ids: &[u64]) -> Vec<Pattern> {
    let mut sorted: Vec<u64> = ids.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < sorted.len() {
        if i + 1 == sorted.len() {
            out.push(Pattern {
                start: sorted[i],
                step: 0,
                count: 1,
            });
            break;
        }
        let step = sorted[i + 1] - sorted[i];
        let mut j = i + 1;
        while j + 1 < sorted.len() && sorted[j + 1] - sorted[j] == step {
            j += 1;
        }
        let count = j - i + 1;
        if count >= 3 || step == 0 {
            out.push(Pattern {
                start: sorted[i],
                step,
                count,
            });
            i = j + 1;
        } else {
            // A 2-element "pattern" is not evidence of regularity; emit
            // the first element alone and retry from the second.
            out.push(Pattern {
                start: sorted[i],
                step: 0,
                count: 1,
            });
            i += 1;
        }
    }
    out
}

/// One back-end statement in a fetch plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchOp {
    /// `WHERE chunk BETWEEN lo AND hi` — may fetch unneeded chunks,
    /// which the APR filters out.
    Range { lo: u64, hi: u64 },
    /// `WHERE chunk IN (...)`.
    In(Vec<u64>),
}

impl FetchOp {
    /// Number of chunks the statement returns (upper bound for Range).
    pub fn fetched(&self) -> u64 {
        match self {
            FetchOp::Range { lo, hi } => hi - lo + 1,
            FetchOp::In(ids) => ids.len() as u64,
        }
    }
}

/// SPD planning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpdOptions {
    /// A strided pattern is served by one covering range when its
    /// density (needed/fetched) is at least this threshold.
    pub density_threshold: f64,
    /// Minimum pattern length to justify a range statement.
    pub min_range_len: usize,
    /// Maximum ids per IN-list statement.
    pub max_in_list: usize,
}

impl Default for SpdOptions {
    fn default() -> Self {
        SpdOptions {
            density_threshold: 0.5,
            min_range_len: 3,
            max_in_list: 256,
        }
    }
}

/// Turn a chunk-id sequence into a fetch plan.
///
/// Guarantee: the plan never issues more statements than the plain
/// `IN`-list strategy would — when regularity fragments into many small
/// patterns (e.g. periodic row groups), the planner falls back to
/// batched `IN`-lists rather than a storm of tiny range statements.
pub fn plan(ids: &[u64], opts: SpdOptions) -> Vec<FetchOp> {
    let patterns = detect(ids);
    let mut ops = Vec::new();
    let mut loose: Vec<u64> = Vec::new();
    for p in patterns {
        let dense_enough = p.density() >= opts.density_threshold;
        if p.count >= opts.min_range_len && dense_enough {
            ops.push(FetchOp::Range {
                lo: p.start,
                hi: p.last(),
            });
        } else {
            loose.extend(p.ids());
        }
    }
    loose.sort_unstable();
    for batch in loose.chunks(opts.max_in_list.max(1)) {
        ops.push(FetchOp::In(batch.to_vec()));
    }
    // Statement-count guard: an IN-only plan needs this many statements.
    let mut distinct: Vec<u64> = ids.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    let in_only_stmts = distinct.len().div_ceil(opts.max_in_list.max(1));
    if ops.len() > in_only_stmts {
        return distinct
            .chunks(opts.max_in_list.max(1))
            .map(|b| FetchOp::In(b.to_vec()))
            .collect();
    }
    ops
}

/// Total chunks a plan fetches vs the number actually needed.
pub fn plan_overfetch(ids: &[u64], plan: &[FetchOp]) -> (u64, u64) {
    let mut needed: Vec<u64> = ids.to_vec();
    needed.sort_unstable();
    needed.dedup();
    let fetched: u64 = plan.iter().map(FetchOp::fetched).sum();
    (needed.len() as u64, fetched)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_dense_run() {
        let p = detect(&[3, 4, 5, 6, 7]);
        assert_eq!(
            p,
            vec![Pattern {
                start: 3,
                step: 1,
                count: 5
            }]
        );
    }

    #[test]
    fn detect_strided_run() {
        let p = detect(&[0, 10, 20, 30]);
        assert_eq!(
            p,
            vec![Pattern {
                start: 0,
                step: 10,
                count: 4
            }]
        );
        assert!((p[0].density() - 4.0 / 31.0).abs() < 1e-12);
    }

    #[test]
    fn detect_mixed() {
        let p = detect(&[1, 2, 3, 50, 100, 150, 200, 777]);
        assert_eq!(p.len(), 3);
        assert_eq!(
            p[0],
            Pattern {
                start: 1,
                step: 1,
                count: 3
            }
        );
        assert_eq!(
            p[1],
            Pattern {
                start: 50,
                step: 50,
                count: 4
            }
        );
        assert_eq!(
            p[2],
            Pattern {
                start: 777,
                step: 0,
                count: 1
            }
        );
    }

    #[test]
    fn detect_dedups_and_sorts() {
        let p = detect(&[5, 3, 4, 4, 3]);
        assert_eq!(
            p,
            vec![Pattern {
                start: 3,
                step: 1,
                count: 3
            }]
        );
    }

    #[test]
    fn pairs_do_not_fake_patterns() {
        // 1,2 then 10: a naive detector would claim (1,2) step 1; SPD
        // requires 3 elements of evidence.
        let p = detect(&[1, 2, 10]);
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|q| q.count == 1));
    }

    #[test]
    fn plan_dense_becomes_range() {
        let ids: Vec<u64> = (10..50).collect();
        let plan = plan(&ids, SpdOptions::default());
        assert_eq!(plan, vec![FetchOp::Range { lo: 10, hi: 49 }]);
    }

    #[test]
    fn plan_sparse_becomes_in_list() {
        let ids = vec![1, 100, 2000, 30000];
        let plan = plan(&ids, SpdOptions::default());
        assert_eq!(plan, vec![FetchOp::In(vec![1, 100, 2000, 30000])]);
    }

    #[test]
    fn plan_strided_respects_density_threshold() {
        let ids: Vec<u64> = (0..20).map(|k| k * 2).collect(); // density 0.51
        let dense = plan(
            &ids,
            SpdOptions {
                density_threshold: 0.5,
                ..SpdOptions::default()
            },
        );
        assert!(matches!(dense[0], FetchOp::Range { .. }));
        let sparse = plan(
            &ids,
            SpdOptions {
                density_threshold: 0.9,
                ..SpdOptions::default()
            },
        );
        assert!(matches!(sparse[0], FetchOp::In(_)));
    }

    #[test]
    fn plan_respects_in_list_cap() {
        let ids: Vec<u64> = (0..100).map(|k| k * k + 7).collect();
        let plan = plan(
            &ids,
            SpdOptions {
                max_in_list: 16,
                ..SpdOptions::default()
            },
        );
        assert!(plan
            .iter()
            .all(|op| matches!(op, FetchOp::In(v) if v.len() <= 16)));
    }

    #[test]
    fn overfetch_accounting() {
        let ids = vec![0, 2, 4, 6, 8];
        let p = plan(&ids, SpdOptions::default());
        let (needed, fetched) = plan_overfetch(&ids, &p);
        assert_eq!(needed, 5);
        assert_eq!(fetched, 9, "covering range 0..=8 overfetches 4 chunks");
    }

    #[test]
    fn empty_input() {
        assert!(detect(&[]).is_empty());
        assert!(plan(&[], SpdOptions::default()).is_empty());
    }
}
