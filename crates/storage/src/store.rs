//! The Array Storage Extensibility Interface (ASEI) and its back-ends.
//!
//! The ASEI (thesis §6.1) is the contract between SSDM's query processor
//! and any system able to hold array chunks. A back-end advertises its
//! [`Capabilities`]; the APR picks a retrieval strategy the back-end
//! supports and *delegates* batched operations (IN-lists, ranges) to it
//! when possible, falling back to per-chunk requests otherwise — this is
//! the "common supported operations are delegated to the array storage
//! back-ends, according to their capabilities" behaviour of the
//! abstract.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

use relstore::{Db, Key, LatencyModel};

/// Errors raised by chunk storage back-ends.
///
/// Every error classifies as either *transient* (worth retrying: the
/// fault may not recur) or *permanent* (retrying cannot help) via
/// [`StorageError::is_transient`]. The resilience layer
/// ([`crate::ResilientChunkStore`]) retries transient errors only.
#[derive(Debug)]
pub enum StorageError {
    Io(io::Error),
    Backend(String),
    MissingChunk {
        array_id: u64,
        chunk_id: u64,
    },
    MissingArray(u64),
    Array(ssdm_array::ArrayError),
    /// A transient back-end fault (dropped connection, injected fault,
    /// timeout): retrying the same operation may succeed.
    Transient(String),
    /// A chunk failed its checksum at read time (frame header CRC32
    /// mismatch or mangled frame). Classified transient: a re-read can
    /// succeed when the corruption happened in transit rather than at
    /// rest.
    Corrupt {
        array_id: u64,
        chunk_id: u64,
        detail: String,
    },
    /// A chunk read returned fewer bytes than its frame promises (file
    /// truncated below the expected chunk length, torn write).
    /// Classified transient: concurrent writers may complete the chunk.
    ShortRead {
        array_id: u64,
        chunk_id: u64,
        expected: usize,
        got: usize,
    },
    /// The retry policy exhausted its attempt or time budget; the last
    /// underlying error is carried as text.
    DeadlineExceeded {
        op: &'static str,
        attempts: u32,
        last_error: String,
    },
    /// One or more shards of a [`crate::ShardedChunkStore`] could not
    /// serve the read: the primary is down and every replica failed or
    /// lags past the bound. Carries the failed shard indices so callers
    /// can report *which* partitions are dark. Not transient: the
    /// sharded store already exhausted its failover hop before raising
    /// this, so an outer retry cannot help.
    ShardUnavailable {
        shards: Vec<usize>,
    },
}

impl StorageError {
    /// Whether retrying the failed operation could plausibly succeed.
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Transient(_) => true,
            StorageError::Corrupt { .. } => true,
            StorageError::ShortRead { .. } => true,
            StorageError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::Interrupted
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::UnexpectedEof
            ),
            StorageError::Backend(_)
            | StorageError::MissingChunk { .. }
            | StorageError::MissingArray(_)
            | StorageError::Array(_)
            | StorageError::DeadlineExceeded { .. }
            | StorageError::ShardUnavailable { .. } => false,
        }
    }

    /// Map a frame decode failure on `(array_id, chunk_id)` to the
    /// matching storage error.
    pub(crate) fn from_frame(array_id: u64, chunk_id: u64, e: crate::frame::FrameError) -> Self {
        match e {
            crate::frame::FrameError::Truncated { expected, got } => StorageError::ShortRead {
                array_id,
                chunk_id,
                expected,
                got,
            },
            other => StorageError::Corrupt {
                array_id,
                chunk_id,
                detail: other.to_string(),
            },
        }
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::Backend(m) => write!(f, "back-end error: {m}"),
            StorageError::MissingChunk { array_id, chunk_id } => {
                write!(f, "missing chunk {chunk_id} of array {array_id}")
            }
            StorageError::MissingArray(id) => write!(f, "unknown array id {id}"),
            StorageError::Array(e) => write!(f, "array error: {e}"),
            StorageError::Transient(m) => write!(f, "transient back-end fault: {m}"),
            StorageError::Corrupt {
                array_id,
                chunk_id,
                detail,
            } => write!(f, "corrupt chunk {chunk_id} of array {array_id}: {detail}"),
            StorageError::ShortRead {
                array_id,
                chunk_id,
                expected,
                got,
            } => write!(
                f,
                "short read of chunk {chunk_id} of array {array_id}: {got} of {expected} bytes"
            ),
            StorageError::DeadlineExceeded {
                op,
                attempts,
                last_error,
            } => write!(
                f,
                "{op} failed after {attempts} attempts (retry budget exhausted): {last_error}"
            ),
            StorageError::ShardUnavailable { shards } => {
                let list: Vec<String> = shards.iter().map(|s| s.to_string()).collect();
                write!(f, "shard(s) {} unavailable", list.join(", "))
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<ssdm_array::ArrayError> for StorageError {
    fn from(e: ssdm_array::ArrayError) -> Self {
        StorageError::Array(e)
    }
}

impl From<relstore::StoreError> for StorageError {
    fn from(e: relstore::StoreError) -> Self {
        StorageError::Backend(e.to_string())
    }
}

/// What batched operations a back-end supports natively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    pub supports_in_list: bool,
    pub supports_range: bool,
    /// Whether one statement can scan across array boundaries
    /// (clustered composite-key table).
    pub supports_cross_range: bool,
    /// Whether the store tolerates concurrent shared reads (the
    /// [`SharedChunkRead`] contract) — when false, the parallel
    /// retrieval pipeline degrades to the sequential path even if the
    /// type implements the trait (e.g. a wrapper whose bookkeeping is
    /// not meaningful under concurrency).
    pub supports_parallel: bool,
}

/// Result rows of composite-key operations: `((array, chunk), payload)`.
pub type CompositeRows = Vec<((u64, u64), Vec<u8>)>;

/// Result rows of per-array chunk reads: `(chunk_id, payload)`.
pub type ChunkRows = Vec<(u64, Vec<u8>)>;

/// Back-end I/O statistics (statement-level, mirrors the paper's
/// measurement of SQL statements issued and rows returned).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    pub statements: u64,
    pub chunks_returned: u64,
    pub bytes_returned: u64,
}

/// The ASEI: chunk-granular storage of linearized arrays. `Send` so an
/// SSDM instance can be owned by a server thread (thesis §5.1:
/// client-server deployment).
pub trait ChunkStore: Send {
    /// Announce a new array before its chunks are written. Back-ends
    /// with per-array physical layout (files) allocate here; the default
    /// is a no-op.
    fn begin_array(&mut self, _array_id: u64, _chunk_bytes: usize) -> Result<(), StorageError> {
        Ok(())
    }

    /// Write one chunk of an array.
    fn put_chunk(&mut self, array_id: u64, chunk_id: u64, data: &[u8]) -> Result<(), StorageError>;

    /// Fetch one chunk (one back-end statement).
    fn get_chunk(&mut self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError>;

    /// Fetch a set of chunks in one statement. Back-ends without native
    /// IN-list support may loop internally; the default does so and
    /// charges one statement per chunk.
    fn get_chunks_in(
        &mut self,
        array_id: u64,
        chunk_ids: &[u64],
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        let mut out = Vec::with_capacity(chunk_ids.len());
        for &c in chunk_ids {
            out.push((c, self.get_chunk(array_id, c)?));
        }
        Ok(out)
    }

    /// Fetch an inclusive chunk-id range in one statement. Default loops.
    fn get_chunk_range(
        &mut self,
        array_id: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        let ids: Vec<u64> = (lo..=hi).collect();
        self.get_chunks_in(array_id, &ids)
    }

    /// Fetch an inclusive composite-key range `(array, chunk)` that may
    /// span array boundaries, in ONE statement — the clustered-table
    /// scan behind bag-of-proxy resolution (thesis §6.2.4). Back-ends
    /// without a cross-array clustered layout return `Unsupported`;
    /// callers must consult [`Capabilities::supports_cross_range`].
    fn get_composite_range(
        &mut self,
        _lo: (u64, u64),
        _hi: (u64, u64),
    ) -> Result<CompositeRows, StorageError> {
        Err(StorageError::Backend(
            "cross-array ranges not supported by this back-end".into(),
        ))
    }

    /// Row-value `IN`-list over composite keys in one statement
    /// (`WHERE (array, chunk) IN (...)`). Default: unsupported.
    fn get_composite_in(&mut self, _keys: &[(u64, u64)]) -> Result<CompositeRows, StorageError> {
        Err(StorageError::Backend(
            "composite IN-lists not supported by this back-end".into(),
        ))
    }

    /// Delete all chunks of an array.
    fn delete_array(&mut self, array_id: u64, chunk_count: u64) -> Result<(), StorageError>;

    fn capabilities(&self) -> Capabilities;

    fn io_stats(&self) -> IoStats;

    fn reset_io_stats(&mut self);

    /// Retry/corruption counters of the resilience layer, if any is
    /// present in this store stack. Plain back-ends report zeros.
    fn resilience_stats(&self) -> crate::resilient::ResilienceStats {
        crate::resilient::ResilienceStats::default()
    }

    fn reset_resilience_stats(&mut self) {}

    /// Hit/miss/eviction counters of the chunk cache, if any is present
    /// in this store stack. Uncached stacks report zeros.
    fn cache_stats(&self) -> crate::cache::CacheStats {
        crate::cache::CacheStats::default()
    }

    fn reset_cache_stats(&mut self) {}

    /// Placement/failover/replica-lag counters of the sharded store, if
    /// this stack routes reads across shards. Unsharded stacks report
    /// `None`.
    fn shard_stats(&self) -> Option<crate::shard::ShardStats> {
        None
    }

    /// Flush buffered writes to durable media (fsync). Checkpointing
    /// calls this before publishing a snapshot so chunk data referenced
    /// by the snapshot's catalog survives a crash. No-op for purely
    /// in-memory back-ends.
    fn sync(&mut self) -> Result<(), StorageError> {
        Ok(())
    }
}

/// The concurrent read side of a chunk store: the same fetch shapes as
/// [`ChunkStore`], but through `&self`, callable from many worker
/// threads at once. This is what the parallel retrieval pipeline
/// ([`crate::parallel`]) partitions an APR fetch plan over.
///
/// Implementations must keep [`IoStats`] accounting exact under
/// concurrency (the APR reports statement counts as deltas), and should
/// do per-chunk CRC32 frame verification on the *calling* thread, so
/// decode work parallelizes along with the fetches.
pub trait SharedChunkRead: Send + Sync {
    /// Fetch one chunk (one back-end statement).
    fn read_chunk(&self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError>;

    /// Fetch a set of chunks in one statement.
    fn read_chunks_in(
        &self,
        array_id: u64,
        chunk_ids: &[u64],
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError>;

    /// Fetch an inclusive chunk-id range in one statement.
    fn read_chunk_range(
        &self,
        array_id: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError>;
}

/// Raw access to a chunk's *stored* (framed) bytes, beneath the
/// checksum layer. This is how the deterministic fault injector
/// ([`crate::FaultInjectingChunkStore`]) models media corruption: it
/// flips a bit in the at-rest representation, so the back-end's own
/// CRC32 verification — not the injector — detects the damage on the
/// next read, exactly as it would for a real corrupted page or file.
pub trait RawChunkAccess {
    /// Flip one bit of the stored representation of a chunk. `bit` is
    /// taken modulo the stored length in bits. Returns `Ok(false)` when
    /// the chunk does not exist.
    fn flip_stored_bit(
        &mut self,
        array_id: u64,
        chunk_id: u64,
        bit: u64,
    ) -> Result<bool, StorageError>;
}

impl ChunkStore for Box<dyn ChunkStore> {
    fn begin_array(&mut self, array_id: u64, chunk_bytes: usize) -> Result<(), StorageError> {
        (**self).begin_array(array_id, chunk_bytes)
    }

    fn put_chunk(&mut self, array_id: u64, chunk_id: u64, data: &[u8]) -> Result<(), StorageError> {
        (**self).put_chunk(array_id, chunk_id, data)
    }

    fn get_chunk(&mut self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        (**self).get_chunk(array_id, chunk_id)
    }

    fn get_chunks_in(
        &mut self,
        array_id: u64,
        chunk_ids: &[u64],
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        (**self).get_chunks_in(array_id, chunk_ids)
    }

    fn get_chunk_range(
        &mut self,
        array_id: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        (**self).get_chunk_range(array_id, lo, hi)
    }

    fn get_composite_range(
        &mut self,
        lo: (u64, u64),
        hi: (u64, u64),
    ) -> Result<CompositeRows, StorageError> {
        (**self).get_composite_range(lo, hi)
    }

    fn get_composite_in(&mut self, keys: &[(u64, u64)]) -> Result<CompositeRows, StorageError> {
        (**self).get_composite_in(keys)
    }

    fn delete_array(&mut self, array_id: u64, chunk_count: u64) -> Result<(), StorageError> {
        (**self).delete_array(array_id, chunk_count)
    }

    fn capabilities(&self) -> Capabilities {
        (**self).capabilities()
    }

    fn io_stats(&self) -> IoStats {
        (**self).io_stats()
    }

    fn reset_io_stats(&mut self) {
        (**self).reset_io_stats()
    }

    fn resilience_stats(&self) -> crate::resilient::ResilienceStats {
        (**self).resilience_stats()
    }

    fn reset_resilience_stats(&mut self) {
        (**self).reset_resilience_stats()
    }

    fn cache_stats(&self) -> crate::cache::CacheStats {
        (**self).cache_stats()
    }

    fn reset_cache_stats(&mut self) {
        (**self).reset_cache_stats()
    }

    fn shard_stats(&self) -> Option<crate::shard::ShardStats> {
        (**self).shard_stats()
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        (**self).sync()
    }
}

/// [`ChunkStore`] + [`SharedChunkRead`] combined: what a boxed dataset
/// back-end must provide so *both* the mutating store path and the
/// parallel read pipeline work through one trait object. Blanket-
/// implemented for every type with both traits — all shipped back-ends
/// (memory, file, relational, their cache/resilience wrappers, the
/// sharded store, and the fault injector over a shared-readable inner
/// store) qualify. The injector still advertises `supports_parallel:
/// false` unless a test opts in via `enable_parallel`, so capability-
/// based downgrades to the sequential path are unchanged.
pub trait SharedChunkStore: ChunkStore + SharedChunkRead {}

impl<T: ChunkStore + SharedChunkRead> SharedChunkStore for T {}

impl ChunkStore for Box<dyn SharedChunkStore> {
    fn begin_array(&mut self, array_id: u64, chunk_bytes: usize) -> Result<(), StorageError> {
        (**self).begin_array(array_id, chunk_bytes)
    }

    fn put_chunk(&mut self, array_id: u64, chunk_id: u64, data: &[u8]) -> Result<(), StorageError> {
        (**self).put_chunk(array_id, chunk_id, data)
    }

    fn get_chunk(&mut self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        (**self).get_chunk(array_id, chunk_id)
    }

    fn get_chunks_in(
        &mut self,
        array_id: u64,
        chunk_ids: &[u64],
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        (**self).get_chunks_in(array_id, chunk_ids)
    }

    fn get_chunk_range(
        &mut self,
        array_id: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        (**self).get_chunk_range(array_id, lo, hi)
    }

    fn get_composite_range(
        &mut self,
        lo: (u64, u64),
        hi: (u64, u64),
    ) -> Result<CompositeRows, StorageError> {
        (**self).get_composite_range(lo, hi)
    }

    fn get_composite_in(&mut self, keys: &[(u64, u64)]) -> Result<CompositeRows, StorageError> {
        (**self).get_composite_in(keys)
    }

    fn delete_array(&mut self, array_id: u64, chunk_count: u64) -> Result<(), StorageError> {
        (**self).delete_array(array_id, chunk_count)
    }

    fn capabilities(&self) -> Capabilities {
        (**self).capabilities()
    }

    fn io_stats(&self) -> IoStats {
        (**self).io_stats()
    }

    fn reset_io_stats(&mut self) {
        (**self).reset_io_stats()
    }

    fn resilience_stats(&self) -> crate::resilient::ResilienceStats {
        (**self).resilience_stats()
    }

    fn reset_resilience_stats(&mut self) {
        (**self).reset_resilience_stats()
    }

    fn cache_stats(&self) -> crate::cache::CacheStats {
        (**self).cache_stats()
    }

    fn reset_cache_stats(&mut self) {
        (**self).reset_cache_stats()
    }

    fn shard_stats(&self) -> Option<crate::shard::ShardStats> {
        (**self).shard_stats()
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        (**self).sync()
    }
}

impl SharedChunkRead for Box<dyn SharedChunkStore> {
    fn read_chunk(&self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        (**self).read_chunk(array_id, chunk_id)
    }

    fn read_chunks_in(
        &self,
        array_id: u64,
        chunk_ids: &[u64],
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        (**self).read_chunks_in(array_id, chunk_ids)
    }

    fn read_chunk_range(
        &self,
        array_id: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        (**self).read_chunk_range(array_id, lo, hi)
    }
}

// ---------------------------------------------------------------------
// Memory back-end
// ---------------------------------------------------------------------

/// A transient in-process back-end (hash map of chunks). Used as the
/// "resident" baseline and in tests. Chunks are held in their framed,
/// checksummed representation so at-rest corruption (or a fault
/// injector flipping stored bits) is caught on read like in the
/// persistent back-ends. Statistics live behind a mutex so reads can
/// run concurrently through [`SharedChunkRead`].
#[derive(Debug, Default)]
pub struct MemoryChunkStore {
    chunks: HashMap<(u64, u64), Vec<u8>>,
    stats: Mutex<IoStats>,
}

impl MemoryChunkStore {
    pub fn new() -> Self {
        MemoryChunkStore::default()
    }

    fn account(&self, chunks: usize, bytes: usize) {
        let mut stats = self.stats.lock().expect("stats mutex");
        stats.statements += 1;
        stats.chunks_returned += chunks as u64;
        stats.bytes_returned += bytes as u64;
    }

    fn decode(frame: &[u8], array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        crate::frame::decode(frame).map_err(|e| StorageError::from_frame(array_id, chunk_id, e))
    }
}

impl SharedChunkRead for MemoryChunkStore {
    fn read_chunk(&self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        let frame = self
            .chunks
            .get(&(array_id, chunk_id))
            .ok_or(StorageError::MissingChunk { array_id, chunk_id })?;
        let v = Self::decode(frame, array_id, chunk_id)?;
        self.account(1, v.len());
        Ok(v)
    }

    fn read_chunks_in(
        &self,
        array_id: u64,
        chunk_ids: &[u64],
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        let mut out = Vec::with_capacity(chunk_ids.len());
        let mut bytes = 0;
        for &c in chunk_ids {
            let frame = self
                .chunks
                .get(&(array_id, c))
                .ok_or(StorageError::MissingChunk {
                    array_id,
                    chunk_id: c,
                })?;
            let v = Self::decode(frame, array_id, c)?;
            bytes += v.len();
            out.push((c, v));
        }
        self.account(out.len(), bytes);
        Ok(out)
    }

    fn read_chunk_range(
        &self,
        array_id: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        let mut out = Vec::new();
        let mut bytes = 0;
        for c in lo..=hi {
            if let Some(frame) = self.chunks.get(&(array_id, c)) {
                let v = Self::decode(frame, array_id, c)?;
                bytes += v.len();
                out.push((c, v));
            }
        }
        self.account(out.len(), bytes);
        Ok(out)
    }
}

impl RawChunkAccess for MemoryChunkStore {
    fn flip_stored_bit(
        &mut self,
        array_id: u64,
        chunk_id: u64,
        bit: u64,
    ) -> Result<bool, StorageError> {
        match self.chunks.get_mut(&(array_id, chunk_id)) {
            Some(frame) if !frame.is_empty() => {
                let bit = bit % (frame.len() as u64 * 8);
                frame[(bit / 8) as usize] ^= 1 << (bit % 8);
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

impl ChunkStore for MemoryChunkStore {
    fn put_chunk(&mut self, array_id: u64, chunk_id: u64, data: &[u8]) -> Result<(), StorageError> {
        self.chunks
            .insert((array_id, chunk_id), crate::frame::encode(data));
        Ok(())
    }

    fn get_chunk(&mut self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        self.read_chunk(array_id, chunk_id)
    }

    fn get_chunks_in(
        &mut self,
        array_id: u64,
        chunk_ids: &[u64],
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        self.read_chunks_in(array_id, chunk_ids)
    }

    fn get_chunk_range(
        &mut self,
        array_id: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        self.read_chunk_range(array_id, lo, hi)
    }

    fn delete_array(&mut self, array_id: u64, chunk_count: u64) -> Result<(), StorageError> {
        for c in 0..chunk_count {
            self.chunks.remove(&(array_id, c));
        }
        Ok(())
    }

    fn get_composite_range(
        &mut self,
        lo: (u64, u64),
        hi: (u64, u64),
    ) -> Result<CompositeRows, StorageError> {
        let mut keys: Vec<(u64, u64)> = self
            .chunks
            .keys()
            .filter(|&&k| k >= lo && k <= hi)
            .copied()
            .collect();
        keys.sort_unstable();
        let mut out = Vec::with_capacity(keys.len());
        let mut bytes = 0;
        for k in keys {
            let v = Self::decode(&self.chunks[&k], k.0, k.1)?;
            bytes += v.len();
            out.push((k, v));
        }
        self.account(out.len(), bytes);
        Ok(out)
    }

    fn get_composite_in(&mut self, keys: &[(u64, u64)]) -> Result<CompositeRows, StorageError> {
        let mut out = Vec::with_capacity(keys.len());
        let mut bytes = 0;
        for &k in keys {
            if let Some(frame) = self.chunks.get(&k) {
                let v = Self::decode(frame, k.0, k.1)?;
                bytes += v.len();
                out.push((k, v));
            }
        }
        self.account(out.len(), bytes);
        Ok(out)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            supports_in_list: true,
            supports_range: true,
            supports_cross_range: true,
            supports_parallel: true,
        }
    }

    fn io_stats(&self) -> IoStats {
        *self.stats.lock().expect("stats mutex")
    }

    fn reset_io_stats(&mut self) {
        *self.stats.get_mut().expect("stats mutex") = IoStats::default();
    }
}

// ---------------------------------------------------------------------
// Binary-file back-end
// ---------------------------------------------------------------------

/// One binary file per array, chunks at fixed offsets after a small
/// header — the paper's file-based storage (and the `.mat` file-link
/// scenario of ch. 7). Supports ranges natively (sequential read);
/// IN-lists are looped but still one "statement" since there is no
/// server round trip. Files persist across store instances: reopening
/// the directory lazily re-attaches existing arrays via their headers.
///
/// Layout (format 2, checksummed): a 16-byte file header, then one
/// fixed-size *slot* per chunk of `FRAME_HEADER + SCC_HEADER +
/// chunk_bytes` bytes. Each slot holds a checksummed [`crate::frame`]
/// whose recorded length may be shorter than the slot capacity (partial
/// tail chunk, or a compressed [`crate::codec`] frame). The
/// `SCC_HEADER` slack exists because an `SCC1` chunk frame is bounded
/// at `chunk_bytes + SCC_HEADER` (every codec falls back to raw
/// passthrough when it cannot shrink the payload), so even an
/// incompressible chunk always fits its slot. A file truncated below a
/// chunk's framed length surfaces as [`StorageError::ShortRead`],
/// distinct from both a missing chunk and a checksum mismatch.
pub struct FileChunkStore {
    dir: PathBuf,
    files: RwLock<HashMap<u64, Arc<ArrayFile>>>,
    stats: Mutex<IoStats>,
    /// Scratch buffer reused across slot reads on the `&mut` paths, so
    /// a multi-chunk fetch does not allocate one read buffer per chunk.
    scratch: Vec<u8>,
    /// fsync every chunk write before returning. Off by default; the
    /// durability layer turns it on under `FsyncPolicy::Always` so
    /// acknowledged chunk data is on media, not just in the page cache.
    sync_writes: bool,
}

/// One open array file and its declared chunk size.
struct ArrayFile {
    file: File,
    chunk_bytes: usize,
}

/// Array-file header: magic + chunk size. `SSDMARR2` introduced
/// per-chunk checksum frames; v1 files (no frames) are rejected with a
/// clear error rather than misread.
const FILE_MAGIC: &[u8; 8] = b"SSDMARR2";
const FILE_MAGIC_V1: &[u8; 8] = b"SSDMARR1";
const FILE_HEADER: u64 = 16;

impl FileChunkStore {
    /// Store files under `dir` (created if needed).
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, StorageError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileChunkStore {
            dir,
            files: RwLock::new(HashMap::new()),
            stats: Mutex::new(IoStats::default()),
            scratch: Vec::new(),
            sync_writes: false,
        })
    }

    /// Make every chunk write fsync before returning (see
    /// `sync_writes`). Independent of [`ChunkStore::sync`], which
    /// flushes on demand whatever this knob says.
    pub fn set_sync_writes(&mut self, on: bool) {
        self.sync_writes = on;
    }

    /// Declare the chunk size of an array before writing it.
    pub fn create_array(&mut self, array_id: u64, chunk_bytes: usize) -> Result<(), StorageError> {
        let path = self.array_path(array_id);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = [0u8; FILE_HEADER as usize];
        header[..8].copy_from_slice(FILE_MAGIC);
        header[8..12].copy_from_slice(&(chunk_bytes as u32).to_le_bytes());
        file.write_all_at(&header, 0)?;
        if self.sync_writes {
            file.sync_all()?;
        }
        self.files
            .write()
            .expect("files lock")
            .insert(array_id, Arc::new(ArrayFile { file, chunk_bytes }));
        Ok(())
    }

    fn array_path(&self, array_id: u64) -> PathBuf {
        self.dir.join(format!("arr_{array_id}.bin"))
    }

    /// The open handle for an array, lazily re-attaching a file written
    /// by a previous instance of the store over the same directory.
    /// Returns a cloned [`Arc`] so callers hold no lock while reading.
    fn file(&self, array_id: u64) -> Result<Arc<ArrayFile>, StorageError> {
        if let Some(af) = self.files.read().expect("files lock").get(&array_id) {
            return Ok(Arc::clone(af));
        }
        let path = self.array_path(array_id);
        if !path.exists() {
            return Err(StorageError::MissingArray(array_id));
        }
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut header = [0u8; FILE_HEADER as usize];
        file.read_exact_at(&mut header, 0)?;
        if &header[..8] == FILE_MAGIC_V1 {
            return Err(StorageError::Backend(format!(
                "{} is a legacy v1 array file without chunk checksums; re-import it",
                path.display()
            )));
        }
        if &header[..8] != FILE_MAGIC {
            return Err(StorageError::Backend(format!(
                "{} is not an SSDM array file",
                path.display()
            )));
        }
        let chunk_bytes = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
        let af = Arc::new(ArrayFile { file, chunk_bytes });
        // Two racing re-attachers both open the file; either handle
        // works, keep whichever landed first.
        Ok(Arc::clone(
            self.files
                .write()
                .expect("files lock")
                .entry(array_id)
                .or_insert(af),
        ))
    }

    /// Bytes per chunk slot: checksum frame header, codec-frame slack,
    /// and the full payload (see the struct docs for why the slack is
    /// safe and sufficient).
    fn slot_bytes(chunk_bytes: usize) -> u64 {
        (crate::frame::FRAME_HEADER + crate::codec::SCC_HEADER + chunk_bytes) as u64
    }

    /// Read and verify the framed chunk in one slot, reading through
    /// `scratch` (grown once, reused across slot reads). Distinguishes
    /// a chunk beyond the end of the file (missing) from one whose
    /// frame is cut off by the file end (short read).
    fn read_slot(
        af: &ArrayFile,
        file_len: u64,
        array_id: u64,
        chunk_id: u64,
        scratch: &mut Vec<u8>,
    ) -> Result<Vec<u8>, StorageError> {
        let offset = FILE_HEADER + chunk_id * Self::slot_bytes(af.chunk_bytes);
        if offset >= file_len {
            return Err(StorageError::MissingChunk { array_id, chunk_id });
        }
        let avail = ((file_len - offset) as usize).min(Self::slot_bytes(af.chunk_bytes) as usize);
        if scratch.len() < avail {
            scratch.resize(avail, 0);
        }
        af.file.read_exact_at(&mut scratch[..avail], offset)?;
        crate::frame::decode(&scratch[..avail])
            .map_err(|e| StorageError::from_frame(array_id, chunk_id, e))
    }

    /// Native sequential read of a whole chunk-id range in one pread,
    /// then per-slot frame verification. `scratch` holds the span.
    fn read_range(
        af: &ArrayFile,
        array_id: u64,
        lo: u64,
        hi: u64,
        scratch: &mut Vec<u8>,
    ) -> Result<(ChunkRows, usize), StorageError> {
        let slot = Self::slot_bytes(af.chunk_bytes) as usize;
        let len = af.file.metadata()?.len();
        let offset = FILE_HEADER + lo * slot as u64;
        if offset >= len {
            return Err(StorageError::MissingChunk {
                array_id,
                chunk_id: lo,
            });
        }
        let span = (((hi - lo + 1) as usize) * slot).min((len - offset) as usize);
        if scratch.len() < span {
            scratch.resize(span, 0);
        }
        af.file.read_exact_at(&mut scratch[..span], offset)?;
        let mut out = Vec::new();
        let mut bytes = 0;
        for i in 0..=(hi - lo) {
            let base = i as usize * slot;
            if base >= span {
                break; // chunks past the end of the file were never written
            }
            let slice = &scratch[base..span.min(base + slot)];
            let chunk_id = lo + i;
            let payload = crate::frame::decode(slice)
                .map_err(|e| StorageError::from_frame(array_id, chunk_id, e))?;
            bytes += payload.len();
            out.push((chunk_id, payload));
        }
        Ok((out, bytes))
    }

    fn account(&self, chunks: usize, bytes: usize) {
        let mut stats = self.stats.lock().expect("stats mutex");
        stats.statements += 1;
        stats.chunks_returned += chunks as u64;
        stats.bytes_returned += bytes as u64;
    }
}

impl SharedChunkRead for FileChunkStore {
    fn read_chunk(&self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        let af = self.file(array_id)?;
        let len = af.file.metadata()?.len();
        let mut scratch = Vec::new();
        let payload = Self::read_slot(&af, len, array_id, chunk_id, &mut scratch)?;
        self.account(1, payload.len());
        Ok(payload)
    }

    fn read_chunks_in(
        &self,
        array_id: u64,
        chunk_ids: &[u64],
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        let af = self.file(array_id)?;
        let len = af.file.metadata()?.len();
        let mut scratch = Vec::new();
        let mut out = Vec::with_capacity(chunk_ids.len());
        let mut bytes = 0;
        for &c in chunk_ids {
            let payload = Self::read_slot(&af, len, array_id, c, &mut scratch)?;
            bytes += payload.len();
            out.push((c, payload));
        }
        self.account(out.len(), bytes);
        Ok(out)
    }

    fn read_chunk_range(
        &self,
        array_id: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        let af = self.file(array_id)?;
        let mut scratch = Vec::new();
        let (out, bytes) = Self::read_range(&af, array_id, lo, hi, &mut scratch)?;
        self.account(out.len(), bytes);
        Ok(out)
    }
}

impl RawChunkAccess for FileChunkStore {
    fn flip_stored_bit(
        &mut self,
        array_id: u64,
        chunk_id: u64,
        bit: u64,
    ) -> Result<bool, StorageError> {
        let af = self.file(array_id)?;
        let len = af.file.metadata()?.len();
        let offset = FILE_HEADER + chunk_id * Self::slot_bytes(af.chunk_bytes);
        if offset >= len {
            return Ok(false);
        }
        let avail = (len - offset).min(Self::slot_bytes(af.chunk_bytes));
        let bit = bit % (avail * 8);
        let mut byte = [0u8; 1];
        af.file.read_exact_at(&mut byte, offset + bit / 8)?;
        byte[0] ^= 1 << (bit % 8);
        af.file.write_all_at(&byte, offset + bit / 8)?;
        Ok(true)
    }
}

impl ChunkStore for FileChunkStore {
    fn begin_array(&mut self, array_id: u64, chunk_bytes: usize) -> Result<(), StorageError> {
        self.create_array(array_id, chunk_bytes)
    }

    fn put_chunk(&mut self, array_id: u64, chunk_id: u64, data: &[u8]) -> Result<(), StorageError> {
        let af = self.file(array_id)?;
        let offset = FILE_HEADER + chunk_id * Self::slot_bytes(af.chunk_bytes);
        af.file.write_all_at(&crate::frame::encode(data), offset)?;
        if self.sync_writes {
            af.file.sync_data()?;
        }
        Ok(())
    }

    fn get_chunk(&mut self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        let af = self.file(array_id)?;
        let len = af.file.metadata()?.len();
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = Self::read_slot(&af, len, array_id, chunk_id, &mut scratch);
        self.scratch = scratch;
        let payload = result?;
        self.account(1, payload.len());
        Ok(payload)
    }

    fn get_chunks_in(
        &mut self,
        array_id: u64,
        chunk_ids: &[u64],
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        let af = self.file(array_id)?;
        let len = af.file.metadata()?.len();
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut bytes = 0;
        let mut result = Ok(Vec::with_capacity(chunk_ids.len()));
        for &c in chunk_ids {
            match Self::read_slot(&af, len, array_id, c, &mut scratch) {
                Ok(payload) => {
                    bytes += payload.len();
                    result.as_mut().expect("still ok").push((c, payload));
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        self.scratch = scratch;
        let out = result?;
        self.account(out.len(), bytes);
        Ok(out)
    }

    fn get_chunk_range(
        &mut self,
        array_id: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        let af = self.file(array_id)?;
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = Self::read_range(&af, array_id, lo, hi, &mut scratch);
        self.scratch = scratch;
        let (out, bytes) = result?;
        self.account(out.len(), bytes);
        Ok(out)
    }

    fn delete_array(&mut self, array_id: u64, _chunk_count: u64) -> Result<(), StorageError> {
        self.files.write().expect("files lock").remove(&array_id);
        std::fs::remove_file(self.array_path(array_id)).ok();
        Ok(())
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            supports_in_list: false,
            supports_range: true,
            supports_cross_range: false, // one file per array
            supports_parallel: true,
        }
    }

    fn io_stats(&self) -> IoStats {
        *self.stats.lock().expect("stats mutex")
    }

    fn reset_io_stats(&mut self) {
        *self.stats.get_mut().expect("stats mutex") = IoStats::default();
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        for af in self.files.read().expect("files lock").values() {
            af.file.sync_all()?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Relational back-end
// ---------------------------------------------------------------------

/// The relational back-end: chunks as rows of a clustered table keyed
/// `(array_id, chunk_id)` (thesis §6.2.1), served by the embedded
/// [`relstore`] substrate with its statement latency model. Row values
/// are checksummed [`crate::frame`]s, so page-level corruption in the
/// substrate is detected when the row is read back.
///
/// The embedded [`Db`] is single-writer, so shared reads serialize on a
/// mutex — but the simulated client–server latency is charged *outside*
/// the lock (by parking, not spinning), so concurrent readers overlap
/// their simulated round trips the way real connections to a remote
/// RDBMS would.
pub struct RelChunkStore {
    db: Mutex<Db>,
}

impl RelChunkStore {
    fn decode_row(frame: &[u8], array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        crate::frame::decode(frame).map_err(|e| StorageError::from_frame(array_id, chunk_id, e))
    }
}

impl RawChunkAccess for RelChunkStore {
    fn flip_stored_bit(
        &mut self,
        array_id: u64,
        chunk_id: u64,
        bit: u64,
    ) -> Result<bool, StorageError> {
        let db = self.db.get_mut().expect("db mutex");
        let key = Key::new(array_id, chunk_id);
        let Some(mut frame) = db.get(key)? else {
            return Ok(false);
        };
        if frame.is_empty() {
            return Ok(false);
        }
        let bit = bit % (frame.len() as u64 * 8);
        frame[(bit / 8) as usize] ^= 1 << (bit % 8);
        db.put(key, &frame)?;
        Ok(true)
    }
}

impl RelChunkStore {
    pub fn new(db: Db) -> Self {
        RelChunkStore { db: Mutex::new(db) }
    }

    /// An in-memory relational store with default options.
    pub fn open_memory() -> Result<Self, StorageError> {
        Ok(Self::new(Db::open_memory(relstore::DbOptions::default())?))
    }

    /// Create a file-backed relational store.
    pub fn create_file(path: &Path, options: relstore::DbOptions) -> Result<Self, StorageError> {
        Ok(Self::new(Db::create_file(path, options)?))
    }

    pub fn db_mut(&mut self) -> &mut Db {
        self.db.get_mut().expect("db mutex")
    }

    /// Run `op` against the locked [`Db`] with latency charging
    /// suppressed, then return the result together with the charge the
    /// configured [`LatencyModel`] would have applied. The caller pays
    /// the charge *after* releasing the lock by parking
    /// ([`relstore::park_wait`]): a client–server round trip is an I/O
    /// wait, so concurrent readers overlap it instead of serializing
    /// spin-waits through the mutex.
    fn shared_statement<T>(
        &self,
        op: impl FnOnce(&mut Db) -> Result<T, StorageError>,
        cost: impl FnOnce(&T) -> (usize, usize),
    ) -> Result<T, StorageError> {
        let (out, charge) = {
            let mut db = self.db.lock().expect("db mutex");
            let lat = db.latency();
            db.set_latency(LatencyModel::none());
            let r = op(&mut db);
            db.set_latency(lat);
            let out = r?;
            let (rows, bytes) = cost(&out);
            let charge = lat.charge(rows, bytes);
            (out, charge)
        };
        relstore::park_wait(charge);
        Ok(out)
    }
}

impl SharedChunkRead for RelChunkStore {
    fn read_chunk(&self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        let frame = self.shared_statement(
            |db| Ok(db.get(Key::new(array_id, chunk_id))?),
            |v| match v {
                Some(b) => (1, b.len()),
                None => (0, 0),
            },
        )?;
        let frame = frame.ok_or(StorageError::MissingChunk { array_id, chunk_id })?;
        Self::decode_row(&frame, array_id, chunk_id)
    }

    fn read_chunks_in(
        &self,
        array_id: u64,
        chunk_ids: &[u64],
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        let rows = self.shared_statement(
            |db| Ok(db.get_in(array_id, chunk_ids)?),
            |rows| (rows.len(), rows.iter().map(|(_, v)| v.len()).sum()),
        )?;
        if rows.len() != chunk_ids.len() {
            let got: std::collections::HashSet<u64> =
                rows.iter().map(|(k, _)| k.chunk_id).collect();
            let missing = chunk_ids.iter().find(|c| !got.contains(c));
            if let Some(&chunk_id) = missing {
                return Err(StorageError::MissingChunk { array_id, chunk_id });
            }
        }
        rows.into_iter()
            .map(|(k, v)| Ok((k.chunk_id, Self::decode_row(&v, array_id, k.chunk_id)?)))
            .collect()
    }

    fn read_chunk_range(
        &self,
        array_id: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        let rows = self.shared_statement(
            |db| Ok(db.get_range(array_id, lo, hi)?),
            |rows| (rows.len(), rows.iter().map(|(_, v)| v.len()).sum()),
        )?;
        rows.into_iter()
            .map(|(k, v)| Ok((k.chunk_id, Self::decode_row(&v, array_id, k.chunk_id)?)))
            .collect()
    }
}

impl ChunkStore for RelChunkStore {
    fn put_chunk(&mut self, array_id: u64, chunk_id: u64, data: &[u8]) -> Result<(), StorageError> {
        self.db
            .get_mut()
            .expect("db mutex")
            .put(Key::new(array_id, chunk_id), &crate::frame::encode(data))?;
        Ok(())
    }

    fn get_chunk(&mut self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        let frame = self
            .db
            .get_mut()
            .expect("db mutex")
            .get(Key::new(array_id, chunk_id))?
            .ok_or(StorageError::MissingChunk { array_id, chunk_id })?;
        Self::decode_row(&frame, array_id, chunk_id)
    }

    fn get_chunks_in(
        &mut self,
        array_id: u64,
        chunk_ids: &[u64],
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        let rows = self
            .db
            .get_mut()
            .expect("db mutex")
            .get_in(array_id, chunk_ids)?;
        if rows.len() != chunk_ids.len() {
            let got: std::collections::HashSet<u64> =
                rows.iter().map(|(k, _)| k.chunk_id).collect();
            let missing = chunk_ids.iter().find(|c| !got.contains(c));
            if let Some(&chunk_id) = missing {
                return Err(StorageError::MissingChunk { array_id, chunk_id });
            }
        }
        rows.into_iter()
            .map(|(k, v)| Ok((k.chunk_id, Self::decode_row(&v, array_id, k.chunk_id)?)))
            .collect()
    }

    fn get_chunk_range(
        &mut self,
        array_id: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        let rows = self
            .db
            .get_mut()
            .expect("db mutex")
            .get_range(array_id, lo, hi)?;
        rows.into_iter()
            .map(|(k, v)| Ok((k.chunk_id, Self::decode_row(&v, array_id, k.chunk_id)?)))
            .collect()
    }

    fn delete_array(&mut self, array_id: u64, chunk_count: u64) -> Result<(), StorageError> {
        let db = self.db.get_mut().expect("db mutex");
        for c in 0..chunk_count {
            db.delete(Key::new(array_id, c))?;
        }
        Ok(())
    }

    fn get_composite_range(
        &mut self,
        lo: (u64, u64),
        hi: (u64, u64),
    ) -> Result<CompositeRows, StorageError> {
        let rows = self
            .db
            .get_mut()
            .expect("db mutex")
            .get_key_range(Key::new(lo.0, lo.1), Key::new(hi.0, hi.1))?;
        rows.into_iter()
            .map(|(k, v)| {
                Ok((
                    (k.array_id, k.chunk_id),
                    Self::decode_row(&v, k.array_id, k.chunk_id)?,
                ))
            })
            .collect()
    }

    fn get_composite_in(&mut self, keys: &[(u64, u64)]) -> Result<CompositeRows, StorageError> {
        let db_keys: Vec<Key> = keys.iter().map(|&(a, c)| Key::new(a, c)).collect();
        let rows = self.db.get_mut().expect("db mutex").get_keys(&db_keys)?;
        rows.into_iter()
            .map(|(k, v)| {
                Ok((
                    (k.array_id, k.chunk_id),
                    Self::decode_row(&v, k.array_id, k.chunk_id)?,
                ))
            })
            .collect()
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            supports_in_list: true,
            supports_range: true,
            supports_cross_range: true,
            supports_parallel: true,
        }
    }

    fn io_stats(&self) -> IoStats {
        let s = self.db.lock().expect("db mutex").statement_stats();
        IoStats {
            statements: s.statements,
            chunks_returned: s.rows_returned,
            bytes_returned: s.bytes_returned,
        }
    }

    fn reset_io_stats(&mut self) {
        self.db.get_mut().expect("db mutex").reset_stats();
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.db.get_mut().expect("db mutex").flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn ChunkStore) {
        store.put_chunk(1, 0, b"aaaaaaaa").unwrap();
        store.put_chunk(1, 1, b"bbbbbbbb").unwrap();
        store.put_chunk(1, 2, b"cccccccc").unwrap();
        assert_eq!(store.get_chunk(1, 1).unwrap(), b"bbbbbbbb");
        let many = store.get_chunks_in(1, &[0, 2]).unwrap();
        assert_eq!(many.len(), 2);
        assert_eq!(many[0], (0, b"aaaaaaaa".to_vec()));
        let range = store.get_chunk_range(1, 0, 2).unwrap();
        assert_eq!(range.len(), 3);
        assert!(store.get_chunk(1, 99).is_err());
        assert!(store.get_chunk(9, 0).is_err());
    }

    #[test]
    fn memory_store_contract() {
        let mut s = MemoryChunkStore::new();
        exercise(&mut s);
        // get_chunk + get_chunks_in + get_chunk_range succeeded; the
        // two failing lookups error out before being accounted.
        assert_eq!(s.io_stats().statements, 3);
    }

    #[test]
    fn rel_store_contract() {
        let mut s = RelChunkStore::open_memory().unwrap();
        exercise(&mut s);
    }

    #[test]
    fn file_store_contract() {
        let dir = std::env::temp_dir().join(format!("ssdm-fcs-{}", std::process::id()));
        let mut s = FileChunkStore::new(&dir).unwrap();
        s.create_array(1, 8).unwrap();
        exercise(&mut s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_store_partial_last_chunk() {
        let dir = std::env::temp_dir().join(format!("ssdm-fcs2-{}", std::process::id()));
        let mut s = FileChunkStore::new(&dir).unwrap();
        s.create_array(1, 16).unwrap();
        s.put_chunk(1, 0, &[1u8; 16]).unwrap();
        s.put_chunk(1, 1, &[2u8; 4]).unwrap(); // partial tail
        assert_eq!(s.get_chunk(1, 1).unwrap(), vec![2u8; 4]);
        let range = s.get_chunk_range(1, 0, 1).unwrap();
        assert_eq!(range[1].1.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_store_truncation_is_short_read_not_io_error() {
        let dir = std::env::temp_dir().join(format!("ssdm-fcs4-{}", std::process::id()));
        let mut s = FileChunkStore::new(&dir).unwrap();
        s.create_array(1, 16).unwrap();
        s.put_chunk(1, 0, &[7u8; 16]).unwrap();
        s.put_chunk(1, 1, &[8u8; 16]).unwrap();
        // Cut the file off mid-way through chunk 1's frame: 10 bytes of
        // a 32-byte slot survive.
        let slot = FileChunkStore::slot_bytes(16);
        let f = OpenOptions::new()
            .write(true)
            .open(dir.join("arr_1.bin"))
            .unwrap();
        f.set_len(FILE_HEADER + slot + 10).unwrap();
        drop(f);
        let err = s.get_chunk(1, 1).unwrap_err();
        assert!(
            matches!(
                err,
                StorageError::ShortRead {
                    array_id: 1,
                    chunk_id: 1,
                    ..
                }
            ),
            "expected ShortRead, got {err:?}"
        );
        assert!(err.is_transient(), "short reads are retry-classified");
        // A range over the torn tail reports the same, and the intact
        // chunk is still served.
        assert!(matches!(
            s.get_chunk_range(1, 0, 1),
            Err(StorageError::ShortRead { .. })
        ));
        assert_eq!(s.get_chunk(1, 0).unwrap(), vec![7u8; 16]);
        // Chunks beyond the file end stay MissingChunk, not ShortRead.
        assert!(matches!(
            s.get_chunk(1, 5),
            Err(StorageError::MissingChunk { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn capabilities_differ() {
        assert!(MemoryChunkStore::new().capabilities().supports_in_list);
        let dir = std::env::temp_dir().join(format!("ssdm-fcs3-{}", std::process::id()));
        let f = FileChunkStore::new(&dir).unwrap();
        assert!(!f.capabilities().supports_in_list);
        assert!(f.capabilities().supports_range);
        std::fs::remove_dir_all(&dir).ok();
    }
}
