//! Deterministic fault injection for the ASEI.
//!
//! [`FaultInjectingChunkStore`] wraps any back-end and injects faults —
//! transient errors, latency spikes, short reads, bit-flip corruption,
//! missing chunks — according to a [`FaultPlan`]. Every decision is
//! drawn from a counter-indexed SplitMix64 stream seeded by
//! `FaultPlan::seed`, so a given `(plan, operation sequence)` always
//! produces the *same* faults: failures found in CI reproduce on a
//! laptop by re-running with the same seed.
//!
//! Two scheduling modes compose:
//!
//! * **probabilistic** — each operation of an [`OpKind`] draws a fault
//!   with `rate(kind)`, the fault's flavor chosen by `weights`;
//! * **scripted** — `fail_nth(op, n, fault)` entries force the `n`-th
//!   call (1-based) of an op kind to fail with a specific flavor,
//!   regardless of probability. Scripted entries win over dice.
//!
//! Corruption is injected *at rest* through [`RawChunkAccess`]: the
//! injector flips one bit of the stored frame, lets the back-end's own
//! CRC32 verification trip over it, and then restores the bit — the
//! model is a bit flipped in transit (bus, wire, page cache), which a
//! re-read does not see. The detection path exercised is exactly the
//! production one. Latency spikes reuse [`relstore::busy_wait`], the
//! same calibrated-delay machinery as the statement latency model.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::resilient::ResilienceStats;
use crate::store::{
    Capabilities, ChunkStore, CompositeRows, IoStats, RawChunkAccess, SharedChunkRead, StorageError,
};

/// The flavors of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A transient back-end error ([`StorageError::Transient`]): dropped
    /// connection, server hiccup. Retrying succeeds.
    Transient,
    /// A latency spike: the operation *succeeds* after an injected
    /// busy-wait of `FaultPlan::spike`.
    LatencySpike,
    /// A short read ([`StorageError::ShortRead`]): the transfer was cut
    /// off below the promised length. Retrying succeeds.
    ShortRead,
    /// One bit of the stored frame flips before the read and is restored
    /// after it (in-transit corruption). The back-end's checksum turns
    /// this into [`StorageError::Corrupt`]; retrying succeeds.
    BitFlip,
    /// The chunk is reported absent ([`StorageError::MissingChunk`]) —
    /// a *permanent* error the retry layer must NOT retry.
    Missing,
}

impl FaultKind {
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Transient,
        FaultKind::LatencySpike,
        FaultKind::ShortRead,
        FaultKind::BitFlip,
        FaultKind::Missing,
    ];

    fn index(self) -> usize {
        match self {
            FaultKind::Transient => 0,
            FaultKind::LatencySpike => 1,
            FaultKind::ShortRead => 2,
            FaultKind::BitFlip => 3,
            FaultKind::Missing => 4,
        }
    }
}

/// Coarse operation classes with independent fault rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `get_chunk`, `get_chunks_in`, `get_chunk_range`, composite reads.
    Read,
    /// `put_chunk`.
    Write,
    /// `begin_array`, `delete_array`.
    Admin,
}

impl OpKind {
    fn index(self) -> usize {
        match self {
            OpKind::Read => 0,
            OpKind::Write => 1,
            OpKind::Admin => 2,
        }
    }
}

/// A scripted fault: force the `nth` call (1-based) of `op` to draw
/// `fault`, regardless of probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    pub op: OpKind,
    pub nth: u64,
    pub fault: FaultKind,
}

/// A reproducible fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the decision stream. Same seed + same operation sequence
    /// = same faults.
    pub seed: u64,
    /// Per-[`OpKind`] fault probability in `[0, 1]`, indexed `[read,
    /// write, admin]`.
    pub rates: [f64; 3],
    /// Relative weight of each [`FaultKind`] when a fault fires, indexed
    /// by [`FaultKind::index`]. All-zero weights disable injection.
    pub weights: [u32; 5],
    /// Busy-wait charged by a [`FaultKind::LatencySpike`].
    pub spike: Duration,
    /// Scripted per-call faults (take precedence over the dice).
    pub scripted: Vec<ScriptedFault>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            rates: [0.0; 3],
            weights: [1, 1, 1, 1, 0], // transient flavors only by default
            spike: Duration::from_micros(200),
            scripted: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A plan injecting only *transient* flavors (transient errors,
    /// latency spikes, short reads, in-transit bit flips) into reads at
    /// probability `rate`. Queries behind a retry layer must survive it
    /// bit-identically; queries without one will eventually fail.
    pub fn transient_reads(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            rates: [rate, 0.0, 0.0],
            weights: [3, 1, 1, 1, 0],
            ..FaultPlan::default()
        }
    }

    /// Scripted-only plan: no dice, faults exactly where placed.
    pub fn scripted(seed: u64, scripted: Vec<ScriptedFault>) -> Self {
        FaultPlan {
            seed,
            scripted,
            ..FaultPlan::default()
        }
    }

    /// Force the `nth` call (1-based) of `op` to fail with `fault`.
    pub fn fail_nth(mut self, op: OpKind, nth: u64, fault: FaultKind) -> Self {
        self.scripted.push(ScriptedFault { op, nth, fault });
        self
    }

    /// Seed override from the environment (`SSDM_FAULT_SEED`), for the
    /// CI fault matrix: the same test binary exercises a different
    /// deterministic schedule per matrix entry.
    pub fn seed_from_env(default: u64) -> u64 {
        std::env::var("SSDM_FAULT_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(default)
    }

    fn rate(&self, op: OpKind) -> f64 {
        self.rates[op.index()]
    }
}

/// Counters of what the injector actually did — `injected[k]` indexed by
/// [`FaultKind::index`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Operations seen, per [`OpKind::index`].
    pub ops: [u64; 3],
    /// Faults injected, per [`FaultKind::index`].
    pub injected: [u64; 5],
}

impl FaultStats {
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    pub fn injected_of(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()]
    }
}

/// SplitMix64: a tiny, high-quality, counter-indexable generator — the
/// decision for call `n` depends only on `(seed, n)`, never on how many
/// random numbers earlier calls consumed.
fn splitmix64(seed: u64, counter: u64) -> u64 {
    let mut z = seed
        .wrapping_add(counter.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`ChunkStore`] decorator that injects faults per a [`FaultPlan`].
///
/// The `RawChunkAccess` bound is what lets [`FaultKind::BitFlip`]
/// corrupt the *stored* representation so the back-end's own checksum
/// verification — the code path a real corruption would take — raises
/// the error.
pub struct FaultInjectingChunkStore<S: ChunkStore + RawChunkAccess> {
    inner: S,
    plan: FaultPlan,
    /// Counters behind a mutex so the shared-read paths can draw from
    /// many worker threads at once. The decision stream stays counter-
    /// indexed, so fault *totals* are schedule-independent; which
    /// concurrent operation draws which fault is scheduling-dependent.
    state: Mutex<FaultState>,
    /// Disarms injection while the injector calls back into itself
    /// (bit-flip restore paths must not draw new faults).
    disarmed: AtomicBool,
    /// Whether [`Capabilities::supports_parallel`] is advertised; off by
    /// default so existing capability-downgrade behavior is unchanged.
    parallel_ok: bool,
}

#[derive(Debug, Default)]
struct FaultState {
    /// Global operation counter (drives the decision stream).
    calls: u64,
    /// Per-[`OpKind`] call counters (drive scripted schedules).
    op_calls: [u64; 3],
    stats: FaultStats,
}

impl<S: ChunkStore + RawChunkAccess> FaultInjectingChunkStore<S> {
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultInjectingChunkStore {
            inner,
            plan,
            state: Mutex::new(FaultState::default()),
            disarmed: AtomicBool::new(false),
            parallel_ok: false,
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub fn fault_stats(&self) -> FaultStats {
        self.state.lock().expect("fault state").stats
    }

    pub fn reset_fault_stats(&mut self) {
        self.state.get_mut().expect("fault state").stats = FaultStats::default();
    }

    pub fn inner(&self) -> &S {
        &self.inner
    }

    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Stop injecting (keeps counters); useful to compare faulty and
    /// clean phases on one store.
    pub fn disarm(&mut self) {
        self.disarmed.store(true, Ordering::Relaxed);
    }

    pub fn arm(&mut self) {
        self.disarmed.store(false, Ordering::Relaxed);
    }

    /// Advertise [`Capabilities::supports_parallel`], letting callers
    /// route concurrent shared reads through the injector. Opt-in: the
    /// per-operation fault *schedule* then depends on thread timing
    /// (totals stay deterministic), so tests that assert exact per-call
    /// placement should leave it off.
    pub fn enable_parallel(&mut self) {
        self.parallel_ok = true;
    }

    /// Decide the fault (if any) for the current call of `op`. Returns
    /// the drawn fault and the call number (for derived draws).
    fn draw(&self, op: OpKind) -> Option<(FaultKind, u64)> {
        if self.disarmed.load(Ordering::Relaxed) {
            return None;
        }
        let mut state = self.state.lock().expect("fault state");
        state.calls += 1;
        state.op_calls[op.index()] += 1;
        state.stats.ops[op.index()] += 1;
        let calls = state.calls;
        let nth = state.op_calls[op.index()];
        drop(state);
        if let Some(s) = self
            .plan
            .scripted
            .iter()
            .find(|s| s.op == op && s.nth == nth)
        {
            return Some((s.fault, calls));
        }
        let rate = self.plan.rate(op);
        if rate <= 0.0 {
            return None;
        }
        let total: u32 = self.plan.weights.iter().sum();
        if total == 0 {
            return None;
        }
        let roll = splitmix64(self.plan.seed, calls);
        // Top 53 bits -> uniform in [0, 1).
        let u = (roll >> 11) as f64 / (1u64 << 53) as f64;
        if u >= rate {
            return None;
        }
        // Second, independent draw selects the flavor.
        let mut pick = (splitmix64(self.plan.seed ^ 0xFA17, calls) % total as u64) as u32;
        for kind in FaultKind::ALL {
            let w = self.plan.weights[kind.index()];
            if pick < w {
                return Some((kind, calls));
            }
            pick -= w;
        }
        None
    }

    fn record_injected(&self, kind: FaultKind) {
        self.state.lock().expect("fault state").stats.injected[kind.index()] += 1;
    }

    /// Apply a drawn fault to an operation touching `(array_id,
    /// chunk_id)` (a representative chunk for batched ops). Returns
    /// `None` when the operation should proceed normally (latency spike
    /// already charged, or bit already flipped at rest).
    fn pre_fault(
        &self,
        kind: FaultKind,
        array_id: u64,
        chunk_id: u64,
        calls: u64,
    ) -> Option<StorageError> {
        self.record_injected(kind);
        match kind {
            FaultKind::Transient => Some(StorageError::Transient(format!(
                "injected transient fault (call {calls})"
            ))),
            FaultKind::LatencySpike => {
                relstore::busy_wait(self.plan.spike);
                None
            }
            FaultKind::ShortRead => Some(StorageError::ShortRead {
                array_id,
                chunk_id,
                expected: 64,
                got: 17,
            }),
            FaultKind::Missing => Some(StorageError::MissingChunk { array_id, chunk_id }),
            FaultKind::BitFlip => None, // handled around the inner call
        }
    }

    /// Run a read-class operation with fault injection. `target` names a
    /// representative chunk for error attribution and bit flipping.
    fn read_op<T>(
        &mut self,
        target: (u64, u64),
        op: impl FnOnce(&mut S) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        match self.draw(OpKind::Read) {
            None => op(&mut self.inner),
            Some((FaultKind::BitFlip, calls)) => {
                self.record_injected(FaultKind::BitFlip);
                // Corrupt at rest, read through the back-end's checksum
                // path, then restore: in-transit corruption semantics.
                let bit = splitmix64(self.plan.seed ^ 0xB17F, calls) | 1;
                let flipped = self
                    .inner
                    .flip_stored_bit(target.0, target.1, bit)
                    .unwrap_or(false);
                let result = op(&mut self.inner);
                if flipped {
                    self.inner.flip_stored_bit(target.0, target.1, bit)?;
                }
                // A frame is CRC-protected end to end, so the flip must
                // surface as an error; pass whatever the back-end said.
                result
            }
            Some((kind, calls)) => match self.pre_fault(kind, target.0, target.1, calls) {
                Some(err) => Err(err),
                None => op(&mut self.inner),
            },
        }
    }

    fn plain_op<T>(
        &mut self,
        kind: OpKind,
        target: (u64, u64),
        op: impl FnOnce(&mut S) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        match self.draw(kind) {
            None | Some((FaultKind::BitFlip, _)) => op(&mut self.inner),
            Some((f, calls)) => match self.pre_fault(f, target.0, target.1, calls) {
                Some(err) => Err(err),
                None => op(&mut self.inner),
            },
        }
    }
}

impl<S: ChunkStore + RawChunkAccess + SharedChunkRead> FaultInjectingChunkStore<S> {
    /// The shared-read twin of [`Self::read_op`]. Bit flips cannot touch
    /// the at-rest representation here (that needs `&mut`), so the
    /// injector fabricates the [`StorageError::Corrupt`] the checksum
    /// would have raised for an in-transit flip — same error class, same
    /// transience, no stored state mutated, so a retry succeeds exactly
    /// as it does on the exclusive path.
    fn shared_read_op<T>(
        &self,
        target: (u64, u64),
        op: impl FnOnce(&S) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        match self.draw(OpKind::Read) {
            None => op(&self.inner),
            Some((FaultKind::BitFlip, _)) => {
                self.record_injected(FaultKind::BitFlip);
                Err(StorageError::Corrupt {
                    array_id: target.0,
                    chunk_id: target.1,
                    detail: "injected in-transit bit flip".into(),
                })
            }
            Some((kind, calls)) => match self.pre_fault(kind, target.0, target.1, calls) {
                Some(err) => Err(err),
                None => op(&self.inner),
            },
        }
    }
}

impl<S: ChunkStore + RawChunkAccess + SharedChunkRead> SharedChunkRead
    for FaultInjectingChunkStore<S>
{
    fn read_chunk(&self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        self.shared_read_op((array_id, chunk_id), |s| s.read_chunk(array_id, chunk_id))
    }

    fn read_chunks_in(
        &self,
        array_id: u64,
        chunk_ids: &[u64],
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        let rep = chunk_ids.first().copied().unwrap_or(0);
        self.shared_read_op((array_id, rep), |s| s.read_chunks_in(array_id, chunk_ids))
    }

    fn read_chunk_range(
        &self,
        array_id: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        self.shared_read_op((array_id, lo), |s| s.read_chunk_range(array_id, lo, hi))
    }
}

impl<S: ChunkStore + RawChunkAccess> ChunkStore for FaultInjectingChunkStore<S> {
    fn begin_array(&mut self, array_id: u64, chunk_bytes: usize) -> Result<(), StorageError> {
        self.plain_op(OpKind::Admin, (array_id, 0), |s| {
            s.begin_array(array_id, chunk_bytes)
        })
    }

    fn put_chunk(&mut self, array_id: u64, chunk_id: u64, data: &[u8]) -> Result<(), StorageError> {
        self.plain_op(OpKind::Write, (array_id, chunk_id), |s| {
            s.put_chunk(array_id, chunk_id, data)
        })
    }

    fn get_chunk(&mut self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        self.read_op((array_id, chunk_id), |s| s.get_chunk(array_id, chunk_id))
    }

    fn get_chunks_in(
        &mut self,
        array_id: u64,
        chunk_ids: &[u64],
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        let rep = chunk_ids.first().copied().unwrap_or(0);
        self.read_op((array_id, rep), |s| s.get_chunks_in(array_id, chunk_ids))
    }

    fn get_chunk_range(
        &mut self,
        array_id: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        self.read_op((array_id, lo), |s| s.get_chunk_range(array_id, lo, hi))
    }

    fn get_composite_range(
        &mut self,
        lo: (u64, u64),
        hi: (u64, u64),
    ) -> Result<CompositeRows, StorageError> {
        self.read_op(lo, |s| s.get_composite_range(lo, hi))
    }

    fn get_composite_in(&mut self, keys: &[(u64, u64)]) -> Result<CompositeRows, StorageError> {
        let rep = keys.first().copied().unwrap_or((0, 0));
        self.read_op(rep, |s| s.get_composite_in(keys))
    }

    fn delete_array(&mut self, array_id: u64, chunk_count: u64) -> Result<(), StorageError> {
        self.plain_op(OpKind::Admin, (array_id, 0), |s| {
            s.delete_array(array_id, chunk_count)
        })
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            // The injector's deterministic fault schedule is keyed to
            // operation order, which concurrent shared reads scramble —
            // callers take the sequential path unless the test opted in
            // via [`Self::enable_parallel`] (fault totals stay exact
            // either way; per-call placement does not).
            supports_parallel: self.parallel_ok && self.inner.capabilities().supports_parallel,
            ..self.inner.capabilities()
        }
    }

    fn io_stats(&self) -> IoStats {
        self.inner.io_stats()
    }

    fn reset_io_stats(&mut self) {
        self.inner.reset_io_stats()
    }

    fn resilience_stats(&self) -> ResilienceStats {
        self.inner.resilience_stats()
    }

    fn shard_stats(&self) -> Option<crate::shard::ShardStats> {
        self.inner.shard_stats()
    }

    fn reset_resilience_stats(&mut self) {
        self.inner.reset_resilience_stats()
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.inner.sync()
    }
}

impl<S: ChunkStore + RawChunkAccess> RawChunkAccess for FaultInjectingChunkStore<S> {
    fn flip_stored_bit(
        &mut self,
        array_id: u64,
        chunk_id: u64,
        bit: u64,
    ) -> Result<bool, StorageError> {
        self.inner.flip_stored_bit(array_id, chunk_id, bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryChunkStore;

    fn seeded_store(plan: FaultPlan) -> FaultInjectingChunkStore<MemoryChunkStore> {
        let mut inner = MemoryChunkStore::new();
        for c in 0..20u64 {
            inner.put_chunk(1, c, &[c as u8; 64]).unwrap();
        }
        FaultInjectingChunkStore::new(inner, plan)
    }

    /// Replay the same plan twice: identical fault sequences.
    #[test]
    fn schedules_are_deterministic() {
        let run = || {
            let mut s = seeded_store(FaultPlan::transient_reads(42, 0.35));
            (0..60u64)
                .map(|i| s.get_chunk(1, i % 20).is_ok())
                .collect::<Vec<bool>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.iter().any(|ok| !ok), "some fault fired at 35%");
        assert!(a.iter().any(|ok| *ok), "not everything fails at 35%");
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut s = seeded_store(FaultPlan::transient_reads(seed, 0.35));
            (0..60u64)
                .map(|i| s.get_chunk(1, i % 20).is_ok())
                .collect::<Vec<bool>>()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let mut s = seeded_store(FaultPlan::transient_reads(7, 0.0));
        for i in 0..50u64 {
            s.get_chunk(1, i % 20).unwrap();
        }
        assert_eq!(s.fault_stats().total_injected(), 0);
        assert_eq!(s.fault_stats().ops[OpKind::Read.index()], 50);
    }

    #[test]
    fn scripted_faults_hit_exact_calls() {
        let plan = FaultPlan::scripted(0, vec![])
            .fail_nth(OpKind::Read, 2, FaultKind::Transient)
            .fail_nth(OpKind::Read, 4, FaultKind::Missing);
        let mut s = seeded_store(plan);
        assert!(s.get_chunk(1, 0).is_ok());
        assert!(matches!(s.get_chunk(1, 0), Err(StorageError::Transient(_))));
        assert!(s.get_chunk(1, 0).is_ok());
        assert!(matches!(
            s.get_chunk(1, 1),
            Err(StorageError::MissingChunk {
                array_id: 1,
                chunk_id: 1
            })
        ));
        assert!(s.get_chunk(1, 0).is_ok());
        assert_eq!(s.fault_stats().total_injected(), 2);
    }

    #[test]
    fn bit_flip_is_detected_and_transient() {
        let plan = FaultPlan::scripted(9, vec![]).fail_nth(OpKind::Read, 1, FaultKind::BitFlip);
        let mut s = seeded_store(plan);
        let err = s.get_chunk(1, 3).unwrap_err();
        assert!(
            matches!(err, StorageError::Corrupt { .. }),
            "checksum must catch the injected flip, got: {err}"
        );
        assert!(err.is_transient());
        // The flip was restored: the next read sees pristine data.
        assert_eq!(s.get_chunk(1, 3).unwrap(), vec![3u8; 64]);
    }

    #[test]
    fn short_read_and_spike_flavors() {
        let plan = FaultPlan::scripted(0, vec![])
            .fail_nth(OpKind::Read, 1, FaultKind::ShortRead)
            .fail_nth(OpKind::Read, 2, FaultKind::LatencySpike);
        let mut s = seeded_store(plan);
        assert!(matches!(
            s.get_chunk(1, 0),
            Err(StorageError::ShortRead { .. })
        ));
        // Spike: slow but successful.
        assert_eq!(s.get_chunk(1, 0).unwrap(), vec![0u8; 64]);
        assert_eq!(s.fault_stats().injected_of(FaultKind::LatencySpike), 1);
    }

    #[test]
    fn batched_reads_draw_one_decision_per_statement() {
        let plan = FaultPlan::scripted(0, vec![]).fail_nth(OpKind::Read, 1, FaultKind::Transient);
        let mut s = seeded_store(plan);
        assert!(s.get_chunks_in(1, &[0, 1, 2, 3]).is_err());
        assert_eq!(s.get_chunks_in(1, &[0, 1, 2, 3]).unwrap().len(), 4);
        assert_eq!(s.fault_stats().ops[OpKind::Read.index()], 2);
    }

    #[test]
    fn observed_rate_tracks_plan_rate() {
        let mut s = seeded_store(FaultPlan::transient_reads(1234, 0.10));
        let mut failures = 0;
        for i in 0..2000u64 {
            match s.get_chunk(1, i % 20) {
                Ok(_) => {}
                Err(e) => {
                    assert!(e.is_transient());
                    failures += 1;
                }
            }
        }
        let injected = s.fault_stats().total_injected();
        assert!(
            (120..=280).contains(&injected),
            "10% of 2000 ops ±: {injected}"
        );
        // Latency spikes succeed, so failures <= injections.
        assert!(failures <= injected);
    }

    #[test]
    fn seed_from_env_parses_and_defaults() {
        // NB: avoid set_var races by only reading here.
        let seed = FaultPlan::seed_from_env(77);
        let expected = std::env::var("SSDM_FAULT_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(77);
        assert_eq!(seed, expected);
    }
}
