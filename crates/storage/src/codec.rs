//! Compressed, self-describing chunk frames (`SCC1`) and the per-chunk
//! summary zone maps built from them.
//!
//! The ASEI back-ends move opaque chunk payloads; until now those were
//! raw little-endian 8-byte words, so every chunk paid full price on
//! disk, on the wire, in the WAL and in the cache. This module wraps
//! each chunk in a second, *inner* frame that travels **inside** the
//! CRC32 [`crate::frame`] the back-ends already apply (integrity stays
//! a lower-layer concern):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SCC1"
//! 4       1     codec id (0 raw, 1 delta-bp, 2 rle)
//! 5       1     element type (0 i64, 1 f64)
//! 6       2     reserved (zero)
//! 8       8     uncompressed payload length in bytes, u64 LE
//! 16      8     summary: min value bits, u64 LE
//! 24      8     summary: max value bits, u64 LE
//! 32      8     summary: null (NaN) count, u64 LE
//! 40      ..    encoded body
//! ```
//!
//! Three from-scratch codecs, chosen **per chunk** by a size heuristic:
//!
//! * **raw** — the body is the payload verbatim. Always correct, and
//!   the fallback whenever an encoded candidate would not be smaller
//!   than the raw bytes (so a frame never exceeds `raw + header`, which
//!   keeps fixed-slot file layouts bounded).
//! * **delta-bp** — zigzagged wrapping deltas of the 8-byte words,
//!   bit-packed in 128-value mini-blocks with a per-block bit width.
//!   Near-optimal for the monotone / slowly-varying integer series the
//!   BISTAB workload produces.
//! * **rle** — `(count, value)` runs over 8-byte words. Wins on
//!   constant regions and zero padding; works for both element types
//!   because runs compare *bit patterns* (`-0.0` and NaN payloads
//!   round-trip exactly).
//!
//! Every codec is bit-exact: decode(encode(x)) == x for any byte
//! payload, including `-0.0`, NaN bit patterns and `i64::MIN`.
//!
//! The summary (min/max over present values, NaN count for `f64`) is
//! the unit of the **zone map** ([`ZoneMap`]): a coarse per-array index
//! the APR consults to skip chunks that provably cannot satisfy a
//! [`ValuePredicate`] — before any fetch happens. Skipping is strictly
//! conservative: a chunk is dropped only when *no* element in it can
//! match, so filtered results are bit-identical with skipping on or
//! off.

use ssdm_array::{Num, NumericType};

/// Inner-frame magic: "Ssdm Compressed Chunk v1".
pub const SCC_MAGIC: [u8; 4] = *b"SCC1";

/// Inner-frame header length in bytes (8-byte aligned).
pub const SCC_HEADER: usize = 40;

/// Ceiling on the uncompressed length a header may claim. Frames are
/// CRC-protected below this layer, but a defensive cap keeps a crafted
/// or miscomposed header from turning into an allocation bomb.
const MAX_UNCOMPRESSED: u64 = 1 << 30;

/// Values per delta-bp mini-block.
const BP_BLOCK: usize = 128;

/// The per-chunk codec identifiers stored in the frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CodecId {
    Raw = 0,
    DeltaBp = 1,
    Rle = 2,
}

impl CodecId {
    fn from_byte(b: u8) -> Option<CodecId> {
        match b {
            0 => Some(CodecId::Raw),
            1 => Some(CodecId::DeltaBp),
            2 => Some(CodecId::Rle),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            CodecId::Raw => "raw",
            CodecId::DeltaBp => "delta-bp",
            CodecId::Rle => "rle",
        }
    }
}

/// Which codec `encode_chunk` should *prefer*. `Auto` (the default)
/// encodes the candidates and keeps the smallest; a forced codec still
/// falls back to raw passthrough for chunks it cannot shrink, so the
/// frame size stays bounded by `raw + SCC_HEADER` under every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CodecPolicy {
    /// Passthrough frames: no compression, but still self-describing
    /// with a summary — zone-map skipping works at zero decode cost.
    Raw,
    DeltaBp,
    Rle,
    #[default]
    Auto,
}

impl CodecPolicy {
    pub fn name(self) -> &'static str {
        match self {
            CodecPolicy::Raw => "raw",
            CodecPolicy::DeltaBp => "delta-bp",
            CodecPolicy::Rle => "rle",
            CodecPolicy::Auto => "auto",
        }
    }

    pub fn parse(s: &str) -> Option<CodecPolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "raw" | "none" => Some(CodecPolicy::Raw),
            "delta-bp" | "delta_bp" | "deltabp" | "delta" => Some(CodecPolicy::DeltaBp),
            "rle" => Some(CodecPolicy::Rle),
            "auto" => Some(CodecPolicy::Auto),
            _ => None,
        }
    }

    /// The policy selected by the `SSDM_CODEC` environment variable
    /// (`raw`, `delta-bp`, `rle`, `auto`), defaulting to `Auto`. This
    /// is how CI runs the whole storage suite under each codec.
    pub fn from_env() -> CodecPolicy {
        std::env::var("SSDM_CODEC")
            .ok()
            .and_then(|v| CodecPolicy::parse(&v))
            .unwrap_or_default()
    }
}

/// Why an `SCC1` frame failed to decode. Callers in the storage layer
/// map these to [`StorageError::Corrupt`](crate::StorageError::Corrupt)
/// with the chunk's identity attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The bytes do not start with an `SCC1` header.
    BadMagic,
    /// Unknown codec id, bad element type, nonzero reserved bytes or an
    /// implausible uncompressed length.
    BadHeader,
    /// The encoded body is malformed (truncated block, run overflow,
    /// packed width out of range...).
    BadBody(&'static str),
    /// The body decoded to a different length than the header promised.
    LengthMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "bad SCC1 magic"),
            CodecError::BadHeader => write!(f, "damaged SCC1 header"),
            CodecError::BadBody(why) => write!(f, "malformed SCC1 body: {why}"),
            CodecError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "SCC1 length mismatch: decoded {got}, header says {expected}"
                )
            }
        }
    }
}

/// Per-chunk summary: element count, NaN count (always zero for `i64`
/// chunks) and min/max bit patterns over the *present* (non-NaN)
/// values. The unit of the zone map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSummary {
    /// Elements in the chunk.
    pub count: u64,
    /// NaN elements (`f64` chunks; "null" in the paper's sense).
    pub nulls: u64,
    /// Bit pattern of the minimum present value.
    pub min_bits: u64,
    /// Bit pattern of the maximum present value.
    pub max_bits: u64,
}

impl ChunkSummary {
    fn empty() -> ChunkSummary {
        ChunkSummary {
            count: 0,
            nulls: 0,
            min_bits: 0,
            max_bits: 0,
        }
    }

    /// The minimum present value as a typed number.
    pub fn min(&self, ty: NumericType) -> Num {
        match ty {
            NumericType::Int => Num::Int(self.min_bits as i64),
            NumericType::Real => Num::Real(f64::from_bits(self.min_bits)),
        }
    }

    /// The maximum present value as a typed number.
    pub fn max(&self, ty: NumericType) -> Num {
        match ty {
            NumericType::Int => Num::Int(self.max_bits as i64),
            NumericType::Real => Num::Real(f64::from_bits(self.max_bits)),
        }
    }

    /// Whether any element of a chunk with this summary *could* satisfy
    /// `pred`. Strictly conservative: `false` only when the summary
    /// proves no element matches (empty chunk, all-NaN chunk, or the
    /// predicate's range lies entirely outside `[min, max]`). Undecided
    /// comparisons (NaN bounds in the predicate) answer `true`.
    pub fn may_match(&self, ty: NumericType, pred: &ValuePredicate) -> bool {
        if self.count == 0 || self.nulls >= self.count {
            // No present values: neither ranges nor membership can
            // match anything (NaN fails every predicate).
            return false;
        }
        let mn = self.min(ty);
        let mx = self.max(ty);
        let below = |a: Num, b: Num| matches!(a.partial_cmp(&b), Some(std::cmp::Ordering::Less));
        match pred {
            ValuePredicate::Range { lo, hi } => !(below(mx, *lo) || below(*hi, mn)),
            ValuePredicate::In(values) => values.iter().any(|v| !(below(*v, mn) || below(mx, *v))),
        }
    }
}

/// A `FILTER`-style element predicate the APR can evaluate against
/// chunk summaries (to skip) and against decoded elements (to select).
#[derive(Debug, Clone, PartialEq)]
pub enum ValuePredicate {
    /// `lo <= x <= hi`, inclusive. NaN elements never match.
    Range { lo: Num, hi: Num },
    /// Membership: `x` equals any of the listed values.
    In(Vec<Num>),
}

impl ValuePredicate {
    /// Whether a single element satisfies the predicate.
    pub fn matches(&self, v: Num) -> bool {
        match self {
            ValuePredicate::Range { lo, hi } => {
                use std::cmp::Ordering::*;
                matches!(lo.partial_cmp(&v), Some(Less | Equal))
                    && matches!(v.partial_cmp(hi), Some(Less | Equal))
            }
            ValuePredicate::In(values) => values
                .iter()
                .any(|c| matches!(c.partial_cmp(&v), Some(std::cmp::Ordering::Equal))),
        }
    }
}

/// The per-array zone map: one [`ChunkSummary`] per chunk, in chunk-id
/// order, kept in the array catalog alongside [`crate::ArrayMeta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneMap {
    /// Element type of the summarized array (needed to interpret the
    /// stored bit patterns).
    pub ty: NumericType,
    /// Summaries indexed by chunk id.
    pub summaries: Vec<ChunkSummary>,
}

impl ZoneMap {
    /// Whether `chunk_id` could hold a match for `pred`. Chunks without
    /// a summary (out of range) conservatively answer `true`.
    pub fn may_match(&self, chunk_id: u64, pred: &ValuePredicate) -> bool {
        match self.summaries.get(chunk_id as usize) {
            Some(s) => s.may_match(self.ty, pred),
            None => true,
        }
    }
}

/// Compute the summary of a raw little-endian chunk payload.
pub fn summarize(raw: &[u8], ty: NumericType) -> ChunkSummary {
    let words = raw.chunks_exact(8);
    match ty {
        NumericType::Int => {
            let mut s = ChunkSummary::empty();
            let mut min = i64::MAX;
            let mut max = i64::MIN;
            for w in words {
                let v = i64::from_le_bytes(w.try_into().expect("8 bytes"));
                min = min.min(v);
                max = max.max(v);
                s.count += 1;
            }
            if s.count > 0 {
                s.min_bits = min as u64;
                s.max_bits = max as u64;
            }
            s
        }
        NumericType::Real => {
            let mut s = ChunkSummary::empty();
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut seen = false;
            for w in words {
                let v = f64::from_bits(u64::from_le_bytes(w.try_into().expect("8 bytes")));
                s.count += 1;
                if v.is_nan() {
                    s.nulls += 1;
                } else {
                    min = if seen { min.min(v) } else { v };
                    max = if seen { max.max(v) } else { v };
                    seen = true;
                }
            }
            if seen {
                s.min_bits = min.to_bits();
                s.max_bits = max.to_bits();
            } else {
                s.min_bits = f64::NAN.to_bits();
                s.max_bits = f64::NAN.to_bits();
            }
            s
        }
    }
}

fn words_of(raw: &[u8]) -> Vec<u64> {
    raw.chunks_exact(8)
        .map(|w| u64::from_le_bytes(w.try_into().expect("8 bytes")))
        .collect()
}

fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Delta + variable-width bit-packing over 8-byte words: `[first word,
/// 8 bytes LE]` then mini-blocks of up to [`BP_BLOCK`] zigzagged
/// wrapping deltas, each `[width byte][ceil(k*width/8) packed bytes]`.
fn delta_bp_encode(words: &[u64]) -> Vec<u8> {
    let mut out = Vec::new();
    let Some((&first, rest)) = words.split_first() else {
        return out;
    };
    out.extend_from_slice(&first.to_le_bytes());
    let mut prev = first;
    let mut deltas = Vec::with_capacity(rest.len());
    for &w in rest {
        deltas.push(zigzag(w.wrapping_sub(prev) as i64));
        prev = w;
    }
    for block in deltas.chunks(BP_BLOCK) {
        let width = block
            .iter()
            .map(|z| 64 - z.leading_zeros() as usize)
            .max()
            .unwrap_or(0);
        out.push(width as u8);
        // Little-endian bit stream: low bits of earlier values first.
        let mut acc: u128 = 0;
        let mut bits = 0usize;
        for &z in block {
            acc |= (z as u128) << bits;
            bits += width;
            while bits >= 8 {
                out.push((acc & 0xFF) as u8);
                acc >>= 8;
                bits -= 8;
            }
        }
        if bits > 0 {
            out.push((acc & 0xFF) as u8);
        }
    }
    out
}

fn delta_bp_decode(body: &[u8], n_words: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(n_words * 8);
    if n_words == 0 {
        if !body.is_empty() {
            return Err(CodecError::BadBody("trailing bytes after empty chunk"));
        }
        return Ok(out);
    }
    if body.len() < 8 {
        return Err(CodecError::BadBody("missing first word"));
    }
    let mut prev = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
    out.extend_from_slice(&prev.to_le_bytes());
    let mut pos = 8usize;
    let mut remaining = n_words - 1;
    while remaining > 0 {
        let k = remaining.min(BP_BLOCK);
        let width = *body
            .get(pos)
            .ok_or(CodecError::BadBody("missing block width"))? as usize;
        if width > 64 {
            return Err(CodecError::BadBody("packed width over 64 bits"));
        }
        pos += 1;
        let packed_len = (k * width).div_ceil(8);
        let packed = body
            .get(pos..pos + packed_len)
            .ok_or(CodecError::BadBody("truncated packed block"))?;
        pos += packed_len;
        let mut acc: u128 = 0;
        let mut bits = 0usize;
        let mut byte_idx = 0usize;
        let mask: u128 = if width == 64 {
            u64::MAX as u128
        } else {
            (1u128 << width) - 1
        };
        for _ in 0..k {
            while bits < width {
                acc |= (packed[byte_idx] as u128) << bits;
                byte_idx += 1;
                bits += 8;
            }
            let z = (acc & mask) as u64;
            acc >>= width;
            bits -= width;
            prev = prev.wrapping_add(unzigzag(z) as u64);
            out.extend_from_slice(&prev.to_le_bytes());
        }
        remaining -= k;
    }
    if pos != body.len() {
        return Err(CodecError::BadBody("trailing bytes after last block"));
    }
    Ok(out)
}

/// Run-length encoding over 8-byte words: repeated `[count u32 LE]
/// [value 8 bytes LE]` pairs. Runs compare bit patterns, so `f64` NaN
/// payloads and `-0.0` survive exactly.
fn rle_encode(words: &[u64]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut iter = words.iter();
    let Some(&first) = iter.next() else {
        return out;
    };
    let mut run_val = first;
    let mut run_len: u64 = 1;
    let flush = |val: u64, len: u64, out: &mut Vec<u8>| {
        let mut left = len;
        while left > 0 {
            let n = left.min(u32::MAX as u64);
            out.extend_from_slice(&(n as u32).to_le_bytes());
            out.extend_from_slice(&val.to_le_bytes());
            left -= n;
        }
    };
    for &w in iter {
        if w == run_val {
            run_len += 1;
        } else {
            flush(run_val, run_len, &mut out);
            run_val = w;
            run_len = 1;
        }
    }
    flush(run_val, run_len, &mut out);
    out
}

fn rle_decode(body: &[u8], n_words: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(n_words * 8);
    let mut produced = 0usize;
    let mut pos = 0usize;
    while pos < body.len() {
        let run = body
            .get(pos..pos + 12)
            .ok_or(CodecError::BadBody("truncated run"))?;
        let count = u32::from_le_bytes(run[..4].try_into().expect("4 bytes")) as usize;
        if count == 0 || produced + count > n_words {
            return Err(CodecError::BadBody("run overflows chunk"));
        }
        let value = &run[4..12];
        for _ in 0..count {
            out.extend_from_slice(value);
        }
        produced += count;
        pos += 12;
    }
    if produced != n_words {
        return Err(CodecError::LengthMismatch {
            expected: n_words * 8,
            got: produced * 8,
        });
    }
    Ok(out)
}

/// Wrap a raw little-endian chunk payload in an `SCC1` frame, choosing
/// the codec per `policy` (with raw fallback whenever the encoded body
/// would not be smaller), and return the frame plus the summary that
/// went into its header.
pub fn encode_chunk(raw: &[u8], ty: NumericType, policy: CodecPolicy) -> (Vec<u8>, ChunkSummary) {
    let summary = summarize(raw, ty);
    let words;
    let (codec, body): (CodecId, Vec<u8>) = if !raw.len().is_multiple_of(8) {
        // Defensive: payloads we did not produce. Raw passthrough is
        // always correct.
        (CodecId::Raw, raw.to_vec())
    } else {
        words = words_of(raw);
        let mut candidates: Vec<(CodecId, Vec<u8>)> = Vec::new();
        match policy {
            CodecPolicy::Raw => {}
            CodecPolicy::DeltaBp => candidates.push((CodecId::DeltaBp, delta_bp_encode(&words))),
            CodecPolicy::Rle => candidates.push((CodecId::Rle, rle_encode(&words))),
            CodecPolicy::Auto => {
                candidates.push((CodecId::DeltaBp, delta_bp_encode(&words)));
                candidates.push((CodecId::Rle, rle_encode(&words)));
            }
        }
        match candidates
            .into_iter()
            .min_by_key(|(_, body)| body.len())
            .filter(|(_, body)| body.len() < raw.len())
        {
            Some(best) => best,
            None => (CodecId::Raw, raw.to_vec()),
        }
    };
    let mut frame = Vec::with_capacity(SCC_HEADER + body.len());
    frame.extend_from_slice(&SCC_MAGIC);
    frame.push(codec as u8);
    frame.push(match ty {
        NumericType::Int => 0,
        NumericType::Real => 1,
    });
    frame.extend_from_slice(&[0u8; 2]);
    frame.extend_from_slice(&(raw.len() as u64).to_le_bytes());
    frame.extend_from_slice(&summary.min_bits.to_le_bytes());
    frame.extend_from_slice(&summary.max_bits.to_le_bytes());
    frame.extend_from_slice(&summary.nulls.to_le_bytes());
    frame.extend_from_slice(&body);
    (frame, summary)
}

struct Header {
    codec: CodecId,
    ty: NumericType,
    uncompressed: usize,
    summary: ChunkSummary,
}

fn parse_header(frame: &[u8]) -> Result<Header, CodecError> {
    if frame.len() < SCC_HEADER {
        return Err(if frame.get(..4) == Some(&SCC_MAGIC) {
            CodecError::BadHeader
        } else {
            CodecError::BadMagic
        });
    }
    if frame[..4] != SCC_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let codec = CodecId::from_byte(frame[4]).ok_or(CodecError::BadHeader)?;
    let ty = match frame[5] {
        0 => NumericType::Int,
        1 => NumericType::Real,
        _ => return Err(CodecError::BadHeader),
    };
    if frame[6..8] != [0u8; 2] {
        return Err(CodecError::BadHeader);
    }
    let uncompressed = u64::from_le_bytes(frame[8..16].try_into().expect("8 bytes"));
    if uncompressed > MAX_UNCOMPRESSED {
        return Err(CodecError::BadHeader);
    }
    let min_bits = u64::from_le_bytes(frame[16..24].try_into().expect("8 bytes"));
    let max_bits = u64::from_le_bytes(frame[24..32].try_into().expect("8 bytes"));
    let nulls = u64::from_le_bytes(frame[32..40].try_into().expect("8 bytes"));
    Ok(Header {
        codec,
        ty,
        uncompressed: uncompressed as usize,
        summary: ChunkSummary {
            count: uncompressed / 8,
            nulls,
            min_bits,
            max_bits,
        },
    })
}

/// Verify and decode an `SCC1` frame back to the raw little-endian
/// payload. Bit-exact for every codec.
pub fn decode_chunk(frame: &[u8]) -> Result<Vec<u8>, CodecError> {
    let header = parse_header(frame)?;
    let body = &frame[SCC_HEADER..];
    let raw = match header.codec {
        CodecId::Raw => {
            if body.len() != header.uncompressed {
                return Err(CodecError::LengthMismatch {
                    expected: header.uncompressed,
                    got: body.len(),
                });
            }
            body.to_vec()
        }
        CodecId::DeltaBp => {
            if !header.uncompressed.is_multiple_of(8) {
                return Err(CodecError::BadHeader);
            }
            delta_bp_decode(body, header.uncompressed / 8)?
        }
        CodecId::Rle => {
            if !header.uncompressed.is_multiple_of(8) {
                return Err(CodecError::BadHeader);
            }
            rle_decode(body, header.uncompressed / 8)?
        }
    };
    if raw.len() != header.uncompressed {
        return Err(CodecError::LengthMismatch {
            expected: header.uncompressed,
            got: raw.len(),
        });
    }
    Ok(raw)
}

/// The summary and element type an `SCC1` frame carries, if `frame`
/// starts with a well-formed header.
pub fn summary_of(frame: &[u8]) -> Option<(ChunkSummary, NumericType)> {
    parse_header(frame).ok().map(|h| (h.summary, h.ty))
}

/// The codec an `SCC1` frame was encoded with, if well-formed.
pub fn codec_of(frame: &[u8]) -> Option<CodecId> {
    parse_header(frame).ok().map(|h| h.codec)
}

/// The byte size a cached copy of `payload` should be charged at: the
/// *decoded* (uncompressed) size for `SCC1` frames, the payload length
/// for anything else. Deterministic and header-only, so cache insert
/// and eviction agree without storing extra state.
pub fn charged_size(payload: &[u8]) -> usize {
    match parse_header(payload) {
        Ok(h) => h.uncompressed.max(payload.len()),
        Err(_) => payload.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_i64(values: &[i64]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn raw_f64(values: &[f64]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn round_trip_every_policy() {
        let payloads = [
            raw_i64(&[]),
            raw_i64(&[42]),
            raw_i64(&(0..1000).collect::<Vec<i64>>()),
            raw_i64(&[7; 512]),
            raw_i64(&[i64::MIN, i64::MAX, 0, -1, 1]),
            raw_f64(&[-0.0, 0.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY]),
            raw_f64(&(0..257).map(|i| (i as f64).sin()).collect::<Vec<f64>>()),
        ];
        for raw in &payloads {
            for policy in [
                CodecPolicy::Raw,
                CodecPolicy::DeltaBp,
                CodecPolicy::Rle,
                CodecPolicy::Auto,
            ] {
                for ty in [NumericType::Int, NumericType::Real] {
                    let (frame, _) = encode_chunk(raw, ty, policy);
                    assert_eq!(
                        &decode_chunk(&frame).unwrap(),
                        raw,
                        "policy {} ty {ty:?}",
                        policy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn monotone_integers_compress_well() {
        let raw = raw_i64(&(0..8192).collect::<Vec<i64>>());
        let (frame, _) = encode_chunk(&raw, NumericType::Int, CodecPolicy::Auto);
        assert_eq!(codec_of(&frame), Some(CodecId::DeltaBp));
        assert!(
            frame.len() * 4 < raw.len(),
            "{} vs {} raw",
            frame.len(),
            raw.len()
        );
    }

    #[test]
    fn constant_runs_pick_rle() {
        let raw = raw_f64(&[1.5; 4096]);
        let (frame, _) = encode_chunk(&raw, NumericType::Real, CodecPolicy::Auto);
        assert_eq!(codec_of(&frame), Some(CodecId::Rle));
        assert!(frame.len() < 64);
    }

    #[test]
    fn incompressible_data_falls_back_to_raw() {
        // High-entropy words defeat both codecs; even a forced policy
        // must not grow the body past the raw payload.
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let words: Vec<i64> = (0..512)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as i64
            })
            .collect();
        let raw = raw_i64(&words);
        for policy in [CodecPolicy::Rle, CodecPolicy::Auto] {
            let (frame, _) = encode_chunk(&raw, NumericType::Int, policy);
            assert_eq!(codec_of(&frame), Some(CodecId::Raw), "{}", policy.name());
            assert_eq!(frame.len(), SCC_HEADER + raw.len());
        }
    }

    #[test]
    fn summary_bounds_are_exact() {
        let raw = raw_i64(&[5, -3, 17, 0]);
        let s = summarize(&raw, NumericType::Int);
        assert_eq!(s.min(NumericType::Int), Num::Int(-3));
        assert_eq!(s.max(NumericType::Int), Num::Int(17));
        assert_eq!((s.count, s.nulls), (4, 0));

        let raw = raw_f64(&[2.5, f64::NAN, -0.5]);
        let s = summarize(&raw, NumericType::Real);
        assert_eq!(s.min(NumericType::Real), Num::Real(-0.5));
        assert_eq!(s.max(NumericType::Real), Num::Real(2.5));
        assert_eq!((s.count, s.nulls), (3, 1));
    }

    #[test]
    fn all_nan_chunk_never_matches() {
        let raw = raw_f64(&[f64::NAN; 8]);
        let s = summarize(&raw, NumericType::Real);
        assert_eq!(s.nulls, 8);
        let pred = ValuePredicate::Range {
            lo: Num::Real(f64::NEG_INFINITY),
            hi: Num::Real(f64::INFINITY),
        };
        assert!(!s.may_match(NumericType::Real, &pred));
    }

    #[test]
    fn may_match_is_conservative_not_exact() {
        let s = summarize(&raw_i64(&[0, 100]), NumericType::Int);
        // 50 is inside [0, 100] though absent: must answer true.
        let inside = ValuePredicate::In(vec![Num::Int(50)]);
        assert!(s.may_match(NumericType::Int, &inside));
        let outside = ValuePredicate::In(vec![Num::Int(101), Num::Int(-1)]);
        assert!(!s.may_match(NumericType::Int, &outside));
        let range_out = ValuePredicate::Range {
            lo: Num::Int(101),
            hi: Num::Int(200),
        };
        assert!(!s.may_match(NumericType::Int, &range_out));
        // NaN bounds cannot prove exclusion: stay conservative.
        let nan_range = ValuePredicate::Range {
            lo: Num::Real(f64::NAN),
            hi: Num::Real(f64::NAN),
        };
        assert!(s.may_match(NumericType::Int, &nan_range));
    }

    #[test]
    fn predicate_matches_semantics() {
        let range = ValuePredicate::Range {
            lo: Num::Int(0),
            hi: Num::Int(10),
        };
        assert!(range.matches(Num::Int(0)));
        assert!(range.matches(Num::Int(10)));
        assert!(range.matches(Num::Real(9.5)));
        assert!(!range.matches(Num::Real(10.5)));
        assert!(!range.matches(Num::Real(f64::NAN)));
        let member = ValuePredicate::In(vec![Num::Int(3), Num::Real(7.5)]);
        assert!(member.matches(Num::Int(3)));
        assert!(member.matches(Num::Real(7.5)));
        assert!(!member.matches(Num::Int(8)));
        assert!(!member.matches(Num::Real(f64::NAN)));
    }

    #[test]
    fn corrupt_frames_are_typed_errors() {
        let raw = raw_i64(&(0..64).collect::<Vec<i64>>());
        let (frame, _) = encode_chunk(&raw, NumericType::Int, CodecPolicy::DeltaBp);
        assert!(matches!(
            decode_chunk(b"not a frame"),
            Err(CodecError::BadMagic)
        ));
        let mut bad = frame.clone();
        bad[4] = 9; // unknown codec id
        assert!(matches!(decode_chunk(&bad), Err(CodecError::BadHeader)));
        let mut bad = frame.clone();
        bad[6] = 1; // reserved bytes damaged
        assert!(matches!(decode_chunk(&bad), Err(CodecError::BadHeader)));
        let truncated = &frame[..frame.len() - 5];
        assert!(matches!(
            decode_chunk(truncated),
            Err(CodecError::BadBody(_)) | Err(CodecError::LengthMismatch { .. })
        ));
        // A huge claimed length must be rejected, not allocated.
        let mut bomb = frame.clone();
        bomb[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(decode_chunk(&bomb), Err(CodecError::BadHeader)));
    }

    #[test]
    fn charged_size_reports_decoded_bytes() {
        let raw = raw_i64(&[3; 1024]); // constant: tiny RLE body
        let (frame, _) = encode_chunk(&raw, NumericType::Int, CodecPolicy::Auto);
        assert!(frame.len() < raw.len() / 8);
        assert_eq!(charged_size(&frame), raw.len());
        // Non-frame payloads charge their stored size.
        assert_eq!(charged_size(b"plain bytes"), 11);
    }

    #[test]
    fn rle_run_longer_than_u32_is_split() {
        // Not feasible to allocate 4 GiB in a test; exercise the flush
        // logic directly through encode/decode of a modest run plus the
        // overflow guard in decode.
        let raw = raw_i64(&[9; 100]);
        let (frame, _) = encode_chunk(&raw, NumericType::Int, CodecPolicy::Rle);
        assert_eq!(decode_chunk(&frame).unwrap(), raw);
        // A run claiming more words than the chunk holds is rejected.
        let mut bad = frame.clone();
        let body = SCC_HEADER;
        bad[body..body + 4].copy_from_slice(&200u32.to_le_bytes());
        assert!(matches!(decode_chunk(&bad), Err(CodecError::BadBody(_))));
    }
}
