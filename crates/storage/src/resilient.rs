//! Retry/backoff wrapper around any [`ChunkStore`].
//!
//! [`ResilientChunkStore`] retries operations whose failure is
//! *transient* per [`StorageError::is_transient`] — injected faults,
//! timeouts, checksum mismatches, short reads — under a bounded
//! [`RetryPolicy`]: capped attempt count, exponential backoff with
//! deterministic jitter, and a per-operation deadline. Permanent errors
//! (missing chunk, unknown array, unsupported operation) are returned
//! immediately: retrying them cannot help and would only add latency.
//!
//! Every retry and every detected corruption is counted in
//! [`ResilienceStats`], which the APR folds into its per-query
//! statistics so degraded runs are *visible*, not silent.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use ssdm_obs as obs;

use crate::store::{
    Capabilities, ChunkStore, CompositeRows, IoStats, RawChunkAccess, SharedChunkRead, StorageError,
};

/// Process-wide resilience counters (all [`ResilientChunkStore`]
/// instances), mirrored into the obs registry so the Prometheus
/// endpoint sees retries without a query in flight.
fn obs_retries() -> &'static Arc<obs::Counter> {
    static C: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    C.get_or_init(|| obs::recorder().counter("ssdm_resilience_retries"))
}

fn obs_giveups() -> &'static Arc<obs::Counter> {
    static C: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    C.get_or_init(|| obs::recorder().counter("ssdm_resilience_giveups"))
}

fn obs_corruption_detected() -> &'static Arc<obs::Counter> {
    static C: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    C.get_or_init(|| obs::recorder().counter("ssdm_resilience_corruption_detected"))
}

fn obs_corruption_repaired() -> &'static Arc<obs::Counter> {
    static C: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    C.get_or_init(|| obs::recorder().counter("ssdm_resilience_corruption_repaired"))
}

/// Bounded-retry configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per operation (first try included). Minimum 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_backoff: Duration,
    /// Cap on a single backoff pause.
    pub max_backoff: Duration,
    /// Total wall-clock budget for one operation, attempts + pauses.
    /// `None` = unbounded (the attempt cap still applies).
    pub deadline: Option<Duration>,
    /// Seed for the deterministic jitter applied to each pause, so two
    /// runs with the same seed back off identically.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
            deadline: Some(Duration::from_secs(2)),
            jitter_seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — useful to make the wrapper a
    /// pass-through while keeping its corruption accounting.
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// A fast-test policy: generous attempts, negligible pauses.
    pub fn aggressive() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_micros(1),
            max_backoff: Duration::from_micros(64),
            deadline: Some(Duration::from_secs(5)),
            jitter_seed: 0x5EED,
        }
    }

    /// Backoff before attempt `attempt + 1` (0-based failed attempt),
    /// with deterministic jitter in `[50%, 100%]` of the exponential
    /// value, derived from the seed and the attempt number only.
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.max_backoff);
        if exp.is_zero() {
            return exp;
        }
        // SplitMix64 step over (seed, attempt): deterministic jitter.
        let mut z = self
            .jitter_seed
            .wrapping_add(attempt as u64)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let frac = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        exp.mul_f64(frac)
    }
}

/// Counters kept by the resilience layer. All monotonically increasing
/// until [`ChunkStore::reset_resilience_stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Extra attempts beyond the first (i.e. actual retries).
    pub retries: u64,
    /// Transient failures observed (each may or may not have been
    /// retried, depending on remaining budget).
    pub transient_failures: u64,
    /// Permanent failures passed through without retry.
    pub permanent_failures: u64,
    /// Checksum/frame violations detected ([`StorageError::Corrupt`]).
    pub corruption_detected: u64,
    /// Operations that saw a checksum violation and then succeeded on a
    /// retry — in-transit corruption healed by a re-read.
    pub corruption_repaired: u64,
    /// Short reads detected ([`StorageError::ShortRead`]).
    pub short_reads: u64,
    /// Operations abandoned with [`StorageError::DeadlineExceeded`]
    /// after the attempt or time budget ran out.
    pub giveups: u64,
}

impl ResilienceStats {
    /// Element-wise sum, for aggregating across layers.
    pub fn merge(&self, other: &ResilienceStats) -> ResilienceStats {
        ResilienceStats {
            retries: self.retries + other.retries,
            transient_failures: self.transient_failures + other.transient_failures,
            permanent_failures: self.permanent_failures + other.permanent_failures,
            corruption_detected: self.corruption_detected + other.corruption_detected,
            corruption_repaired: self.corruption_repaired + other.corruption_repaired,
            short_reads: self.short_reads + other.short_reads,
            giveups: self.giveups + other.giveups,
        }
    }

    /// Element-wise difference (`self - earlier`), for computing the
    /// delta attributable to one query.
    pub fn since(&self, earlier: &ResilienceStats) -> ResilienceStats {
        ResilienceStats {
            retries: self.retries.saturating_sub(earlier.retries),
            transient_failures: self
                .transient_failures
                .saturating_sub(earlier.transient_failures),
            permanent_failures: self
                .permanent_failures
                .saturating_sub(earlier.permanent_failures),
            corruption_detected: self
                .corruption_detected
                .saturating_sub(earlier.corruption_detected),
            corruption_repaired: self
                .corruption_repaired
                .saturating_sub(earlier.corruption_repaired),
            short_reads: self.short_reads.saturating_sub(earlier.short_reads),
            giveups: self.giveups.saturating_sub(earlier.giveups),
        }
    }
}

/// A [`ChunkStore`] decorator that retries transient failures of the
/// store it wraps.
pub struct ResilientChunkStore<S: ChunkStore> {
    inner: S,
    policy: RetryPolicy,
    // Behind a mutex so the shared-read retry path ([`SharedChunkRead`])
    // can count from many worker threads at once.
    stats: Mutex<ResilienceStats>,
}

impl<S: ChunkStore> ResilientChunkStore<S> {
    pub fn new(inner: S, policy: RetryPolicy) -> Self {
        ResilientChunkStore {
            inner,
            policy,
            stats: Mutex::new(ResilienceStats::default()),
        }
    }

    pub fn with_defaults(inner: S) -> Self {
        Self::new(inner, RetryPolicy::default())
    }

    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    pub fn inner(&self) -> &S {
        &self.inner
    }

    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The retry loop over the exclusive (`&mut`) inner store.
    fn run<T>(
        &mut self,
        name: &'static str,
        mut op: impl FnMut(&mut S) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        // Split the borrow: `op` owns `&mut self.inner`, the loop only
        // touches `policy` (Copy) and the stats mutex.
        let inner = &mut self.inner;
        retry_loop(
            self.policy,
            &self.stats,
            name,
            || op(inner),
            relstore::busy_wait,
        )
    }
}

/// The retry loop. Runs `op` until it succeeds, fails permanently, or
/// exhausts the attempt/deadline budget (then
/// [`StorageError::DeadlineExceeded`]).
///
/// `pause` is how a backoff is spent: the exclusive (`&mut`) paths
/// busy-wait (sub-millisecond precision), the shared-read paths park so
/// a backing-off worker thread yields the CPU to its siblings.
fn retry_loop<T>(
    policy: RetryPolicy,
    stats: &Mutex<ResilienceStats>,
    name: &'static str,
    mut op: impl FnMut() -> Result<T, StorageError>,
    pause: fn(Duration),
) -> Result<T, StorageError> {
    let start = Instant::now();
    let mut attempt = 0u32;
    let mut saw_corruption = false;
    loop {
        match op() {
            Ok(v) => {
                if saw_corruption {
                    stats.lock().expect("stats mutex").corruption_repaired += 1;
                    if obs::recorder().enabled() {
                        obs_corruption_repaired().add(1);
                    }
                }
                return Ok(v);
            }
            Err(e) => {
                saw_corruption |= matches!(e, StorageError::Corrupt { .. });
                {
                    let mut st = stats.lock().expect("stats mutex");
                    match &e {
                        StorageError::Corrupt { .. } => {
                            st.corruption_detected += 1;
                            if obs::recorder().enabled() {
                                obs_corruption_detected().add(1);
                            }
                        }
                        StorageError::ShortRead { .. } => st.short_reads += 1,
                        _ => {}
                    }
                    if e.is_transient() {
                        st.transient_failures += 1;
                    } else {
                        st.permanent_failures += 1;
                    }
                }
                if !e.is_transient() {
                    return Err(e);
                }
                attempt += 1;
                let out_of_attempts = attempt >= policy.max_attempts.max(1);
                let backoff = policy.backoff(attempt - 1);
                let out_of_time = policy
                    .deadline
                    .is_some_and(|d| start.elapsed() + backoff >= d);
                if out_of_attempts || out_of_time {
                    stats.lock().expect("stats mutex").giveups += 1;
                    if obs::recorder().enabled() {
                        obs_giveups().add(1);
                    }
                    return Err(StorageError::DeadlineExceeded {
                        op: name,
                        attempts: attempt,
                        last_error: e.to_string(),
                    });
                }
                stats.lock().expect("stats mutex").retries += 1;
                if obs::recorder().enabled() {
                    obs_retries().add(1);
                }
                pause(backoff);
            }
        }
    }
}

impl<S: ChunkStore + SharedChunkRead> SharedChunkRead for ResilientChunkStore<S> {
    fn read_chunk(&self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        retry_loop(
            self.policy,
            &self.stats,
            "get_chunk",
            || self.inner.read_chunk(array_id, chunk_id),
            relstore::park_wait,
        )
    }

    fn read_chunks_in(
        &self,
        array_id: u64,
        chunk_ids: &[u64],
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        retry_loop(
            self.policy,
            &self.stats,
            "get_chunks_in",
            || self.inner.read_chunks_in(array_id, chunk_ids),
            relstore::park_wait,
        )
    }

    fn read_chunk_range(
        &self,
        array_id: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        retry_loop(
            self.policy,
            &self.stats,
            "get_chunk_range",
            || self.inner.read_chunk_range(array_id, lo, hi),
            relstore::park_wait,
        )
    }
}

impl<S: ChunkStore> ChunkStore for ResilientChunkStore<S> {
    fn begin_array(&mut self, array_id: u64, chunk_bytes: usize) -> Result<(), StorageError> {
        self.run("begin_array", |s| s.begin_array(array_id, chunk_bytes))
    }

    fn put_chunk(&mut self, array_id: u64, chunk_id: u64, data: &[u8]) -> Result<(), StorageError> {
        self.run("put_chunk", |s| s.put_chunk(array_id, chunk_id, data))
    }

    fn get_chunk(&mut self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        self.run("get_chunk", |s| s.get_chunk(array_id, chunk_id))
    }

    fn get_chunks_in(
        &mut self,
        array_id: u64,
        chunk_ids: &[u64],
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        self.run("get_chunks_in", |s| s.get_chunks_in(array_id, chunk_ids))
    }

    fn get_chunk_range(
        &mut self,
        array_id: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        self.run("get_chunk_range", |s| s.get_chunk_range(array_id, lo, hi))
    }

    fn get_composite_range(
        &mut self,
        lo: (u64, u64),
        hi: (u64, u64),
    ) -> Result<CompositeRows, StorageError> {
        self.run("get_composite_range", |s| s.get_composite_range(lo, hi))
    }

    fn get_composite_in(&mut self, keys: &[(u64, u64)]) -> Result<CompositeRows, StorageError> {
        self.run("get_composite_in", |s| s.get_composite_in(keys))
    }

    fn delete_array(&mut self, array_id: u64, chunk_count: u64) -> Result<(), StorageError> {
        self.run("delete_array", |s| s.delete_array(array_id, chunk_count))
    }

    fn capabilities(&self) -> Capabilities {
        self.inner.capabilities()
    }

    fn io_stats(&self) -> IoStats {
        self.inner.io_stats()
    }

    fn reset_io_stats(&mut self) {
        self.inner.reset_io_stats()
    }

    fn resilience_stats(&self) -> ResilienceStats {
        // Merge with any nested layer's counters (e.g. a second wrapper
        // below the fault injector in exotic stacks).
        self.stats
            .lock()
            .expect("stats mutex")
            .merge(&self.inner.resilience_stats())
    }

    fn reset_resilience_stats(&mut self) {
        *self.stats.get_mut().expect("stats mutex") = ResilienceStats::default();
        self.inner.reset_resilience_stats();
    }

    fn shard_stats(&self) -> Option<crate::shard::ShardStats> {
        self.inner.shard_stats()
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        // Not retried: an fsync failure leaves durability unknown, so
        // surfacing it beats masking it with a retry that may succeed
        // without the lost writes.
        self.inner.sync()
    }
}

impl<S: ChunkStore + RawChunkAccess> RawChunkAccess for ResilientChunkStore<S> {
    fn flip_stored_bit(
        &mut self,
        array_id: u64,
        chunk_id: u64,
        bit: u64,
    ) -> Result<bool, StorageError> {
        // Deliberately NOT retried: this is a test/diagnostic hook.
        self.inner.flip_stored_bit(array_id, chunk_id, bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryChunkStore;

    /// A store that fails the first `fail_first` read attempts with a
    /// transient error, then delegates.
    struct Flaky {
        inner: MemoryChunkStore,
        fail_first: u32,
        calls: u32,
    }

    impl ChunkStore for Flaky {
        fn put_chunk(
            &mut self,
            array_id: u64,
            chunk_id: u64,
            data: &[u8],
        ) -> Result<(), StorageError> {
            self.inner.put_chunk(array_id, chunk_id, data)
        }

        fn get_chunk(&mut self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
            self.calls += 1;
            if self.calls <= self.fail_first {
                return Err(StorageError::Transient("simulated hiccup".into()));
            }
            self.inner.get_chunk(array_id, chunk_id)
        }

        fn delete_array(&mut self, array_id: u64, chunk_count: u64) -> Result<(), StorageError> {
            self.inner.delete_array(array_id, chunk_count)
        }

        fn capabilities(&self) -> Capabilities {
            self.inner.capabilities()
        }

        fn io_stats(&self) -> IoStats {
            self.inner.io_stats()
        }

        fn reset_io_stats(&mut self) {
            self.inner.reset_io_stats()
        }
    }

    fn flaky(fail_first: u32) -> Flaky {
        let mut inner = MemoryChunkStore::new();
        inner.put_chunk(1, 0, b"payload!").unwrap();
        Flaky {
            inner,
            fail_first,
            calls: 0,
        }
    }

    #[test]
    fn retries_transient_until_success() {
        let mut s = ResilientChunkStore::new(flaky(2), RetryPolicy::aggressive());
        assert_eq!(s.get_chunk(1, 0).unwrap(), b"payload!");
        let st = s.resilience_stats();
        assert_eq!(st.retries, 2);
        assert_eq!(st.transient_failures, 2);
        assert_eq!(st.giveups, 0);
    }

    #[test]
    fn gives_up_after_attempt_budget() {
        let mut s = ResilientChunkStore::new(
            flaky(100),
            RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::aggressive()
            },
        );
        let err = s.get_chunk(1, 0).unwrap_err();
        match err {
            StorageError::DeadlineExceeded { op, attempts, .. } => {
                assert_eq!(op, "get_chunk");
                assert_eq!(attempts, 3);
            }
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        let st = s.resilience_stats();
        assert_eq!(st.retries, 2, "two pauses for three attempts");
        assert_eq!(st.giveups, 1);
        assert!(!err.is_transient(), "giveup is terminal");
    }

    #[test]
    fn permanent_errors_pass_through_without_retry() {
        let mut s = ResilientChunkStore::new(flaky(0), RetryPolicy::aggressive());
        assert!(matches!(
            s.get_chunk(1, 77),
            Err(StorageError::MissingChunk { .. })
        ));
        let st = s.resilience_stats();
        assert_eq!(st.retries, 0);
        assert_eq!(st.permanent_failures, 1);
    }

    #[test]
    fn corruption_is_detected_and_counted() {
        let mut inner = MemoryChunkStore::new();
        inner.put_chunk(1, 0, b"dddddddd").unwrap();
        let mut s = ResilientChunkStore::new(inner, RetryPolicy::no_retries());
        s.inner_mut().flip_stored_bit(1, 0, 170).unwrap();
        let err = s.get_chunk(1, 0).unwrap_err();
        assert!(matches!(err, StorageError::DeadlineExceeded { .. }));
        assert_eq!(s.resilience_stats().corruption_detected, 1);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        let a: Vec<Duration> = (0..6).map(|i| p.backoff(i)).collect();
        let b: Vec<Duration> = (0..6).map(|i| p.backoff(i)).collect();
        assert_eq!(a, b, "same seed, same pauses");
        for (i, d) in a.iter().enumerate() {
            assert!(*d <= p.max_backoff, "pause {i} over cap: {d:?}");
        }
        // Exponential-ish growth before the cap bites.
        assert!(a[1] > a[0] / 2, "jitter keeps at least half the base");
        let q = RetryPolicy {
            jitter_seed: 7,
            ..p
        };
        assert_ne!(
            (0..6).map(|i| q.backoff(i)).collect::<Vec<_>>(),
            a,
            "different seed, different jitter"
        );
    }

    #[test]
    fn stats_since_and_merge() {
        let a = ResilienceStats {
            retries: 5,
            transient_failures: 6,
            permanent_failures: 1,
            corruption_detected: 2,
            corruption_repaired: 1,
            short_reads: 1,
            giveups: 1,
        };
        let b = ResilienceStats {
            retries: 2,
            transient_failures: 3,
            ..Default::default()
        };
        assert_eq!(a.since(&b).retries, 3);
        assert_eq!(a.merge(&b).transient_failures, 9);
    }
}
