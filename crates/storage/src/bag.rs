//! Resolving bags of array proxies (thesis §6.2.4).
//!
//! A query that touches an array per solution — every task's trajectory,
//! say — produces a *bag* of proxies. Resolving them one at a time pays
//! one round of statements per proxy; resolving the **bag** collects all
//! needed `(array, chunk)` keys first, linearizes them in clustered
//! table order, lets the SPD discover regularity *across* proxies, and
//! issues a few composite-range / IN statements for the whole bag. This
//! is where the thesis' "discover that regularity at query runtime"
//! pays off most: chunk ids of consecutive arrays are adjacent rows in
//! the clustered table, so per-array point probes become one scan.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use ssdm_array::{AggregateOp, ArrayData, LinearRuns, Num, NumArray, NumericType};

use crate::apr::{ArrayStore, RetrievalStrategy};
use crate::chunks::Chunking;
use crate::meta::ArrayProxy;
use crate::spd::{self, FetchOp};
use crate::store::{ChunkStore, StorageError};
use crate::Result;

impl<S: ChunkStore> ArrayStore<S> {
    /// Resolve every proxy in the bag, sharing back-end statements
    /// across them. Returns the resident arrays in input order.
    pub fn resolve_bag(
        &mut self,
        proxies: &[ArrayProxy],
        strategy: RetrievalStrategy,
    ) -> Result<Vec<NumArray>> {
        let chunks = self.fetch_bag(proxies, strategy)?;
        proxies
            .iter()
            .map(|p| assemble(p, &chunks))
            .collect::<Result<Vec<_>>>()
    }

    /// Aggregate every proxy in the bag (AAPR over a bag): one shared
    /// fetch, one scalar per proxy.
    pub fn resolve_aggregate_bag(
        &mut self,
        proxies: &[ArrayProxy],
        op: AggregateOp,
        strategy: RetrievalStrategy,
    ) -> Result<Vec<Num>> {
        let chunks = self.fetch_bag(proxies, strategy)?;
        proxies
            .iter()
            .map(|p| {
                let a = assemble(p, &chunks)?;
                a.aggregate(op).map_err(StorageError::Array)
            })
            .collect()
    }

    /// Fetch the union of chunks the bag needs.
    fn fetch_bag(
        &mut self,
        proxies: &[ArrayProxy],
        strategy: RetrievalStrategy,
    ) -> Result<HashMap<(u64, u64), Vec<u8>>> {
        // 1. The needed composite keys, in clustered order.
        let mut needed: BTreeSet<(u64, u64)> = BTreeSet::new();
        for p in proxies {
            let chunking = p.meta().chunking;
            for run in LinearRuns::of_view(p.view()).runs() {
                for c in chunking.chunks_for_run(run) {
                    needed.insert((p.array_id(), c));
                }
            }
        }
        if needed.is_empty() {
            return Ok(HashMap::new());
        }
        // 2. Linearize composite keys into global clustered positions
        //    using the catalog's chunk counts (arrays sorted by id are
        //    physically consecutive in the clustered table).
        let mut offsets: BTreeMap<u64, u64> = BTreeMap::new();
        {
            let mut metas: Vec<(u64, u64)> = self
                .catalog()
                .map(|m| (m.array_id, m.chunking.chunk_count()))
                .collect();
            metas.sort_unstable();
            let mut acc = 0u64;
            for (id, count) in metas {
                offsets.insert(id, acc);
                acc += count;
            }
        }
        let linearize = |(a, c): (u64, u64)| -> Option<u64> { offsets.get(&a).map(|off| off + c) };
        let mut by_linear: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        let mut unlinearizable: Vec<(u64, u64)> = Vec::new();
        for &key in &needed {
            match linearize(key) {
                Some(l) => {
                    by_linear.insert(l, key);
                }
                None => unlinearizable.push(key),
            }
        }

        // 3. Plan and execute.
        let supports_cross = self.backend().capabilities().supports_cross_range;
        let mut out: HashMap<(u64, u64), Vec<u8>> = HashMap::new();
        match strategy {
            RetrievalStrategy::Single => {
                for &(a, c) in &needed {
                    out.insert((a, c), self.backend_mut().get_chunk(a, c)?);
                }
            }
            RetrievalStrategy::BufferedIn { buffer_size } => {
                // Per-array IN batches (the §6.2.4 buffered strategy).
                let mut per_array: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
                for &(a, c) in &needed {
                    per_array.entry(a).or_default().push(c);
                }
                for (a, cs) in per_array {
                    for batch in cs.chunks(buffer_size.max(1)) {
                        for (c, payload) in self.backend_mut().get_chunks_in(a, batch)? {
                            out.insert((a, c), payload);
                        }
                    }
                }
            }
            RetrievalStrategy::SpdRange { options } => {
                let linear_ids: Vec<u64> = by_linear.keys().copied().collect();
                let plan = spd::plan(&linear_ids, options);
                for op in plan {
                    match op {
                        FetchOp::Range { lo, hi } if supports_cross => {
                            let lo_key = delinearize(lo, &offsets);
                            let hi_key = delinearize(hi, &offsets);
                            for (k, payload) in
                                self.backend_mut().get_composite_range(lo_key, hi_key)?
                            {
                                out.insert(k, payload);
                            }
                        }
                        FetchOp::Range { lo, hi } => {
                            // No cross-array scans: split per array.
                            let mut per_array: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
                            for l in lo..=hi {
                                let (a, c) = delinearize(l, &offsets);
                                per_array
                                    .entry(a)
                                    .and_modify(|(plo, phi)| {
                                        *plo = (*plo).min(c);
                                        *phi = (*phi).max(c);
                                    })
                                    .or_insert((c, c));
                            }
                            for (a, (clo, chi)) in per_array {
                                for (c, payload) in
                                    self.backend_mut().get_chunk_range(a, clo, chi)?
                                {
                                    out.insert((a, c), payload);
                                }
                            }
                        }
                        FetchOp::In(ids) if supports_cross => {
                            // Row-value IN over composite keys: one
                            // statement per batch regardless of how many
                            // arrays it spans.
                            let keys: Vec<(u64, u64)> =
                                ids.iter().map(|&l| delinearize(l, &offsets)).collect();
                            for (k, payload) in self.backend_mut().get_composite_in(&keys)? {
                                out.insert(k, payload);
                            }
                        }
                        FetchOp::In(ids) => {
                            let mut per_array: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
                            for l in ids {
                                let (a, c) = delinearize(l, &offsets);
                                per_array.entry(a).or_default().push(c);
                            }
                            for (a, cs) in per_array {
                                for (c, payload) in self.backend_mut().get_chunks_in(a, &cs)? {
                                    out.insert((a, c), payload);
                                }
                            }
                        }
                    }
                }
                for (a, c) in unlinearizable {
                    out.insert((a, c), self.backend_mut().get_chunk(a, c)?);
                }
            }
            RetrievalStrategy::WholeArray => {
                let arrays: BTreeSet<u64> = needed.iter().map(|&(a, _)| a).collect();
                for a in arrays {
                    let meta = self.proxy(a)?.meta().clone();
                    let count = meta.chunking.chunk_count();
                    if count == 0 {
                        continue;
                    }
                    for (c, payload) in self.backend_mut().get_chunk_range(a, 0, count - 1)? {
                        out.insert((a, c), payload);
                    }
                }
            }
        }
        // 4. Decode the SCC1 frames of encoded arrays in place — once
        //    per fetched chunk, shared by every proxy that reads it.
        //    Chunks overfetched from arrays outside the bag stay as
        //    stored (`assemble` never reads them).
        let encoded: HashMap<u64, bool> = proxies
            .iter()
            .map(|p| (p.array_id(), p.meta().encoded))
            .collect();
        for (&(a, c), payload) in out.iter_mut() {
            if encoded.get(&a).copied().unwrap_or(false) {
                let frame = std::mem::take(payload);
                let (raw, _) = crate::apr::decode_payload(true, frame, a, c)?;
                *payload = raw;
            }
        }
        Ok(out)
    }
}

fn delinearize(linear: u64, offsets: &BTreeMap<u64, u64>) -> (u64, u64) {
    // The greatest offset <= linear identifies the array.
    let (&array_id, &off) = offsets
        .iter()
        .rfind(|(_, &o)| o <= linear)
        .expect("offsets start at 0");
    (array_id, linear - off)
}

/// Build one proxy's resident array from the fetched chunk map.
fn assemble(proxy: &ArrayProxy, chunks: &HashMap<(u64, u64), Vec<u8>>) -> Result<NumArray> {
    let meta = proxy.meta();
    let chunking: Chunking = meta.chunking;
    let addresses = proxy.view().addresses();
    let mut nums = Vec::with_capacity(addresses.len());
    for a in addresses {
        let cid = chunking.chunk_of(a);
        let payload = chunks
            .get(&(meta.array_id, cid))
            .ok_or(StorageError::MissingChunk {
                array_id: meta.array_id,
                chunk_id: cid,
            })?;
        let (start, _) = chunking.chunk_span(cid);
        let off = a - start;
        let bytes = payload
            .get(off * 8..off * 8 + 8)
            .ok_or(StorageError::MissingChunk {
                array_id: meta.array_id,
                chunk_id: cid,
            })?;
        nums.push(match meta.numeric_type {
            NumericType::Int => Num::Int(i64::from_le_bytes(bytes.try_into().expect("8 bytes"))),
            NumericType::Real => Num::Real(f64::from_le_bytes(bytes.try_into().expect("8 bytes"))),
        });
    }
    let data = match meta.numeric_type {
        NumericType::Int => ArrayData::from_i64(nums.iter().map(|n| n.as_i64()).collect()),
        NumericType::Real => ArrayData::from_f64(nums.iter().map(|n| n.as_f64()).collect()),
    };
    NumArray::from_data(data, &proxy.shape()).map_err(StorageError::Array)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spd::SpdOptions;
    use crate::store::{MemoryChunkStore, RelChunkStore};

    /// 50 small arrays of 8 elements, 2 chunks each (32-byte chunks).
    fn store_with_fleet<S: ChunkStore>(backend: S) -> (ArrayStore<S>, Vec<ArrayProxy>) {
        let mut store = ArrayStore::new(backend);
        let mut proxies = Vec::new();
        for k in 0..50i64 {
            let a = NumArray::from_i64((0..8).map(|i| k * 100 + i).collect());
            proxies.push(store.store_array(&a, 32).unwrap());
        }
        (store, proxies)
    }

    #[test]
    fn bag_matches_individual_resolution() {
        let (mut store, proxies) = store_with_fleet(RelChunkStore::open_memory().unwrap());
        // A slice of each array: elements 3..=6.
        let views: Vec<ArrayProxy> = proxies
            .iter()
            .map(|p| p.slice(0, 2, 1, 5).unwrap())
            .collect();
        for strategy in [
            RetrievalStrategy::Single,
            RetrievalStrategy::BufferedIn { buffer_size: 8 },
            RetrievalStrategy::SpdRange {
                options: SpdOptions::default(),
            },
            RetrievalStrategy::WholeArray,
        ] {
            let bag = store.resolve_bag(&views, strategy).unwrap();
            for (v, got) in views.iter().zip(&bag) {
                let individually = store.resolve(v, strategy).unwrap();
                assert!(got.array_eq(&individually), "{}", strategy.name());
            }
        }
    }

    #[test]
    fn bag_spd_uses_one_cross_array_statement() {
        let (mut store, proxies) = store_with_fleet(RelChunkStore::open_memory().unwrap());
        // The whole fleet: every chunk of every array — one dense
        // composite range.
        store.backend_mut().reset_io_stats();
        let bag = store
            .resolve_bag(
                &proxies,
                RetrievalStrategy::SpdRange {
                    options: SpdOptions::default(),
                },
            )
            .unwrap();
        assert_eq!(bag.len(), 50);
        let stats = store.backend().io_stats();
        assert_eq!(stats.statements, 1, "one clustered scan for the bag");
        assert_eq!(stats.chunks_returned, 100);
        // Versus per-proxy resolution: at least one statement each.
        store.backend_mut().reset_io_stats();
        for p in &proxies {
            store
                .resolve(
                    p,
                    RetrievalStrategy::SpdRange {
                        options: SpdOptions::default(),
                    },
                )
                .unwrap();
        }
        assert!(store.backend().io_stats().statements >= 50);
    }

    #[test]
    fn bag_first_chunk_of_each_array_is_strided_pattern() {
        let (mut store, proxies) = store_with_fleet(RelChunkStore::open_memory().unwrap());
        // Elements 1..=4 live in chunk 0 of each array: the composite
        // keys are (a, 0) for all a — stride 2 in linearized space.
        let heads: Vec<ArrayProxy> = proxies
            .iter()
            .map(|p| p.slice(0, 0, 1, 3).unwrap())
            .collect();
        store.backend_mut().reset_io_stats();
        let bag = store
            .resolve_bag(
                &heads,
                RetrievalStrategy::SpdRange {
                    options: SpdOptions::default(),
                },
            )
            .unwrap();
        assert_eq!(bag.len(), 50);
        let stats = store.backend().io_stats();
        // Density 0.5 with the default threshold: one covering range.
        assert_eq!(stats.statements, 1);
        assert_eq!(stats.chunks_returned, 99, "covering scan overfetches");
        for (k, a) in bag.iter().enumerate() {
            assert_eq!(a.elements()[0], Num::Int(k as i64 * 100));
        }
    }

    #[test]
    fn bag_on_memory_backend() {
        let (mut store, proxies) = store_with_fleet(MemoryChunkStore::new());
        let sums = store
            .resolve_aggregate_bag(
                &proxies,
                AggregateOp::Sum,
                RetrievalStrategy::SpdRange {
                    options: SpdOptions::default(),
                },
            )
            .unwrap();
        assert_eq!(sums.len(), 50);
        assert_eq!(sums[0], Num::Int(28)); // 0+..+7
        assert_eq!(sums[1], Num::Int(828)); // 100..107
    }

    #[test]
    fn bag_without_cross_range_support_falls_back() {
        let dir = std::env::temp_dir().join(format!("ssdm-bag-{}", std::process::id()));
        let backend = crate::store::FileChunkStore::new(&dir).unwrap();
        let (mut store, proxies) = store_with_fleet(backend);
        let bag = store
            .resolve_bag(
                &proxies,
                RetrievalStrategy::SpdRange {
                    options: SpdOptions::default(),
                },
            )
            .unwrap();
        assert_eq!(bag.len(), 50);
        assert_eq!(bag[7].elements()[2], Num::Int(702));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_bag() {
        let (mut store, _) = store_with_fleet(MemoryChunkStore::new());
        let bag = store.resolve_bag(&[], RetrievalStrategy::Single).unwrap();
        assert!(bag.is_empty());
    }
}
