//! The sharded, replicated chunk store.
//!
//! [`ShardedChunkStore`] partitions chunks across N backend shards by
//! **rendezvous hashing** on `(array_id, chunk_id)` — each key scores
//! every shard and lands on the highest scorer, so adding a shard only
//! moves the keys that now score higher there (no modulo reshuffle).
//! Each shard is a primary [`SharedChunkStore`] plus K WAL-shipping
//! read [`Replica`]s: every write is applied to the primary *and*
//! appended to a per-shard SWL1 log, which followers copy and replay to
//! catch up by LSN before serving reads (see [`crate::replica`]).
//!
//! Robustness machinery:
//! * per-replica consecutive-failure circuit [`Breaker`] with half-open
//!   probes, so dead replicas shed traffic instead of eating timeouts;
//! * read routing that rotates across caught-up replicas and fails over
//!   to a sibling or the primary with **at most one retry hop** after a
//!   failure — a second replica failure surfaces the error;
//! * graceful degradation only where the read contract allows it: range
//!   reads already skip missing chunks, so a dark shard contributes an
//!   empty range (counted in `degraded_reads`); point and IN-list reads
//!   raise a typed [`StorageError::ShardUnavailable`] carrying exactly
//!   which shards failed;
//! * scatter-gather batched reads through
//!   [`crate::parallel::scatter_gather`] — "N workers over N shards" —
//!   with input-order reassembly, so results are **bit-identical** to
//!   an unsharded store.
//!
//! [`Breaker`]: crate::replica::Breaker

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ssdm_obs as obs;

use crate::parallel::scatter_gather;
use crate::replica::{Replica, ReplicaHealth};
use crate::store::{
    Capabilities, ChunkStore, CompositeRows, IoStats, SharedChunkRead, SharedChunkStore,
    StorageError,
};
use crate::wal::{FsyncPolicy, WalOptions, WalRecord, WalWriter};

/// Process-wide count of read attempts that failed over away from a
/// replica (all sharded stores).
fn obs_shard_failovers() -> &'static Arc<obs::Counter> {
    static C: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    C.get_or_init(|| obs::recorder().counter("ssdm_shard_failovers"))
}

/// Process-wide count of circuit-breaker trips (all sharded stores).
fn obs_shard_breaker_opens() -> &'static Arc<obs::Counter> {
    static C: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    C.get_or_init(|| obs::recorder().counter("ssdm_shard_breaker_opens"))
}

/// SplitMix64 finalizer: the mixing function under both the placement
/// hash and the rendezvous scores.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Rendezvous placement: which of `shard_count` shards owns
/// `(array_id, chunk_id)`. Ties (astronomically unlikely) break toward
/// the lower shard index.
pub fn place(array_id: u64, chunk_id: u64, shard_count: usize) -> usize {
    debug_assert!(shard_count > 0);
    if shard_count <= 1 {
        return 0;
    }
    let key = mix(array_id ^ mix(chunk_id));
    let mut best = 0usize;
    let mut best_score = mix(key ^ 1);
    for s in 1..shard_count {
        let score = mix(key ^ (s as u64 + 1));
        if score > best_score {
            best = s;
            best_score = score;
        }
    }
    best
}

/// Tuning for [`ShardedChunkStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOptions {
    /// WAL-shipping read replicas per shard. `0` routes every read to
    /// the primaries.
    pub replicas: usize,
    /// Maximum LSNs a replica may trail the primary and still serve a
    /// read. `0` demands full catch-up.
    pub lag_bound: u64,
    /// Consecutive failures before a replica's breaker opens.
    pub breaker_threshold: u32,
    /// Rejected admissions while open before a half-open probe.
    pub breaker_cooldown: u32,
    /// Worker threads for scatter-gather batched reads across shards.
    pub read_workers: usize,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            replicas: 0,
            lag_bound: 0,
            breaker_threshold: 3,
            breaker_cooldown: 2,
            read_workers: 4,
        }
    }
}

/// Point-in-time health of one shard, inside [`ShardStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// Reads served by the primary.
    pub primary_reads: u64,
    /// Reads served by any replica of this shard.
    pub replica_reads: u64,
    /// Read attempts that failed over away from a replica.
    pub failovers: u64,
    /// Next LSN the shard's WAL will assign (replica catch-up target).
    pub wal_lsn: u64,
    pub primary_alive: bool,
    pub replicas: Vec<ReplicaHealth>,
}

/// Aggregated placement/failover/replication counters, surfaced through
/// `ChunkStore::shard_stats` into `stats_report`/`STATS`/Prometheus.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    pub shards: Vec<ShardHealth>,
    /// Total failovers across shards.
    pub failovers: u64,
    /// Total circuit-breaker trips across replicas.
    pub breaker_opens: u64,
    /// Range reads that served partial results because a shard was
    /// unavailable (the only degradation the read contract permits).
    pub degraded_reads: u64,
}

struct Shard {
    primary: Box<dyn SharedChunkStore>,
    /// Kill switch for failure drills: a dead primary turns reads that
    /// reach it into [`StorageError::ShardUnavailable`].
    primary_alive: AtomicBool,
    wal: Mutex<WalWriter>,
    wal_dir: PathBuf,
    /// Lock-free mirror of the WAL's next LSN, read by the routing path
    /// without taking the writer lock.
    next_lsn: AtomicU64,
    replicas: Vec<Replica>,
    /// Round-robin cursor over replicas.
    rotation: AtomicU64,
    primary_reads: AtomicU64,
    replica_reads: AtomicU64,
    failovers: AtomicU64,
}

/// See the module docs.
pub struct ShardedChunkStore {
    shards: Vec<Shard>,
    opts: ShardOptions,
    /// Statement-level accounting: one logical statement per public
    /// call, mirroring how the paper counts back-end round trips at the
    /// query-processor boundary (fan-out is an implementation detail).
    stats: Mutex<IoStats>,
    degraded_reads: AtomicU64,
    root: PathBuf,
    /// Whether `root` is a private temp directory removed on drop.
    ephemeral: bool,
}

fn ephemeral_root() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ssdm-shards-{}-{n}", std::process::id()))
}

impl ShardedChunkStore {
    /// Shard over `primaries` with per-shard WALs and replica state in a
    /// private temp directory (removed on drop). Use [`Self::with_root`]
    /// to keep the replication state with a persistent backend.
    pub fn new(
        primaries: Vec<Box<dyn SharedChunkStore>>,
        opts: ShardOptions,
    ) -> Result<Self, StorageError> {
        Self::build(primaries, ephemeral_root(), true, opts)
    }

    /// Shard over `primaries`, keeping WALs and replica segment copies
    /// under `root` (`root/shard-N/{wal,replica-K}`), so a reopened
    /// store resumes from the shipped state.
    pub fn with_root(
        primaries: Vec<Box<dyn SharedChunkStore>>,
        root: PathBuf,
        opts: ShardOptions,
    ) -> Result<Self, StorageError> {
        Self::build(primaries, root, false, opts)
    }

    fn build(
        primaries: Vec<Box<dyn SharedChunkStore>>,
        root: PathBuf,
        ephemeral: bool,
        opts: ShardOptions,
    ) -> Result<Self, StorageError> {
        if primaries.is_empty() {
            return Err(StorageError::Backend(
                "sharded store needs at least one primary".into(),
            ));
        }
        let mut shards = Vec::with_capacity(primaries.len());
        for (i, primary) in primaries.into_iter().enumerate() {
            let shard_dir = root.join(format!("shard-{i}"));
            let wal_dir = shard_dir.join("wal");
            fs::create_dir_all(&wal_dir)?;
            // Replication does not need fsync: the WAL here is a
            // shipping medium, durability is the primary's concern.
            let (wal, _recovery) = WalWriter::open(
                &wal_dir,
                WalOptions {
                    policy: FsyncPolicy::Off,
                    ..WalOptions::default()
                },
            )?;
            let next_lsn = wal.next_lsn();
            let mut replicas = Vec::with_capacity(opts.replicas);
            for k in 0..opts.replicas {
                replicas.push(Replica::new(
                    shard_dir.join(format!("replica-{k}")),
                    opts.breaker_threshold,
                    opts.breaker_cooldown,
                )?);
            }
            shards.push(Shard {
                primary,
                primary_alive: AtomicBool::new(true),
                wal: Mutex::new(wal),
                wal_dir,
                next_lsn: AtomicU64::new(next_lsn),
                replicas,
                rotation: AtomicU64::new(0),
                primary_reads: AtomicU64::new(0),
                replica_reads: AtomicU64::new(0),
                failovers: AtomicU64::new(0),
            });
        }
        Ok(ShardedChunkStore {
            shards,
            opts,
            stats: Mutex::new(IoStats::default()),
            degraded_reads: AtomicU64::new(0),
            root,
            ephemeral,
        })
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub fn replica_count(&self) -> usize {
        self.opts.replicas
    }

    /// Kill switches for failure drills.
    pub fn kill_replica(&self, shard: usize, replica: usize) {
        self.shards[shard].replicas[replica].set_alive(false);
    }

    pub fn revive_replica(&self, shard: usize, replica: usize) {
        self.shards[shard].replicas[replica].set_alive(true);
    }

    pub fn kill_primary(&self, shard: usize) {
        self.shards[shard]
            .primary_alive
            .store(false, Ordering::Release);
    }

    pub fn revive_primary(&self, shard: usize) {
        self.shards[shard]
            .primary_alive
            .store(true, Ordering::Release);
    }

    /// Snapshot of per-shard health and the aggregate counters.
    pub fn stats(&self) -> ShardStats {
        let mut out = ShardStats {
            degraded_reads: self.degraded_reads.load(Ordering::Relaxed),
            ..ShardStats::default()
        };
        for shard in &self.shards {
            let target = shard.next_lsn.load(Ordering::Acquire);
            let replicas: Vec<ReplicaHealth> =
                shard.replicas.iter().map(|r| r.health(target)).collect();
            let failovers = shard.failovers.load(Ordering::Relaxed);
            out.failovers += failovers;
            out.breaker_opens += replicas.iter().map(|r| r.breaker_opens).sum::<u64>();
            out.shards.push(ShardHealth {
                primary_reads: shard.primary_reads.load(Ordering::Relaxed),
                replica_reads: shard.replica_reads.load(Ordering::Relaxed),
                failovers,
                wal_lsn: target,
                primary_alive: shard.primary_alive.load(Ordering::Acquire),
                replicas,
            });
        }
        out
    }

    fn account(&self, chunks: usize, bytes: usize) {
        let mut stats = self.stats.lock().expect("stats mutex");
        stats.statements += 1;
        stats.chunks_returned += chunks as u64;
        stats.bytes_returned += bytes as u64;
    }

    /// Append a chunk-level record to a shard's WAL and publish the new
    /// LSN to the routing mirror.
    fn log(shard: &Shard, record: &WalRecord) -> Result<(), StorageError> {
        let lsn = shard.wal.lock().expect("wal mutex").append(record)?;
        shard.next_lsn.store(lsn + 1, Ordering::Release);
        Ok(())
    }

    fn primary_read<T>(
        &self,
        idx: usize,
        f: &dyn Fn(&dyn SharedChunkRead) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let shard = &self.shards[idx];
        if !shard.primary_alive.load(Ordering::Acquire) {
            return Err(StorageError::ShardUnavailable { shards: vec![idx] });
        }
        let v = f(&shard.primary)?;
        shard.primary_reads.fetch_add(1, Ordering::Relaxed);
        Ok(v)
    }

    /// Route one read on shard `idx`: rotate across replicas whose
    /// breaker admits them, skipping any that lag past the bound; after
    /// one replica *failure*, allow at most one more attempt (the retry
    /// hop) before surfacing the error; when no replica can serve, fall
    /// through to the primary.
    fn read_on<T>(
        &self,
        idx: usize,
        f: impl Fn(&dyn SharedChunkRead) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let shard = &self.shards[idx];
        let n = shard.replicas.len();
        if n == 0 {
            return self.primary_read(idx, &f);
        }
        let target = shard.next_lsn.load(Ordering::Acquire);
        let start = shard.rotation.fetch_add(1, Ordering::Relaxed) as usize % n;
        let mut hop_used = false;
        for k in 0..n {
            let rep = &shard.replicas[(start + k) % n];
            if !rep.breaker().admit() {
                continue;
            }
            let attempt = rep.catch_up(&shard.wal_dir, target).and_then(|()| {
                if target.saturating_sub(rep.applied_lsn()) > self.opts.lag_bound {
                    // Lagging is not a fault — skip without breaker
                    // penalty or hop consumption.
                    Ok(None)
                } else {
                    rep.read(&f).map(Some)
                }
            });
            match attempt {
                Ok(Some(v)) => {
                    rep.breaker().on_success();
                    shard.replica_reads.fetch_add(1, Ordering::Relaxed);
                    return Ok(v);
                }
                Ok(None) => continue,
                // Data errors (missing chunk, unknown array) are not
                // replica faults: the primary would answer identically.
                Err(e) if !e.is_transient() => return Err(e),
                Err(e) => {
                    if rep.breaker().on_failure() && obs::recorder().enabled() {
                        obs_shard_breaker_opens().add(1);
                    }
                    shard.failovers.fetch_add(1, Ordering::Relaxed);
                    if obs::recorder().enabled() {
                        obs_shard_failovers().add(1);
                    }
                    if hop_used {
                        return Err(e);
                    }
                    hop_used = true;
                }
            }
        }
        self.primary_read(idx, &f)
    }

    /// Partition `chunk_ids` by owning shard, preserving input order
    /// inside each group.
    fn group_by_shard(&self, array_id: u64, chunk_ids: &[u64]) -> Vec<(usize, Vec<u64>)> {
        let n = self.shards.len();
        let mut groups: Vec<Vec<u64>> = vec![Vec::new(); n];
        for &c in chunk_ids {
            groups[place(array_id, c, n)].push(c);
        }
        groups
            .into_iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .collect()
    }

    /// Merge per-job errors: if any job failed with `ShardUnavailable`,
    /// report the union of dark shards; otherwise the first error in
    /// job order wins (deterministic regardless of worker timing).
    fn merge_errors(results: &mut Vec<Result<ChunkGroup, StorageError>>) -> Option<StorageError> {
        let mut dark: Vec<usize> = Vec::new();
        let mut first: Option<usize> = None;
        for (i, r) in results.iter().enumerate() {
            if let Err(e) = r {
                if let StorageError::ShardUnavailable { shards } = e {
                    dark.extend(shards.iter().copied());
                } else if first.is_none() {
                    first = Some(i);
                }
            }
        }
        if !dark.is_empty() {
            dark.sort_unstable();
            dark.dedup();
            return Some(StorageError::ShardUnavailable { shards: dark });
        }
        first.map(|i| match results.swap_remove(i) {
            Err(e) => e,
            Ok(_) => unreachable!("indexed error"),
        })
    }
}

type ChunkGroup = Vec<(u64, Vec<u8>)>;

impl SharedChunkRead for ShardedChunkStore {
    fn read_chunk(&self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        let idx = place(array_id, chunk_id, self.shards.len());
        let v = self.read_on(idx, |t| t.read_chunk(array_id, chunk_id))?;
        self.account(1, v.len());
        Ok(v)
    }

    fn read_chunks_in(
        &self,
        array_id: u64,
        chunk_ids: &[u64],
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        let jobs = self.group_by_shard(array_id, chunk_ids);
        let mut results = scatter_gather(self.opts.read_workers, &jobs, |_, (idx, ids)| {
            self.read_on(*idx, |t| t.read_chunks_in(array_id, ids))
        });
        if let Some(e) = Self::merge_errors(&mut results) {
            return Err(e);
        }
        let mut merged: std::collections::HashMap<u64, Vec<u8>> =
            std::collections::HashMap::with_capacity(chunk_ids.len());
        for rows in results {
            for (c, v) in rows.expect("errors merged above") {
                merged.insert(c, v);
            }
        }
        // Reassemble in input-id order — bit-identical to an unsharded
        // read of the same id list.
        let mut out = Vec::with_capacity(chunk_ids.len());
        let mut bytes = 0;
        for &c in chunk_ids {
            let v = merged.get(&c).cloned().ok_or(StorageError::MissingChunk {
                array_id,
                chunk_id: c,
            })?;
            bytes += v.len();
            out.push((c, v));
        }
        self.account(out.len(), bytes);
        Ok(out)
    }

    fn read_chunk_range(
        &self,
        array_id: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        let idxs: Vec<usize> = (0..self.shards.len()).collect();
        let results = scatter_gather(self.opts.read_workers, &idxs, |_, &idx| {
            self.read_on(idx, |t| t.read_chunk_range(array_id, lo, hi))
        });
        let mut rows: ChunkGroup = Vec::new();
        for r in results {
            match r {
                Ok(part) => rows.extend(part),
                // The range contract already skips missing chunks, so a
                // dark shard degrades to an empty contribution — the one
                // place partial results are semantically sound.
                Err(StorageError::ShardUnavailable { .. }) => {
                    self.degraded_reads.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => return Err(e),
            }
        }
        rows.sort_unstable_by_key(|(c, _)| *c);
        let bytes = rows.iter().map(|(_, v)| v.len()).sum();
        self.account(rows.len(), bytes);
        Ok(rows)
    }
}

impl ChunkStore for ShardedChunkStore {
    fn begin_array(&mut self, array_id: u64, chunk_bytes: usize) -> Result<(), StorageError> {
        for shard in &mut self.shards {
            shard.primary.begin_array(array_id, chunk_bytes)?;
            Self::log(
                shard,
                &WalRecord::BeginArray {
                    array_id,
                    chunk_bytes: chunk_bytes as u64,
                },
            )?;
        }
        self.account(0, 0);
        Ok(())
    }

    fn put_chunk(&mut self, array_id: u64, chunk_id: u64, data: &[u8]) -> Result<(), StorageError> {
        let idx = place(array_id, chunk_id, self.shards.len());
        let shard = &mut self.shards[idx];
        shard.primary.put_chunk(array_id, chunk_id, data)?;
        Self::log(
            shard,
            &WalRecord::PutChunk {
                array_id,
                chunk_id,
                data: data.to_vec(),
            },
        )?;
        self.account(0, 0);
        Ok(())
    }

    fn get_chunk(&mut self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        self.read_chunk(array_id, chunk_id)
    }

    fn get_chunks_in(
        &mut self,
        array_id: u64,
        chunk_ids: &[u64],
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        self.read_chunks_in(array_id, chunk_ids)
    }

    fn get_chunk_range(
        &mut self,
        array_id: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        self.read_chunk_range(array_id, lo, hi)
    }

    fn get_composite_range(
        &mut self,
        lo: (u64, u64),
        hi: (u64, u64),
    ) -> Result<CompositeRows, StorageError> {
        // Composite (bag-of-proxy) scans are served by the primaries:
        // their skip-missing contract cannot distinguish "key not
        // stored" from "shard dark", so a dead primary must raise, not
        // degrade.
        let mut dark: Vec<usize> = Vec::new();
        let mut rows = CompositeRows::new();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if !shard.primary_alive.load(Ordering::Acquire) {
                dark.push(i);
                continue;
            }
            rows.extend(shard.primary.get_composite_range(lo, hi)?);
            shard.primary_reads.fetch_add(1, Ordering::Relaxed);
        }
        if !dark.is_empty() {
            return Err(StorageError::ShardUnavailable { shards: dark });
        }
        rows.sort_unstable_by_key(|(k, _)| *k);
        let bytes = rows.iter().map(|(_, v)| v.len()).sum();
        self.account(rows.len(), bytes);
        Ok(rows)
    }

    fn get_composite_in(&mut self, keys: &[(u64, u64)]) -> Result<CompositeRows, StorageError> {
        let n = self.shards.len();
        let mut groups: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
        for &(a, c) in keys {
            groups[place(a, c, n)].push((a, c));
        }
        let mut dark: Vec<usize> = Vec::new();
        let mut merged: std::collections::HashMap<(u64, u64), Vec<u8>> =
            std::collections::HashMap::with_capacity(keys.len());
        for (i, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard = &mut self.shards[i];
            if !shard.primary_alive.load(Ordering::Acquire) {
                dark.push(i);
                continue;
            }
            for (k, v) in shard.primary.get_composite_in(group)? {
                merged.insert(k, v);
            }
            shard.primary_reads.fetch_add(1, Ordering::Relaxed);
        }
        if !dark.is_empty() {
            return Err(StorageError::ShardUnavailable { shards: dark });
        }
        // Input order, missing keys skipped — the composite contract.
        let mut out = CompositeRows::with_capacity(keys.len());
        let mut bytes = 0;
        for k in keys {
            if let Some(v) = merged.get(k) {
                bytes += v.len();
                out.push((*k, v.clone()));
            }
        }
        self.account(out.len(), bytes);
        Ok(out)
    }

    fn delete_array(&mut self, array_id: u64, chunk_count: u64) -> Result<(), StorageError> {
        for shard in &mut self.shards {
            shard.primary.delete_array(array_id, chunk_count)?;
            Self::log(
                shard,
                &WalRecord::DeleteArray {
                    array_id,
                    chunk_count,
                },
            )?;
        }
        self.account(0, 0);
        Ok(())
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            supports_in_list: true,
            supports_range: true,
            supports_cross_range: self
                .shards
                .iter()
                .all(|s| s.primary.capabilities().supports_cross_range),
            supports_parallel: true,
        }
    }

    fn io_stats(&self) -> IoStats {
        *self.stats.lock().expect("stats mutex")
    }

    fn reset_io_stats(&mut self) {
        *self.stats.get_mut().expect("stats mutex") = IoStats::default();
    }

    fn resilience_stats(&self) -> crate::resilient::ResilienceStats {
        self.shards
            .iter()
            .fold(crate::resilient::ResilienceStats::default(), |acc, s| {
                acc.merge(&s.primary.resilience_stats())
            })
    }

    fn reset_resilience_stats(&mut self) {
        for shard in &mut self.shards {
            shard.primary.reset_resilience_stats();
        }
    }

    fn shard_stats(&self) -> Option<ShardStats> {
        Some(self.stats())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        for shard in &mut self.shards {
            shard.primary.sync()?;
            shard.wal.lock().expect("wal mutex").sync()?;
        }
        Ok(())
    }
}

impl Drop for ShardedChunkStore {
    fn drop(&mut self) {
        if self.ephemeral {
            let _ = fs::remove_dir_all(&self.root);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::BreakerState;
    use crate::store::MemoryChunkStore;

    fn primaries(n: usize) -> Vec<Box<dyn SharedChunkStore>> {
        (0..n)
            .map(|_| Box::new(MemoryChunkStore::new()) as Box<dyn SharedChunkStore>)
            .collect()
    }

    fn seeded(shards: usize, opts: ShardOptions, chunks: u64) -> ShardedChunkStore {
        let mut s = ShardedChunkStore::new(primaries(shards), opts).unwrap();
        s.begin_array(1, 32).unwrap();
        for c in 0..chunks {
            let data: Vec<u8> = (0..32)
                .map(|b| (c as u8).wrapping_mul(7).wrapping_add(b))
                .collect();
            s.put_chunk(1, c, &data).unwrap();
        }
        s
    }

    #[test]
    fn placement_is_deterministic_and_balanced() {
        let mut per_shard = [0usize; 4];
        for c in 0..1000u64 {
            let s = place(1, c, 4);
            assert_eq!(s, place(1, c, 4));
            per_shard[s] += 1;
        }
        for (i, &n) in per_shard.iter().enumerate() {
            assert!(n > 100, "shard {i} got only {n} of 1000 keys");
        }
    }

    #[test]
    fn sharded_reads_are_bit_identical_to_unsharded() {
        let sharded = seeded(4, ShardOptions::default(), 64);
        let mut plain = MemoryChunkStore::new();
        for c in 0..64u64 {
            let data: Vec<u8> = (0..32)
                .map(|b| (c as u8).wrapping_mul(7).wrapping_add(b))
                .collect();
            plain.put_chunk(1, c, &data).unwrap();
        }
        // Point reads.
        for c in 0..64 {
            assert_eq!(
                sharded.read_chunk(1, c).unwrap(),
                plain.read_chunk(1, c).unwrap()
            );
        }
        // IN-list in scrambled order, with duplicates.
        let ids: Vec<u64> = vec![63, 0, 17, 5, 17, 42, 1];
        assert_eq!(
            sharded.read_chunks_in(1, &ids).unwrap(),
            plain.read_chunks_in(1, &ids).unwrap()
        );
        // Range (hi beyond the stored chunks: missing are skipped).
        assert_eq!(
            sharded.read_chunk_range(1, 10, 80).unwrap(),
            plain.read_chunk_range(1, 10, 80).unwrap()
        );
    }

    #[test]
    fn composite_ops_match_unsharded() {
        let mut sharded = seeded(3, ShardOptions::default(), 16);
        let mut plain = MemoryChunkStore::new();
        for c in 0..16u64 {
            let data: Vec<u8> = (0..32)
                .map(|b| (c as u8).wrapping_mul(7).wrapping_add(b))
                .collect();
            plain.put_chunk(1, c, &data).unwrap();
        }
        assert_eq!(
            sharded.get_composite_range((1, 2), (1, 12)).unwrap(),
            plain.get_composite_range((1, 2), (1, 12)).unwrap()
        );
        let keys = vec![(1, 3), (1, 99), (1, 0), (1, 15)];
        assert_eq!(
            sharded.get_composite_in(&keys).unwrap(),
            plain.get_composite_in(&keys).unwrap()
        );
    }

    #[test]
    fn replicas_serve_reads_and_primaries_stay_idle() {
        let opts = ShardOptions {
            replicas: 1,
            ..ShardOptions::default()
        };
        let sharded = seeded(2, opts, 32);
        let ids: Vec<u64> = (0..32).collect();
        let rows = sharded.read_chunks_in(1, &ids).unwrap();
        assert_eq!(rows.len(), 32);
        let st = sharded.stats();
        let replica_reads: u64 = st.shards.iter().map(|s| s.replica_reads).sum();
        let primary_reads: u64 = st.shards.iter().map(|s| s.primary_reads).sum();
        assert!(replica_reads >= 2, "replicas served {replica_reads}");
        assert_eq!(primary_reads, 0, "reads leaked to primaries");
        // Replicas are caught up: zero lag in the health report.
        for shard in &st.shards {
            for rep in &shard.replicas {
                assert_eq!(rep.lag, 0);
            }
        }
    }

    #[test]
    fn dead_replica_fails_over_to_sibling_within_one_hop() {
        let opts = ShardOptions {
            replicas: 2,
            ..ShardOptions::default()
        };
        let sharded = seeded(1, opts, 16);
        sharded.kill_replica(0, 0);
        for c in 0..16 {
            assert!(sharded.read_chunk(1, c).is_ok(), "read {c} failed");
        }
        let st = sharded.stats();
        assert!(st.failovers >= 1, "no failover recorded");
        assert!(st.shards[0].replica_reads >= 1);
    }

    #[test]
    fn dead_primary_without_replicas_is_a_typed_error() {
        let sharded = seeded(2, ShardOptions::default(), 32);
        // Find a chunk on shard 1, then kill that primary.
        let on_one: Vec<u64> = (0..32).filter(|&c| place(1, c, 2) == 1).collect();
        assert!(!on_one.is_empty());
        sharded.kill_primary(1);
        let ids: Vec<u64> = (0..32).collect();
        match sharded.read_chunks_in(1, &ids) {
            Err(StorageError::ShardUnavailable { shards }) => assert_eq!(shards, vec![1]),
            other => panic!("expected ShardUnavailable, got {other:?}"),
        }
        // Ranges degrade to the surviving shards' chunks instead.
        let rows = sharded.read_chunk_range(1, 0, 31).unwrap();
        let expect: Vec<u64> = (0..32).filter(|&c| place(1, c, 2) == 0).collect();
        assert_eq!(rows.iter().map(|(c, _)| *c).collect::<Vec<_>>(), expect);
        assert!(sharded.stats().degraded_reads >= 1);
        // Revival restores full service.
        sharded.revive_primary(1);
        assert_eq!(sharded.read_chunks_in(1, &ids).unwrap().len(), 32);
    }

    #[test]
    fn breaker_opens_on_repeated_failures_and_recovers_via_probe() {
        let opts = ShardOptions {
            replicas: 1,
            breaker_threshold: 2,
            breaker_cooldown: 2,
            ..ShardOptions::default()
        };
        let sharded = seeded(1, opts, 4);
        sharded.kill_replica(0, 0);
        // Two failed reads trip the breaker (each falls through to the
        // primary, so no read ever fails).
        for _ in 0..2 {
            sharded.read_chunk(1, 0).unwrap();
        }
        let st = sharded.stats();
        assert_eq!(st.shards[0].replicas[0].breaker, BreakerState::Open);
        assert_eq!(st.breaker_opens, 1);
        assert_eq!(st.failovers, 2);
        sharded.revive_replica(0, 0);
        // Cooldown burns on the next admissions, then a half-open probe
        // succeeds and the breaker closes.
        for _ in 0..3 {
            sharded.read_chunk(1, 0).unwrap();
        }
        let st = sharded.stats();
        assert_eq!(st.shards[0].replicas[0].breaker, BreakerState::Closed);
        assert!(st.shards[0].replica_reads >= 1);
    }

    #[test]
    fn writes_replicate_through_wal_shipping() {
        let opts = ShardOptions {
            replicas: 1,
            ..ShardOptions::default()
        };
        let mut sharded = seeded(2, opts, 8);
        // Overwrite a chunk, then delete the array: replicas must track
        // both through the shipped log.
        sharded.put_chunk(1, 3, &[0xAB; 32]).unwrap();
        assert_eq!(sharded.read_chunk(1, 3).unwrap(), vec![0xAB; 32]);
        sharded.delete_array(1, 8).unwrap();
        assert!(matches!(
            sharded.read_chunk(1, 3),
            Err(StorageError::MissingChunk { .. })
        ));
        let st = sharded.stats();
        assert_eq!(st.failovers, 0);
    }
}
