//! The parallel chunk-retrieval pipeline.
//!
//! The APR fetch plan is a list of independent back-end statements
//! ([`FetchOp`]s) — one per chunk under `Single`, one per batch under
//! `BufferedIn`, one per detected run under `SpdRange`. Sequential APR
//! executes them one at a time, so total latency is the *sum* of the
//! round trips. This module partitions the plan across a scoped worker
//! pool over the [`SharedChunkRead`] contract, so round trips (and the
//! CRC32 frame verification of their results, which happens on each
//! worker) overlap; the assembled result is **bit-identical** to the
//! sequential path and the back-end's [`IoStats`](crate::IoStats)
//! accounting stays exact, because exactly the same statements execute —
//! just concurrently.
//!
//! The per-op fallback contract of
//! `ArrayStore::execute_with_fallback` is preserved: a failed *batched*
//! statement degrades to per-chunk retrieval of the needed ids it
//! covered, inside the worker that claimed it. Errors that survive the
//! fallback are reported deterministically — the failing op earliest in
//! plan order wins, regardless of worker timing.
//!
//! Back-ends opt in via [`Capabilities::supports_parallel`]
//! (austere or fault-injecting stacks leave it unset and callers
//! degrade to sequential resolution).
//!
//! [`Capabilities::supports_parallel`]: crate::Capabilities::supports_parallel

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ssdm_array::pool;
use ssdm_obs as obs;

use crate::spd::FetchOp;
use crate::store::{ChunkRows, SharedChunkRead};
use crate::Result;

/// Process-wide count of batched statements that degraded to per-chunk
/// fallback retrieval (all parallel fetch pipelines).
fn obs_apr_fallbacks() -> &'static Arc<obs::Counter> {
    static C: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    C.get_or_init(|| obs::recorder().counter("ssdm_apr_fallbacks"))
}

/// Tuning for parallel resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads to partition the fetch plan across. `0` or `1`
    /// selects the sequential path.
    pub workers: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig { workers: 4 }
    }
}

impl ParallelConfig {
    pub fn with_workers(workers: usize) -> Self {
        ParallelConfig { workers }
    }
}

/// Execute every op of `plan` against `backend`, partitioned across at
/// most `workers` scoped threads. Returns the fetched rows *per op, in
/// plan order* plus the number of batched-statement fallbacks taken.
///
/// Workers claim ops from a shared cursor (work stealing by exhaustion,
/// so a slow range statement does not idle the pool), execute them
/// through the `&self` read contract, and deposit results into the
/// op's slot; assembly then walks the slots in plan order, which makes
/// both the row order and the choice of reported error independent of
/// thread scheduling.
pub fn fetch_plan<S: SharedChunkRead + ?Sized>(
    backend: &S,
    array_id: u64,
    plan: &[FetchOp],
    needed: &[u64],
    workers: usize,
) -> Result<(Vec<ChunkRows>, u64)> {
    run_plan(backend, array_id, plan, needed, workers, |_, rows| Ok(rows))
}

/// The generalized pipeline under [`fetch_plan`]: each claimed op's
/// rows are handed to `process` *inside the worker that fetched them*,
/// so per-chunk work (CRC verification, decoding, partial aggregate
/// folds — see `ArrayStore::resolve_aggregate_parallel`) overlaps the
/// round trips of the other ops and the payloads can be dropped without
/// ever being assembled centrally. `process` receives the op's plan
/// index; results return per op in plan order, and the earliest op's
/// error (fetch or process) wins deterministically.
pub fn run_plan<S, T, F>(
    backend: &S,
    array_id: u64,
    plan: &[FetchOp],
    needed: &[u64],
    workers: usize,
    process: F,
) -> Result<(Vec<T>, u64)>
where
    S: SharedChunkRead + ?Sized,
    T: Send,
    F: Fn(usize, ChunkRows) -> Result<T> + Sync,
{
    let fallbacks = AtomicU64::new(0);
    let results = scatter_gather(workers, plan, |i, op| {
        execute_one(backend, array_id, op, needed, &fallbacks).and_then(|rows| process(i, rows))
    });
    let mut out = Vec::with_capacity(plan.len());
    for r in results {
        // Plan-order iteration: the earliest failing op's error is the
        // one reported, matching what sequential execution would hit
        // first.
        out.push(r?);
    }
    Ok((out, fallbacks.load(Ordering::Relaxed)))
}

/// The scatter-gather engine under [`run_plan`], generalized from "N
/// workers over one backend's fetch plan" to any job list — the sharded
/// store ([`crate::ShardedChunkStore`]) reuses it to run "N workers
/// over N shards". Workers claim jobs from a shared cursor and deposit
/// each result into that job's slot; the returned vector is in **job
/// order**, so callers that iterate it report errors deterministically
/// regardless of worker timing.
pub fn scatter_gather<J, T, E>(workers: usize, jobs: &[J], execute: E) -> Vec<Result<T>>
where
    J: Sync,
    T: Send,
    E: Fn(usize, &J) -> Result<T> + Sync,
{
    if jobs.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, jobs.len());
    let slots: Vec<Mutex<Option<Result<T>>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    pool::dispatch(workers, jobs.len(), |i| {
        let r = execute(i, &jobs[i]);
        *slots[i].lock().expect("result slot") = Some(r);
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("job claimed")
        })
        .collect()
}

/// Execute one fetch op with the same statement shapes and batched-
/// statement fallback as the sequential `execute_with_fallback`.
fn execute_one<S: SharedChunkRead + ?Sized>(
    backend: &S,
    array_id: u64,
    op: &FetchOp,
    needed: &[u64],
    fallbacks: &AtomicU64,
) -> Result<ChunkRows> {
    let _span = ssdm_obs::Span::start(crate::apr::obs_chunk_fetch_hist());
    let batched = match op {
        FetchOp::Range { .. } => true,
        FetchOp::In(ids) => ids.len() > 1,
    };
    let direct = match op {
        FetchOp::Range { lo, hi } => backend.read_chunk_range(array_id, *lo, *hi),
        FetchOp::In(ids) if ids.len() == 1 => backend
            .read_chunk(array_id, ids[0])
            .map(|d| vec![(ids[0], d)]),
        FetchOp::In(ids) => backend.read_chunks_in(array_id, ids),
    };
    match direct {
        Ok(rows) => Ok(rows),
        Err(e) if !batched => Err(e),
        Err(_) => {
            fallbacks.fetch_add(1, Ordering::Relaxed);
            if obs::recorder().enabled() {
                obs_apr_fallbacks().add(1);
            }
            let ids: Vec<u64> = match op {
                FetchOp::In(ids) => ids.clone(),
                FetchOp::Range { lo, hi } => needed
                    .iter()
                    .copied()
                    .filter(|c| (*lo..=*hi).contains(c))
                    .collect(),
            };
            ids.into_iter()
                .map(|c| backend.read_chunk(array_id, c).map(|d| (c, d)))
                .collect()
        }
    }
}

/// Convenience used by tests and callers that want a flat map of chunk
/// id → payload from a parallel fetch.
pub fn fetch_plan_merged<S: SharedChunkRead + ?Sized>(
    backend: &S,
    array_id: u64,
    plan: &[FetchOp],
    needed: &[u64],
    workers: usize,
) -> Result<(std::collections::HashMap<u64, Vec<u8>>, u64)> {
    let (per_op, fallbacks) = fetch_plan(backend, array_id, plan, needed, workers)?;
    let mut out = std::collections::HashMap::new();
    for rows in per_op {
        for (cid, payload) in rows {
            out.insert(cid, payload);
        }
    }
    Ok((out, fallbacks))
}

// An explicit sanity check that the trait object is usable across
// threads the way the scoped pool requires.
const _: fn() = || {
    fn assert_shared<T: Send + Sync + ?Sized>() {}
    assert_shared::<dyn SharedChunkRead>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryChunkStore, StorageError};

    fn seeded_store(chunks: u64) -> MemoryChunkStore {
        let mut s = MemoryChunkStore::new();
        for c in 0..chunks {
            use crate::ChunkStore;
            s.put_chunk(1, c, &[c as u8; 16]).unwrap();
        }
        s
    }

    #[test]
    fn parallel_matches_sequential_rows() {
        let s = seeded_store(32);
        let plan: Vec<FetchOp> = (0..32).map(|c| FetchOp::In(vec![c])).collect();
        let needed: Vec<u64> = (0..32).collect();
        for workers in [1, 2, 4, 8] {
            let (rows, fb) = fetch_plan(&s, 1, &plan, &needed, workers).unwrap();
            assert_eq!(fb, 0);
            assert_eq!(rows.len(), 32);
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(r.as_slice(), &[(i as u64, vec![i as u8; 16])]);
            }
        }
    }

    #[test]
    fn io_stats_stay_exact_under_concurrency() {
        use crate::ChunkStore;
        let s = seeded_store(64);
        let plan: Vec<FetchOp> = (0..64).map(|c| FetchOp::In(vec![c])).collect();
        let needed: Vec<u64> = (0..64).collect();
        fetch_plan(&s, 1, &plan, &needed, 8).unwrap();
        let st = s.io_stats();
        assert_eq!(st.statements, 64);
        assert_eq!(st.chunks_returned, 64);
    }

    #[test]
    fn earliest_op_error_wins() {
        let s = seeded_store(8);
        // Ops 3 and 6 reference a missing chunk; whichever worker hits
        // them, the reported error must be op 3's.
        let plan: Vec<FetchOp> = (0..8)
            .map(|c| FetchOp::In(vec![if c == 3 || c == 6 { 100 + c } else { c }]))
            .collect();
        let needed: Vec<u64> = (0..8).collect();
        for _ in 0..16 {
            let err = fetch_plan(&s, 1, &plan, &needed, 4).unwrap_err();
            match err {
                StorageError::MissingChunk { chunk_id, .. } => assert_eq!(chunk_id, 103),
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn empty_plan_is_fine() {
        let s = seeded_store(1);
        let (rows, fb) = fetch_plan(&s, 1, &[], &[], 4).unwrap();
        assert!(rows.is_empty());
        assert_eq!(fb, 0);
    }
}
