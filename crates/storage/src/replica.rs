//! WAL-shipping read replicas and their health machinery.
//!
//! A [`Replica`] follows one shard primary by ingesting copies of the
//! primary's SWL1 segments (the same files the durability subsystem
//! writes — see [`crate::wal`]) and replaying the chunk-level records
//! (kinds 5–7: `BeginArray`/`PutChunk`/`DeleteArray`) into a private
//! [`MemoryChunkStore`]. Because chunk framing is deterministic, a
//! caught-up replica serves bytes **bit-identical** to its primary.
//!
//! Catch-up is LSN-addressed: the replica remembers the next LSN it has
//! to apply, ships only segments whose on-disk copy is stale, and
//! replays forward from its watermark — the snapshot + LSN catch-up
//! discipline of the durability layer, reused for replication. Copying
//! a segment the primary is still appending to is safe: the SWL1 reader
//! treats a torn final frame as a clean prefix.
//!
//! Health is tracked by a consecutive-failure circuit [`Breaker`] with
//! half-open probes, so a dead replica stops receiving traffic after a
//! few failures and is re-probed after a cooldown instead of hammered.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::store::{ChunkStore, MemoryChunkStore, SharedChunkRead, StorageError};
use crate::wal::{WalReader, WalRecord};

/// Circuit breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe request is admitted; its
    /// outcome closes or re-opens the breaker.
    HalfOpen,
}

impl BreakerState {
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

#[derive(Debug)]
struct BreakerCore {
    state: BreakerState,
    /// Consecutive failures while `Closed`.
    consecutive: u32,
    /// Admissions remaining to sit out while `Open`.
    cooldown_left: u32,
    /// Times the breaker tripped (Closed→Open or HalfOpen→Open).
    opens: u64,
}

/// A consecutive-failure circuit breaker. Deliberately *count-based*
/// (cooldown measured in rejected admissions, not wall-clock), so
/// failover drills behave identically run to run — no clock reads, no
/// flaky sleeps.
#[derive(Debug)]
pub struct Breaker {
    core: Mutex<BreakerCore>,
    threshold: u32,
    cooldown: u32,
}

impl Breaker {
    /// `threshold` consecutive failures trip the breaker; `cooldown`
    /// subsequent admissions are rejected before a half-open probe.
    pub fn new(threshold: u32, cooldown: u32) -> Self {
        Breaker {
            core: Mutex::new(BreakerCore {
                state: BreakerState::Closed,
                consecutive: 0,
                cooldown_left: 0,
                opens: 0,
            }),
            threshold: threshold.max(1),
            cooldown: cooldown.max(1),
        }
    }

    pub fn state(&self) -> BreakerState {
        self.core.lock().expect("breaker").state
    }

    /// Times the breaker has tripped.
    pub fn opens(&self) -> u64 {
        self.core.lock().expect("breaker").opens
    }

    /// Whether a request may proceed. While open, each rejected call
    /// burns one unit of cooldown; when it reaches zero the breaker goes
    /// half-open and admits a single probe.
    pub fn admit(&self) -> bool {
        let mut core = self.core.lock().expect("breaker");
        match core.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                core.cooldown_left = core.cooldown_left.saturating_sub(1);
                if core.cooldown_left == 0 {
                    core.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    pub fn on_success(&self) {
        let mut core = self.core.lock().expect("breaker");
        core.state = BreakerState::Closed;
        core.consecutive = 0;
    }

    /// Record a failure. Returns `true` when this failure tripped the
    /// breaker (Closed→Open on reaching the threshold, or a failed
    /// half-open probe re-opening it).
    pub fn on_failure(&self) -> bool {
        let mut core = self.core.lock().expect("breaker");
        match core.state {
            BreakerState::HalfOpen => {
                // Failed probe: straight back to open, full cooldown.
                core.state = BreakerState::Open;
                core.cooldown_left = self.cooldown;
                core.opens += 1;
                true
            }
            BreakerState::Closed => {
                core.consecutive += 1;
                if core.consecutive >= self.threshold {
                    core.state = BreakerState::Open;
                    core.cooldown_left = self.cooldown;
                    core.opens += 1;
                    true
                } else {
                    false
                }
            }
            BreakerState::Open => false,
        }
    }
}

/// Point-in-time health of one replica, for [`crate::shard::ShardStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaHealth {
    /// Reads served by this replica.
    pub reads: u64,
    /// Next LSN the replica would apply (all records below are in).
    pub applied_lsn: u64,
    /// LSNs behind the primary at observation time.
    pub lag: u64,
    pub alive: bool,
    pub breaker: BreakerState,
    pub breaker_opens: u64,
}

/// One WAL-shipping follower of a shard primary.
pub struct Replica {
    /// The replica's private copy of the primary's WAL segments.
    dir: PathBuf,
    store: Mutex<MemoryChunkStore>,
    /// Next LSN to apply; every record with a smaller LSN has been
    /// replayed into `store`.
    applied_lsn: AtomicU64,
    /// Kill switch for failure drills: a dead replica fails reads and
    /// refuses catch-up with a transient error.
    alive: AtomicBool,
    breaker: Breaker,
    reads: AtomicU64,
}

impl Replica {
    pub fn new(
        dir: PathBuf,
        breaker_threshold: u32,
        breaker_cooldown: u32,
    ) -> Result<Self, StorageError> {
        fs::create_dir_all(&dir)?;
        Ok(Replica {
            dir,
            store: Mutex::new(MemoryChunkStore::new()),
            applied_lsn: AtomicU64::new(0),
            alive: AtomicBool::new(true),
            breaker: Breaker::new(breaker_threshold, breaker_cooldown),
            reads: AtomicU64::new(0),
        })
    }

    pub fn alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    pub fn set_alive(&self, on: bool) {
        self.alive.store(on, Ordering::Release);
    }

    pub fn applied_lsn(&self) -> u64 {
        self.applied_lsn.load(Ordering::Acquire)
    }

    pub fn breaker(&self) -> &Breaker {
        &self.breaker
    }

    pub fn health(&self, target_lsn: u64) -> ReplicaHealth {
        let applied = self.applied_lsn();
        ReplicaHealth {
            reads: self.reads.load(Ordering::Relaxed),
            applied_lsn: applied,
            lag: target_lsn.saturating_sub(applied),
            alive: self.alive(),
            breaker: self.breaker.state(),
            breaker_opens: self.breaker.opens(),
        }
    }

    /// Ship any stale segments from `primary_wal` and replay forward
    /// until the replica has applied every record below `target_lsn`.
    /// No-op when already caught up.
    pub fn catch_up(&self, primary_wal: &Path, target_lsn: u64) -> Result<(), StorageError> {
        if !self.alive() {
            return Err(StorageError::Transient("replica down".into()));
        }
        if self.applied_lsn() >= target_lsn {
            return Ok(());
        }
        self.ship_segments(primary_wal)?;
        let scan = WalReader::scan(&self.dir)?;
        let mut store = self.store.lock().expect("replica store");
        let mut applied = self.applied_lsn();
        for (lsn, record) in &scan.records {
            if *lsn < applied {
                continue;
            }
            match record {
                WalRecord::BeginArray {
                    array_id,
                    chunk_bytes,
                } => store.begin_array(*array_id, *chunk_bytes as usize)?,
                WalRecord::PutChunk {
                    array_id,
                    chunk_id,
                    data,
                } => store.put_chunk(*array_id, *chunk_id, data)?,
                WalRecord::DeleteArray {
                    array_id,
                    chunk_count,
                } => store.delete_array(*array_id, *chunk_count)?,
                // Statement/graph/checkpoint records belong to the
                // durability WAL, not chunk replication.
                _ => {}
            }
            applied = *lsn + 1;
        }
        drop(store);
        self.applied_lsn.store(applied, Ordering::Release);
        Ok(())
    }

    /// Serve one read from the replica's local store. Fails with a
    /// transient error when the replica is down (the routing layer's
    /// cue to fail over).
    pub fn read<T>(
        &self,
        f: impl FnOnce(&dyn SharedChunkRead) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        if !self.alive() {
            return Err(StorageError::Transient("replica down".into()));
        }
        let store = self.store.lock().expect("replica store");
        let out = f(&*store);
        if out.is_ok() {
            self.reads.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Copy every primary segment whose local copy is missing or has a
    /// different length. Copying a segment mid-append is fine: the SWL1
    /// reader treats a torn final frame as a clean prefix, and the next
    /// catch-up re-ships the grown file.
    fn ship_segments(&self, primary_wal: &Path) -> Result<(), StorageError> {
        for entry in fs::read_dir(primary_wal)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if !(name.starts_with("wal-") && name.ends_with(".log")) {
                continue;
            }
            let src = entry.path();
            let dst = self.dir.join(&name);
            let src_len = entry.metadata()?.len();
            let stale = match fs::metadata(&dst) {
                Ok(m) => m.len() != src_len,
                Err(_) => true,
            };
            if stale {
                fs::copy(&src, &dst)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{WalOptions, WalWriter};

    fn tmp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicU64 as A;
        static N: A = A::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("ssdm-replica-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn breaker_trips_after_threshold_and_probes_half_open() {
        let b = Breaker::new(3, 2);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        // Two admissions burn the cooldown: first rejected, second is
        // the half-open probe.
        assert!(!b.admit());
        assert!(b.admit());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Failed probe re-opens with a fresh cooldown.
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        assert!(!b.admit());
        assert!(b.admit());
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        // Recovery resets the consecutive count entirely.
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn replica_replays_chunk_records_and_tracks_lsn() {
        let primary_wal = tmp_dir("primary");
        let (mut wal, _) = WalWriter::open(&primary_wal, WalOptions::default()).unwrap();
        wal.append(&WalRecord::BeginArray {
            array_id: 1,
            chunk_bytes: 16,
        })
        .unwrap();
        for c in 0..4u64 {
            wal.append(&WalRecord::PutChunk {
                array_id: 1,
                chunk_id: c,
                data: vec![c as u8; 16],
            })
            .unwrap();
        }

        let replica = Replica::new(tmp_dir("follower"), 3, 2).unwrap();
        replica.catch_up(&primary_wal, wal.next_lsn()).unwrap();
        assert_eq!(replica.applied_lsn(), wal.next_lsn());
        let rows = replica
            .read(|s| s.read_chunks_in(1, &[0, 1, 2, 3]))
            .unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[2].1, vec![2u8; 16]);

        // Incremental: new writes, another catch-up, no re-copy churn.
        wal.append(&WalRecord::PutChunk {
            array_id: 1,
            chunk_id: 4,
            data: vec![9u8; 16],
        })
        .unwrap();
        replica.catch_up(&primary_wal, wal.next_lsn()).unwrap();
        let row = replica.read(|s| s.read_chunk(1, 4)).unwrap();
        assert_eq!(row, vec![9u8; 16]);

        // Deletion replicates too.
        wal.append(&WalRecord::DeleteArray {
            array_id: 1,
            chunk_count: 5,
        })
        .unwrap();
        replica.catch_up(&primary_wal, wal.next_lsn()).unwrap();
        assert!(replica.read(|s| s.read_chunk(1, 0)).is_err());
    }

    #[test]
    fn dead_replica_fails_reads_and_catch_up_transiently() {
        let primary_wal = tmp_dir("primary-dead");
        let (wal, _) = WalWriter::open(&primary_wal, WalOptions::default()).unwrap();
        let replica = Replica::new(tmp_dir("follower-dead"), 3, 2).unwrap();
        replica.set_alive(false);
        let err = replica.read(|s| s.read_chunk(1, 0)).unwrap_err();
        assert!(err.is_transient());
        let err = replica.catch_up(&primary_wal, wal.next_lsn()).unwrap_err();
        assert!(err.is_transient());
        replica.set_alive(true);
        replica.catch_up(&primary_wal, wal.next_lsn()).unwrap();
    }
}
