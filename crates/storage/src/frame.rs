//! The checksummed chunk frame shared by every back-end.
//!
//! Each stored chunk is wrapped in a 16-byte header so corruption of
//! the bytes at rest — in a binary file, in the relational substrate's
//! pages, in an external system — is *detected at read time* instead of
//! silently flowing into query results:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SCK1"
//! 4       4     payload length, u32 LE
//! 8       4     CRC32 (IEEE) of the payload, u32 LE
//! 12      4     reserved (zero)
//! 16      len   payload
//! ```
//!
//! The header is 16 bytes so fixed-slot layouts (the binary-file store)
//! keep 8-byte element alignment. Decoding distinguishes *corruption*
//! (bad magic, bad checksum) from *truncation* (fewer bytes than the
//! header promises) — the latter is what a torn write or a file
//! truncated mid-chunk produces, and callers map it to
//! [`StorageError::ShortRead`](crate::StorageError::ShortRead).

/// Frame header length in bytes.
pub const FRAME_HEADER: usize = 16;

/// Frame magic: "Ssdm ChunK v1".
pub const FRAME_MAGIC: [u8; 4] = *b"SCK1";

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The bytes do not start with a frame header at all.
    BadMagic,
    /// The header's reserved bytes are not zero — the header itself was
    /// damaged.
    BadHeader,
    /// Fewer bytes than the header's payload length promises.
    Truncated { expected: usize, got: usize },
    /// The payload does not match its recorded checksum.
    BadChecksum { stored: u32, computed: u32 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad chunk-frame magic"),
            FrameError::BadHeader => write!(f, "damaged chunk-frame header"),
            FrameError::Truncated { expected, got } => {
                write!(
                    f,
                    "chunk frame truncated: {got} of {expected} payload bytes"
                )
            }
            FrameError::BadChecksum { stored, computed } => {
                write!(
                    f,
                    "chunk checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
        }
    }
}

/// CRC32 (IEEE 802.3 polynomial, reflected), table-driven. The table is
/// computed at compile time, so this needs no dependencies.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Wrap a chunk payload in a checksummed frame.
pub fn encode(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]);
    out.extend_from_slice(payload);
    out
}

/// Payload length a frame starting with `header` promises, if the
/// header is well-formed.
pub fn payload_len(header: &[u8]) -> Option<usize> {
    if header.len() < FRAME_HEADER || header[..4] != FRAME_MAGIC {
        return None;
    }
    Some(u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize)
}

/// Verify and strip the frame around a chunk payload. `bytes` may carry
/// trailing slack (fixed-slot layouts) — only the framed prefix is
/// examined.
pub fn decode(bytes: &[u8]) -> Result<Vec<u8>, FrameError> {
    if bytes.len() < FRAME_HEADER {
        return Err(FrameError::Truncated {
            expected: FRAME_HEADER,
            got: bytes.len(),
        });
    }
    if bytes[..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let len = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    let stored = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if bytes[12..16] != [0u8; 4] {
        return Err(FrameError::BadHeader);
    }
    let body = &bytes[FRAME_HEADER..];
    if body.len() < len {
        return Err(FrameError::Truncated {
            expected: len,
            got: body.len(),
        });
    }
    let payload = &body[..len];
    let computed = crc32(payload);
    if computed != stored {
        return Err(FrameError::BadChecksum { stored, computed });
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for payload in [&b""[..], b"x", b"hello world", &[0u8; 1000]] {
            let frame = encode(payload);
            assert_eq!(frame.len(), FRAME_HEADER + payload.len());
            assert_eq!(decode(&frame).unwrap(), payload);
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_any_single_bit_flip() {
        let payload = b"the quick brown fox jumps over the lazy dog";
        let frame = encode(payload);
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode(&bad).is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_is_distinguished_from_corruption() {
        let frame = encode(b"0123456789abcdef");
        let torn = &frame[..frame.len() - 3];
        assert!(matches!(
            decode(torn),
            Err(FrameError::Truncated {
                expected: 16,
                got: 13
            })
        ));
        let stub = &frame[..7];
        assert!(matches!(decode(stub), Err(FrameError::Truncated { .. })));
        assert!(matches!(
            decode(b"not a frame at all"),
            Err(FrameError::BadMagic)
        ));
    }

    #[test]
    fn slack_after_payload_is_ignored() {
        let mut frame = encode(b"abc");
        frame.extend_from_slice(&[0xAA; 13]); // slot padding
        assert_eq!(decode(&frame).unwrap(), b"abc");
    }
}
