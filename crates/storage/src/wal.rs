//! Write-ahead log: segmented, CRC-framed logical update records.
//!
//! The durability subsystem logs every committed update *before* it is
//! acknowledged, so a crash between acknowledgement and the next
//! snapshot loses nothing. Records are logical — the raw SciSPARQL
//! update text (or Turtle document) that produced the mutation — and
//! replay simply re-executes them against the recovered snapshot.
//!
//! ## On-disk format
//!
//! A WAL directory holds numbered segment files `wal-NNNNNN.log`. Each
//! segment starts with a 16-byte header:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SWL1"
//! 4       4     reserved (zero)
//! 8       8     start LSN, u64 LE — the LSN of the first record
//! ```
//!
//! followed by records, each an SCK1 frame (see [`crate::frame`]) whose
//! payload is:
//!
//! ```text
//! offset  size  field
//! 0       8     LSN, u64 LE
//! 8       1     kind (1 = statement, 2 = turtle, 3 = named turtle,
//!               4 = checkpoint marker)
//! 9       ...   kind-specific body (UTF-8 text)
//! ```
//!
//! LSNs are assigned densely from 0 and never reused. A checkpoint
//! rotates the log to a fresh segment whose start LSN equals the
//! snapshot's recovery LSN and deletes every segment wholly below it.
//!
//! ## Recovery invariants
//!
//! * Records are appended with a single `write` each, so a torn write
//!   can only damage the *final* record of the *final* segment.
//! * [`WalReader::scan`] therefore treats any decode failure in the
//!   final segment as a torn tail — the log is truncated at the first
//!   bad CRC/short frame and replay stops there. The truncated record
//!   was never acknowledged (acknowledgement follows the fsync policy),
//!   so dropping it preserves prefix consistency.
//! * A decode failure in a *non-final* segment cannot be produced by a
//!   crash (earlier segments are complete and fsynced before rotation)
//!   and is reported as hard corruption instead.
//!
//! ## Crash injection
//!
//! [`CrashPlan`] arms a byte-budget "power failure": the raw write that
//! crosses the budget persists only a prefix (optionally followed by
//! seeded garbage, modelling a torn sector), and every subsequent
//! operation fails. Because the budget is byte-granular, a seeded sweep
//! of budgets covers every write boundary *and* every intra-record tear.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Process-wide WAL fsync stall histogram: every `sync_data` the writer
/// issues is timed into it, so `METRICS` exposes fsync tail latency.
fn obs_fsync_hist() -> &'static Arc<ssdm_obs::Histogram> {
    static H: OnceLock<Arc<ssdm_obs::Histogram>> = OnceLock::new();
    H.get_or_init(|| ssdm_obs::recorder().histogram("ssdm_wal_fsync_seconds"))
}

use crate::frame;
use crate::store::StorageError;

/// Segment header length in bytes.
pub const SEGMENT_HEADER: usize = 16;

/// Segment magic: "Ssdm Wal Log v1".
pub const SEGMENT_MAGIC: [u8; 4] = *b"SWL1";

/// Default segment rotation threshold.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

/// When the log writer flushes its file to durable media.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every appended record before acknowledging it.
    Always,
    /// fsync at most once per interval; a crash may lose the tail of
    /// acknowledged-but-unsynced records (group commit).
    Interval(Duration),
    /// Never fsync from the writer; rely on the OS page cache. A crash
    /// may lose everything since the last checkpoint.
    Off,
}

impl FsyncPolicy {
    /// Parse a CLI spelling: `always`, `off`, `interval` (default
    /// 100ms) or `interval:MILLIS`. `interval:0` normalises to
    /// `always` — a zero period means "fsync due on every append", and
    /// reporting it as an interval would misstate the durability
    /// contract actually in force.
    pub fn parse(text: &str) -> Option<FsyncPolicy> {
        match text {
            "always" => Some(FsyncPolicy::Always),
            "off" | "none" => Some(FsyncPolicy::Off),
            "interval" => Some(FsyncPolicy::Interval(Duration::from_millis(100))),
            other => {
                let ms: u64 = other.strip_prefix("interval:")?.parse().ok()?;
                if ms == 0 {
                    Some(FsyncPolicy::Always)
                } else {
                    Some(FsyncPolicy::Interval(Duration::from_millis(ms)))
                }
            }
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Interval(d) => write!(f, "interval:{}", d.as_millis()),
            FsyncPolicy::Off => write!(f, "off"),
        }
    }
}

/// A logical update record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A SciSPARQL update statement, logged verbatim.
    Statement(String),
    /// A Turtle document loaded into the default graph.
    TurtleDefault(String),
    /// A Turtle document loaded into a named graph.
    TurtleNamed { graph: String, text: String },
    /// Marks a completed checkpoint at the given recovery LSN.
    /// Informational; replay ignores it.
    Checkpoint { wal_lsn: u64 },
    /// A chunked array announced to a back-end shard (`begin_array`).
    /// Chunk-level records (kinds 5–7) are what the sharded store's
    /// WAL-shipping replicas replay to follow their primary.
    BeginArray { array_id: u64, chunk_bytes: u64 },
    /// One chunk written (`put_chunk`); the body carries the raw
    /// (unframed) chunk payload.
    PutChunk {
        array_id: u64,
        chunk_id: u64,
        data: Vec<u8>,
    },
    /// All chunks of an array dropped (`delete_array`).
    DeleteArray { array_id: u64, chunk_count: u64 },
}

const KIND_STATEMENT: u8 = 1;
const KIND_TURTLE_DEFAULT: u8 = 2;
const KIND_TURTLE_NAMED: u8 = 3;
const KIND_CHECKPOINT: u8 = 4;
const KIND_BEGIN_ARRAY: u8 = 5;
const KIND_PUT_CHUNK: u8 = 6;
const KIND_DELETE_ARRAY: u8 = 7;

/// Serialise `(lsn, record)` into a frame payload.
pub fn encode_payload(lsn: u64, record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + 16);
    out.extend_from_slice(&lsn.to_le_bytes());
    match record {
        WalRecord::Statement(text) => {
            out.push(KIND_STATEMENT);
            out.extend_from_slice(text.as_bytes());
        }
        WalRecord::TurtleDefault(text) => {
            out.push(KIND_TURTLE_DEFAULT);
            out.extend_from_slice(text.as_bytes());
        }
        WalRecord::TurtleNamed { graph, text } => {
            out.push(KIND_TURTLE_NAMED);
            out.extend_from_slice(&(graph.len() as u32).to_le_bytes());
            out.extend_from_slice(graph.as_bytes());
            out.extend_from_slice(text.as_bytes());
        }
        WalRecord::Checkpoint { wal_lsn } => {
            out.push(KIND_CHECKPOINT);
            out.extend_from_slice(&wal_lsn.to_le_bytes());
        }
        WalRecord::BeginArray {
            array_id,
            chunk_bytes,
        } => {
            out.push(KIND_BEGIN_ARRAY);
            out.extend_from_slice(&array_id.to_le_bytes());
            out.extend_from_slice(&chunk_bytes.to_le_bytes());
        }
        WalRecord::PutChunk {
            array_id,
            chunk_id,
            data,
        } => {
            out.push(KIND_PUT_CHUNK);
            out.extend_from_slice(&array_id.to_le_bytes());
            out.extend_from_slice(&chunk_id.to_le_bytes());
            out.extend_from_slice(data);
        }
        WalRecord::DeleteArray {
            array_id,
            chunk_count,
        } => {
            out.push(KIND_DELETE_ARRAY);
            out.extend_from_slice(&array_id.to_le_bytes());
            out.extend_from_slice(&chunk_count.to_le_bytes());
        }
    }
    out
}

/// Parse a frame payload back into `(lsn, record)`.
pub fn decode_payload(bytes: &[u8]) -> Result<(u64, WalRecord), String> {
    if bytes.len() < 9 {
        return Err(format!(
            "wal record payload too short: {} bytes",
            bytes.len()
        ));
    }
    let lsn = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
    let body = &bytes[9..];
    let text = |b: &[u8]| -> Result<String, String> {
        String::from_utf8(b.to_vec()).map_err(|e| format!("wal record not UTF-8: {e}"))
    };
    let record = match bytes[8] {
        KIND_STATEMENT => WalRecord::Statement(text(body)?),
        KIND_TURTLE_DEFAULT => WalRecord::TurtleDefault(text(body)?),
        KIND_TURTLE_NAMED => {
            if body.len() < 4 {
                return Err("named-turtle record missing graph length".into());
            }
            let name_len = u32::from_le_bytes(body[..4].try_into().expect("4 bytes")) as usize;
            if body.len() < 4 + name_len {
                return Err("named-turtle record shorter than its graph name".into());
            }
            WalRecord::TurtleNamed {
                graph: text(&body[4..4 + name_len])?,
                text: text(&body[4 + name_len..])?,
            }
        }
        KIND_CHECKPOINT => {
            if body.len() < 8 {
                return Err("checkpoint record missing LSN".into());
            }
            WalRecord::Checkpoint {
                wal_lsn: u64::from_le_bytes(body[..8].try_into().expect("8 bytes")),
            }
        }
        KIND_BEGIN_ARRAY => {
            if body.len() < 16 {
                return Err("begin-array record too short".into());
            }
            WalRecord::BeginArray {
                array_id: u64::from_le_bytes(body[..8].try_into().expect("8 bytes")),
                chunk_bytes: u64::from_le_bytes(body[8..16].try_into().expect("8 bytes")),
            }
        }
        KIND_PUT_CHUNK => {
            if body.len() < 16 {
                return Err("put-chunk record shorter than its key".into());
            }
            WalRecord::PutChunk {
                array_id: u64::from_le_bytes(body[..8].try_into().expect("8 bytes")),
                chunk_id: u64::from_le_bytes(body[8..16].try_into().expect("8 bytes")),
                data: body[16..].to_vec(),
            }
        }
        KIND_DELETE_ARRAY => {
            if body.len() < 16 {
                return Err("delete-array record too short".into());
            }
            WalRecord::DeleteArray {
                array_id: u64::from_le_bytes(body[..8].try_into().expect("8 bytes")),
                chunk_count: u64::from_le_bytes(body[8..16].try_into().expect("8 bytes")),
            }
        }
        other => return Err(format!("unknown wal record kind {other}")),
    };
    Ok((lsn, record))
}

/// Deterministic "power failure" for crash-recovery testing: the raw
/// write that crosses `at_bytes` (counted from WAL open, headers
/// included) persists only a prefix, and every later WAL operation
/// fails as if the process died.
#[derive(Debug, Clone, Copy)]
pub struct CrashPlan {
    /// Total bytes the WAL is allowed to persist before the "failure".
    pub at_bytes: u64,
    /// Model a torn sector: follow the persisted prefix with up to 8
    /// seeded garbage bytes instead of ending cleanly.
    pub garbage: bool,
    /// Seed for the garbage bytes.
    pub seed: u64,
}

struct CrashState {
    remaining: u64,
    garbage: bool,
    rng: u64,
    crashed: bool,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn simulated_crash() -> StorageError {
    StorageError::Backend("simulated crash: wal writer is dead".into())
}

/// Counters the durability layer surfaces through `stats_report`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (acknowledged or not).
    pub records_appended: u64,
    /// Record bytes appended, frame headers included.
    pub bytes_appended: u64,
    /// fsync calls issued by the writer.
    pub fsyncs: u64,
    /// Bytes covered by those fsyncs.
    pub bytes_fsynced: u64,
    /// Segment rotations (size-triggered or checkpoint-triggered).
    pub segments_rotated: u64,
    /// Checkpoint truncations performed.
    pub checkpoints: u64,
}

/// Writer configuration.
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    pub policy: FsyncPolicy,
    /// Rotate to a fresh segment once the current one exceeds this.
    pub segment_bytes: u64,
    /// Optional deterministic crash injection.
    pub crash: Option<CrashPlan>,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            policy: FsyncPolicy::Always,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            crash: None,
        }
    }
}

/// One segment file discovered by a scan.
#[derive(Debug, Clone)]
pub struct SegmentInfo {
    pub index: u64,
    pub start_lsn: u64,
    pub path: PathBuf,
}

/// Result of scanning a WAL directory.
#[derive(Debug)]
pub struct WalScan {
    /// Segments in index order. A final segment with an unreadable
    /// header is *excluded* (see `invalid_final_segment`).
    pub segments: Vec<SegmentInfo>,
    /// Every decodable record, in LSN order.
    pub records: Vec<(u64, WalRecord)>,
    /// Byte offset in the final segment where a torn tail begins, if
    /// one was found.
    pub torn_tail_at: Option<u64>,
    /// A final segment whose 16-byte header itself was torn; the file
    /// carries no records and is deleted on writer open.
    pub invalid_final_segment: Option<PathBuf>,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.log"))
}

fn segment_indices(dir: &Path) -> Result<Vec<u64>, StorageError> {
    let mut indices = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(num) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
        {
            if let Ok(index) = num.parse::<u64>() {
                indices.push(index);
            }
        }
    }
    indices.sort_unstable();
    Ok(indices)
}

fn fsync_dir(dir: &Path) -> Result<(), StorageError> {
    // Directory fsync makes renames/creates/unlinks durable. Some
    // filesystems refuse to sync a directory handle; that is their
    // durability ceiling, not an error we can act on.
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
    Ok(())
}

/// Read-side of the log: scans a WAL directory without modifying it.
pub struct WalReader;

impl WalReader {
    /// Scan every segment, decoding records in order. Corruption in a
    /// non-final segment is a hard error; any decode failure in the
    /// final segment is reported as a torn tail.
    pub fn scan(dir: &Path) -> Result<WalScan, StorageError> {
        let mut scan = WalScan {
            segments: Vec::new(),
            records: Vec::new(),
            torn_tail_at: None,
            invalid_final_segment: None,
        };
        if !dir.exists() {
            return Ok(scan);
        }
        let indices = segment_indices(dir)?;
        let last = match indices.last() {
            Some(&last) => last,
            None => return Ok(scan),
        };
        for &index in &indices {
            let path = segment_path(dir, index);
            let is_final = index == last;
            let mut bytes = Vec::new();
            File::open(&path)?.read_to_end(&mut bytes)?;
            if bytes.len() < SEGMENT_HEADER || bytes[..4] != SEGMENT_MAGIC {
                if is_final {
                    // The creating write itself was torn; no records
                    // can live here.
                    scan.invalid_final_segment = Some(path);
                    break;
                }
                // `Backend`, not `Corrupt`: WAL damage outside the
                // final segment is not transient and must not be
                // retried away.
                return Err(StorageError::Backend(format!(
                    "wal segment {} has a damaged header",
                    path.display()
                )));
            }
            let start_lsn = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
            scan.segments.push(SegmentInfo {
                index,
                start_lsn,
                path: path.clone(),
            });
            let mut offset = SEGMENT_HEADER;
            while offset < bytes.len() {
                let rest = &bytes[offset..];
                let decoded = frame::payload_len(&rest[..rest.len().min(frame::FRAME_HEADER)])
                    .and_then(|len| rest.get(..frame::FRAME_HEADER + len))
                    .map(frame::decode)
                    .unwrap_or(Err(frame::FrameError::Truncated {
                        expected: frame::FRAME_HEADER,
                        got: rest.len(),
                    }));
                let record = match decoded {
                    Ok(payload) => decode_payload(&payload),
                    Err(e) => Err(e.to_string()),
                };
                match record {
                    Ok((lsn, record)) => {
                        scan.records.push((lsn, record));
                        let len = frame::payload_len(&rest[..frame::FRAME_HEADER])
                            .expect("decoded frame has a valid header");
                        offset += frame::FRAME_HEADER + len;
                    }
                    Err(reason) => {
                        if is_final {
                            scan.torn_tail_at = Some(offset as u64);
                            return Ok(scan);
                        }
                        return Err(StorageError::Backend(format!(
                            "wal segment {} corrupt at offset {offset}: {reason}",
                            path.display()
                        )));
                    }
                }
            }
        }
        Ok(scan)
    }
}

/// What `WalWriter::open` recovered before positioning for append.
#[derive(Debug)]
pub struct WalRecovery {
    /// Every complete record on disk, in LSN order.
    pub records: Vec<(u64, WalRecord)>,
    /// Whether a torn tail (or torn segment header) was truncated away.
    pub truncated_tail: bool,
    /// Segments present after recovery.
    pub segments: u64,
}

/// Append-side of the log.
pub struct WalWriter {
    dir: PathBuf,
    file: File,
    /// `(index, start_lsn)` of every live segment, current one last.
    segments: Vec<(u64, u64)>,
    segment_written: u64,
    segment_limit: u64,
    next_lsn: u64,
    policy: FsyncPolicy,
    last_fsync: Instant,
    pending_bytes: u64,
    stats: WalStats,
    crash: Option<CrashState>,
}

impl WalWriter {
    /// Open (or create) the WAL in `dir`: scan existing segments,
    /// truncate any torn tail, and position for append. Returns the
    /// writer plus everything recovered for replay.
    pub fn open(dir: &Path, options: WalOptions) -> Result<(WalWriter, WalRecovery), StorageError> {
        fs::create_dir_all(dir)?;
        let mut scan = WalReader::scan(dir)?;
        let mut truncated_tail = false;
        if let Some(path) = scan.invalid_final_segment.take() {
            fs::remove_file(&path)?;
            truncated_tail = true;
        }
        if let Some(offset) = scan.torn_tail_at {
            let path = &scan
                .segments
                .last()
                .expect("torn tail implies a segment")
                .path;
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(offset)?;
            file.sync_all()?;
            truncated_tail = true;
        }
        let next_lsn = scan
            .records
            .last()
            .map(|&(lsn, _)| lsn + 1)
            .or_else(|| scan.segments.last().map(|s| s.start_lsn))
            .unwrap_or(0);

        let crash = options.crash.map(|plan| CrashState {
            remaining: plan.at_bytes,
            garbage: plan.garbage,
            rng: plan.seed,
            crashed: false,
        });
        let writer = match scan.segments.last() {
            Some(info) => {
                let file = OpenOptions::new().append(true).open(&info.path)?;
                let segment_written = file.metadata()?.len();
                WalWriter {
                    dir: dir.to_path_buf(),
                    file,
                    segments: scan
                        .segments
                        .iter()
                        .map(|s| (s.index, s.start_lsn))
                        .collect(),
                    segment_written,
                    segment_limit: options.segment_bytes.max(SEGMENT_HEADER as u64 + 1),
                    next_lsn,
                    policy: options.policy,
                    last_fsync: Instant::now(),
                    pending_bytes: 0,
                    stats: WalStats::default(),
                    crash,
                }
            }
            None => {
                let path = segment_path(dir, 0);
                let file = OpenOptions::new()
                    .create(true)
                    .truncate(true)
                    .write(true)
                    .open(&path)?;
                let mut writer = WalWriter {
                    dir: dir.to_path_buf(),
                    file,
                    segments: vec![(0, next_lsn)],
                    segment_written: 0,
                    segment_limit: options.segment_bytes.max(SEGMENT_HEADER as u64 + 1),
                    next_lsn,
                    policy: options.policy,
                    last_fsync: Instant::now(),
                    pending_bytes: 0,
                    stats: WalStats::default(),
                    crash,
                };
                writer.write_segment_header(next_lsn)?;
                fsync_dir(dir)?;
                writer
            }
        };
        // Whatever the policy, start from a clean fsync baseline.
        if writer.policy == FsyncPolicy::Always {
            writer.file.sync_all()?;
        }
        let recovery = WalRecovery {
            records: scan.records,
            truncated_tail,
            segments: writer.segments.len() as u64,
        };
        Ok((writer, recovery))
    }

    fn write_segment_header(&mut self, start_lsn: u64) -> Result<(), StorageError> {
        let mut header = Vec::with_capacity(SEGMENT_HEADER);
        header.extend_from_slice(&SEGMENT_MAGIC);
        header.extend_from_slice(&[0u8; 4]);
        header.extend_from_slice(&start_lsn.to_le_bytes());
        self.raw_write(&header)?;
        self.segment_written = SEGMENT_HEADER as u64;
        Ok(())
    }

    /// Write through the crash gate: the write that crosses the byte
    /// budget persists only a prefix (plus optional torn-sector
    /// garbage), then the writer is permanently dead.
    fn raw_write(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        if let Some(crash) = self.crash.as_mut() {
            if crash.crashed {
                return Err(simulated_crash());
            }
            if (bytes.len() as u64) > crash.remaining {
                let keep = crash.remaining as usize;
                let mut torn = bytes[..keep].to_vec();
                if crash.garbage {
                    let junk = (bytes.len() - keep).min(8);
                    for _ in 0..junk {
                        torn.push((splitmix64(&mut crash.rng) & 0xFF) as u8);
                    }
                }
                crash.crashed = true;
                self.file.write_all(&torn)?;
                let _ = self.file.sync_all();
                return Err(simulated_crash());
            }
            crash.remaining -= bytes.len() as u64;
        }
        self.file.write_all(bytes)?;
        Ok(())
    }

    fn fsync(&mut self) -> Result<(), StorageError> {
        if let Some(crash) = &self.crash {
            if crash.crashed {
                return Err(simulated_crash());
            }
        }
        let span = ssdm_obs::Span::start(obs_fsync_hist());
        self.file.sync_data()?;
        drop(span);
        self.stats.fsyncs += 1;
        self.stats.bytes_fsynced += self.pending_bytes;
        self.pending_bytes = 0;
        self.last_fsync = Instant::now();
        Ok(())
    }

    /// Append one record. Returns its LSN once the record is as durable
    /// as the fsync policy promises — an `Ok` here is the commit
    /// acknowledgement.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, StorageError> {
        if self.segment_written >= self.segment_limit {
            self.rotate()?;
        }
        let lsn = self.next_lsn;
        let bytes = frame::encode(&encode_payload(lsn, record));
        self.raw_write(&bytes)?;
        self.segment_written += bytes.len() as u64;
        self.pending_bytes += bytes.len() as u64;
        self.stats.records_appended += 1;
        self.stats.bytes_appended += bytes.len() as u64;
        match self.policy {
            FsyncPolicy::Always => self.fsync()?,
            FsyncPolicy::Interval(period) => {
                if self.last_fsync.elapsed() >= period {
                    self.fsync()?;
                }
            }
            FsyncPolicy::Off => {}
        }
        self.next_lsn = lsn + 1;
        Ok(lsn)
    }

    /// Force pending bytes to durable media regardless of policy.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        if self.pending_bytes > 0 || self.policy != FsyncPolicy::Always {
            self.fsync()?;
        }
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), StorageError> {
        // The finished segment must be fully durable before a later
        // segment exists, or the "corruption only in the final segment"
        // recovery invariant breaks.
        self.fsync()?;
        let index = self.segments.last().expect("at least one segment").0 + 1;
        let start_lsn = self.next_lsn;
        let path = segment_path(&self.dir, index);
        self.file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path)?;
        self.segments.push((index, start_lsn));
        self.write_segment_header(start_lsn)?;
        fsync_dir(&self.dir)?;
        self.stats.segments_rotated += 1;
        Ok(())
    }

    /// Checkpoint bookkeeping: rotate to a fresh segment starting at
    /// the current LSN and delete every segment wholly below
    /// `up_to_lsn` (the recovery LSN embedded in the just-published
    /// snapshot). Records at or above `up_to_lsn` are always retained.
    pub fn checkpoint_truncate(&mut self, up_to_lsn: u64) -> Result<(), StorageError> {
        self.rotate()?;
        let mut kept = Vec::with_capacity(self.segments.len());
        for pair in 0..self.segments.len() {
            let (index, _start) = self.segments[pair];
            let next_start = self.segments.get(pair + 1).map(|&(_, s)| s);
            match next_start {
                // A segment is disposable iff every LSN it can contain
                // is below the snapshot's recovery LSN.
                Some(next_start) if next_start <= up_to_lsn => {
                    fs::remove_file(segment_path(&self.dir, index))?;
                }
                _ => kept.push(self.segments[pair]),
            }
        }
        self.segments = kept;
        fsync_dir(&self.dir)?;
        self.stats.checkpoints += 1;
        self.append(&WalRecord::Checkpoint { wal_lsn: up_to_lsn })?;
        Ok(())
    }

    /// Next LSN to be assigned; records with `lsn < next_lsn()` are on
    /// disk (subject to the fsync policy).
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Guarantee LSNs at or above `lsn` are never assigned twice, even
    /// if the log was deleted out from under a surviving snapshot.
    pub fn ensure_lsn_at_least(&mut self, lsn: u64) {
        self.next_lsn = self.next_lsn.max(lsn);
    }

    /// Live segment count.
    pub fn segment_count(&self) -> u64 {
        self.segments.len() as u64
    }

    pub fn stats(&self) -> WalStats {
        self.stats
    }
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("dir", &self.dir)
            .field("next_lsn", &self.next_lsn)
            .field("segments", &self.segments)
            .field("policy", &self.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ssdm-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Statement("INSERT DATA { <urn:s> <urn:p> 1 . }".into()),
            WalRecord::TurtleDefault("<urn:a> <urn:b> ( 1 2 3 ) .".into()),
            WalRecord::TurtleNamed {
                graph: "http://example.org/g".into(),
                text: "<urn:x> <urn:y> \"z\" .".into(),
            },
            WalRecord::Checkpoint { wal_lsn: 42 },
            WalRecord::BeginArray {
                array_id: 7,
                chunk_bytes: 1024,
            },
            WalRecord::PutChunk {
                array_id: 7,
                chunk_id: 3,
                data: vec![0xDE, 0xAD, 0x00, 0xBE, 0xEF],
            },
            WalRecord::DeleteArray {
                array_id: 7,
                chunk_count: 4,
            },
        ]
    }

    #[test]
    fn payload_round_trip() {
        for (i, record) in sample_records().iter().enumerate() {
            let payload = encode_payload(i as u64, record);
            let (lsn, decoded) = decode_payload(&payload).unwrap();
            assert_eq!(lsn, i as u64);
            assert_eq!(&decoded, record);
        }
    }

    #[test]
    fn append_reopen_replays_everything() {
        let dir = tmp_dir("reopen");
        let records = sample_records();
        {
            let (mut writer, recovery) = WalWriter::open(&dir, WalOptions::default()).unwrap();
            assert!(recovery.records.is_empty());
            for record in &records {
                writer.append(record).unwrap();
            }
            assert_eq!(writer.stats().records_appended, records.len() as u64);
            assert_eq!(writer.stats().fsyncs, records.len() as u64);
        }
        let (writer, recovery) = WalWriter::open(&dir, WalOptions::default()).unwrap();
        assert!(!recovery.truncated_tail);
        assert_eq!(recovery.records.len(), records.len());
        for (i, (lsn, record)) in recovery.records.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
            assert_eq!(record, &records[i]);
        }
        assert_eq!(writer.next_lsn(), records.len() as u64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_spreads_records_across_segments() {
        let dir = tmp_dir("rotate");
        let options = WalOptions {
            segment_bytes: 64,
            ..WalOptions::default()
        };
        {
            let (mut writer, _) = WalWriter::open(&dir, options).unwrap();
            for i in 0..10u64 {
                writer
                    .append(&WalRecord::Statement(format!(
                        "INSERT DATA {{ <urn:s{i}> <urn:p> {i} . }}"
                    )))
                    .unwrap();
            }
            assert!(writer.segment_count() > 1);
            assert!(writer.stats().segments_rotated > 0);
        }
        let (_, recovery) = WalWriter::open(&dir, options).unwrap();
        assert_eq!(recovery.records.len(), 10);
        assert!(recovery.segments > 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_at_first_bad_frame() {
        let dir = tmp_dir("torn");
        {
            let (mut writer, _) = WalWriter::open(&dir, WalOptions::default()).unwrap();
            for record in sample_records() {
                writer.append(&record).unwrap();
            }
        }
        // Tear the last record: chop 3 bytes off the segment.
        let path = segment_path(&dir, 0);
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let all = sample_records().len();
        let (mut writer, recovery) = WalWriter::open(&dir, WalOptions::default()).unwrap();
        assert!(recovery.truncated_tail);
        assert_eq!(recovery.records.len(), all - 1);
        // The writer appends cleanly after the truncation point.
        writer
            .append(&WalRecord::Statement("ASK { }".into()))
            .unwrap();
        drop(writer);
        let (_, recovery) = WalWriter::open(&dir, WalOptions::default()).unwrap();
        assert!(!recovery.truncated_tail);
        assert_eq!(recovery.records.len(), all);
        assert_eq!(recovery.records[all - 1].0, (all - 1) as u64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_non_final_segment_is_a_hard_error() {
        let dir = tmp_dir("hard-corrupt");
        let options = WalOptions {
            segment_bytes: 64,
            ..WalOptions::default()
        };
        {
            let (mut writer, _) = WalWriter::open(&dir, options).unwrap();
            for i in 0..10u64 {
                writer
                    .append(&WalRecord::Statement(format!(
                        "INSERT DATA {{ <urn:s{i}> <urn:p> {i} . }}"
                    )))
                    .unwrap();
            }
            assert!(writer.segment_count() > 2);
        }
        // Flip a payload byte in the middle of the first segment.
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        let mid = SEGMENT_HEADER + frame::FRAME_HEADER + 4;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            WalReader::scan(&dir),
            Err(StorageError::Backend(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncate_drops_old_segments_keeps_tail() {
        let dir = tmp_dir("checkpoint");
        let options = WalOptions {
            segment_bytes: 64,
            ..WalOptions::default()
        };
        let (mut writer, _) = WalWriter::open(&dir, options).unwrap();
        for i in 0..8u64 {
            writer
                .append(&WalRecord::Statement(format!(
                    "INSERT DATA {{ <urn:s{i}> <urn:p> {i} . }}"
                )))
                .unwrap();
        }
        let lsn = writer.next_lsn();
        writer.checkpoint_truncate(lsn).unwrap();
        assert_eq!(writer.stats().checkpoints, 1);
        // Everything below the checkpoint LSN is gone; the checkpoint
        // marker itself survives in the fresh segment.
        let scan = WalReader::scan(&dir).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].1, WalRecord::Checkpoint { wal_lsn: lsn });
        assert!(scan.records[0].0 >= lsn);
        // Post-checkpoint appends land after the marker.
        writer
            .append(&WalRecord::Statement(
                "INSERT DATA { <urn:t> <urn:p> 9 . }".into(),
            ))
            .unwrap();
        drop(writer);
        let (_, recovery) = WalWriter::open(&dir, options).unwrap();
        assert_eq!(recovery.records.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_plan_tears_exactly_at_budget_and_recovery_truncates() {
        let dir = tmp_dir("crash");
        let record = WalRecord::Statement("INSERT DATA { <urn:s> <urn:p> 1 . }".into());
        let record_len = frame::encode(&encode_payload(0, &record)).len() as u64;
        // Budget: header + one full record + half of the second.
        let budget = SEGMENT_HEADER as u64 + record_len + record_len / 2;
        let options = WalOptions {
            crash: Some(CrashPlan {
                at_bytes: budget,
                garbage: true,
                seed: 11,
            }),
            ..WalOptions::default()
        };
        let (mut writer, _) = WalWriter::open(&dir, options).unwrap();
        assert!(writer.append(&record).is_ok());
        assert!(writer.append(&record).is_err());
        // Dead forever after.
        assert!(writer.append(&record).is_err());
        drop(writer);
        let (_, recovery) = WalWriter::open(&dir, WalOptions::default()).unwrap();
        assert!(recovery.truncated_tail);
        assert_eq!(recovery.records.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_during_segment_creation_recovers_to_empty() {
        let dir = tmp_dir("crash-header");
        let options = WalOptions {
            crash: Some(CrashPlan {
                at_bytes: 7,
                garbage: false,
                seed: 1,
            }),
            ..WalOptions::default()
        };
        assert!(WalWriter::open(&dir, options).is_err());
        let (writer, recovery) = WalWriter::open(&dir, WalOptions::default()).unwrap();
        assert!(recovery.truncated_tail);
        assert!(recovery.records.is_empty());
        assert_eq!(writer.next_lsn(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_policy_parses_cli_spellings() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("off"), Some(FsyncPolicy::Off));
        assert_eq!(
            FsyncPolicy::parse("interval:250"),
            Some(FsyncPolicy::Interval(Duration::from_millis(250)))
        );
        assert_eq!(
            FsyncPolicy::parse("interval"),
            Some(FsyncPolicy::Interval(Duration::from_millis(100)))
        );
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(
            FsyncPolicy::Interval(Duration::from_millis(250)).to_string(),
            "interval:250"
        );
    }

    #[test]
    fn fsync_policy_zero_interval_normalises_to_always() {
        // `interval:0` used to be accepted verbatim: it fsynced on
        // every append (a zero period is always elapsed) while
        // *reporting* itself as `interval:0` — the displayed policy and
        // the durability behaviour disagreed.
        assert_eq!(FsyncPolicy::parse("interval:0"), Some(FsyncPolicy::Always));
        assert_eq!(
            FsyncPolicy::parse("interval:0").unwrap().to_string(),
            "always"
        );
    }

    #[test]
    fn fsync_policy_parse_display_round_trips() {
        for policy in [
            FsyncPolicy::Always,
            FsyncPolicy::Off,
            FsyncPolicy::Interval(Duration::from_millis(1)),
            FsyncPolicy::Interval(Duration::from_millis(100)),
            FsyncPolicy::Interval(Duration::from_millis(250)),
        ] {
            let spelled = policy.to_string();
            assert_eq!(
                FsyncPolicy::parse(&spelled),
                Some(policy),
                "round-trip through {spelled:?}"
            );
        }
    }

    #[test]
    fn off_policy_never_fsyncs_interval_batches() {
        let dir = tmp_dir("policies");
        let options = WalOptions {
            policy: FsyncPolicy::Off,
            ..WalOptions::default()
        };
        let (mut writer, _) = WalWriter::open(&dir, options).unwrap();
        for record in sample_records() {
            writer.append(&record).unwrap();
        }
        assert_eq!(writer.stats().fsyncs, 0);
        writer.sync().unwrap();
        assert_eq!(writer.stats().fsyncs, 1);
        assert_eq!(writer.stats().bytes_fsynced, writer.stats().bytes_appended);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seek_is_not_needed_records_are_append_only() {
        // Guard against accidental use of seek-based positioning: the
        // append file handle is opened in append mode on reopen, so
        // stream position starts at the end.
        let dir = tmp_dir("append-only");
        {
            let (mut writer, _) = WalWriter::open(&dir, WalOptions::default()).unwrap();
            writer
                .append(&WalRecord::Statement(
                    "INSERT DATA { <urn:s> <urn:p> 1 . }".into(),
                ))
                .unwrap();
        }
        let (mut writer, _) = WalWriter::open(&dir, WalOptions::default()).unwrap();
        writer
            .append(&WalRecord::Statement(
                "INSERT DATA { <urn:s> <urn:p> 2 . }".into(),
            ))
            .unwrap();
        drop(writer);
        let scan = WalReader::scan(&dir).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].0, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
