//! The resilience-composition gap: fault plans through the *parallel*
//! fetch pipeline.
//!
//! PR 1's fault matrix exercised `CachedChunkStore` over
//! `ResilientChunkStore` over the injector sequentially only (the
//! injector advertised `supports_parallel: false`). Here the injector
//! opts in via `enable_parallel` and the full stack is driven through
//! `parallel::fetch_plan` at several worker counts, asserting:
//!
//! * results bit-identical to a clean, unwrapped store;
//! * **exact retry accounting** — the injector's counter-indexed
//!   decision stream makes fault *totals* schedule-independent, and
//!   each failing injected fault (transient, short read, bit flip)
//!   costs exactly one retry when the budget absorbs it, so
//!   `retries == injected(Transient) + injected(ShortRead) +
//!   injected(BitFlip)` must hold exactly, even with 8 workers racing;
//! * cache composition: a second pass over warm keys never reaches the
//!   injector.
//!
//! The plan seed honours `SSDM_FAULT_SEED` (CI runs seeds 1, 2, 3).

use ssdm_storage::parallel::{fetch_plan, fetch_plan_merged};
use ssdm_storage::spd::{plan as spd_plan, SpdOptions};
use ssdm_storage::{
    CachedChunkStore, ChunkStore, FaultInjectingChunkStore, FaultKind, FaultPlan, MemoryChunkStore,
    ResilientChunkStore, RetryPolicy,
};

const CHUNKS: u64 = 64;

type FaultyStack =
    CachedChunkStore<ResilientChunkStore<FaultInjectingChunkStore<MemoryChunkStore>>>;

fn chunk_payload(c: u64) -> Vec<u8> {
    (0..48)
        .map(|b| (c as u8).wrapping_mul(13).wrapping_add(b))
        .collect()
}

fn clean_store() -> MemoryChunkStore {
    let mut s = MemoryChunkStore::new();
    for c in 0..CHUNKS {
        s.put_chunk(1, c, &chunk_payload(c)).unwrap();
    }
    s
}

fn faulty_stack(fault_plan: FaultPlan, cache_bytes: usize) -> FaultyStack {
    let mut injected = FaultInjectingChunkStore::new(clean_store(), fault_plan);
    injected.enable_parallel();
    let resilient = ResilientChunkStore::new(injected, RetryPolicy::aggressive());
    CachedChunkStore::new(resilient, cache_bytes)
}

fn injector(stack: &FaultyStack) -> &FaultInjectingChunkStore<MemoryChunkStore> {
    stack.inner().inner()
}

fn seed() -> u64 {
    FaultPlan::seed_from_env(1)
}

/// Retries the resilient layer *must* have spent: one per injected
/// fault of a failing flavor (latency spikes succeed, so they are
/// free).
fn expected_retries(stack: &FaultyStack) -> u64 {
    let fs = injector(stack).fault_stats();
    fs.injected_of(FaultKind::Transient)
        + fs.injected_of(FaultKind::ShortRead)
        + fs.injected_of(FaultKind::BitFlip)
}

#[test]
fn injector_parallel_capability_is_opt_in() {
    let no_opt_in = CachedChunkStore::new(
        ResilientChunkStore::new(
            FaultInjectingChunkStore::new(clean_store(), FaultPlan::transient_reads(1, 0.1)),
            RetryPolicy::aggressive(),
        ),
        1 << 20,
    );
    assert!(!no_opt_in.capabilities().supports_parallel);
    let opted = faulty_stack(FaultPlan::transient_reads(1, 0.1), 1 << 20);
    assert!(opted.capabilities().supports_parallel);
}

#[test]
fn parallel_fetch_over_faulty_stack_is_bit_identical() {
    let clean = clean_store();
    // A plan mixing range and IN statements: dense run, strided run,
    // scattered leftovers.
    let ids: Vec<u64> = (0..24)
        .chain((24..48).step_by(2))
        .chain([51, 55, 62, 63])
        .collect();
    let ops = spd_plan(&ids, SpdOptions::default());
    let (expected, _) = fetch_plan_merged(&clean, 1, &ops, &ids, 4).unwrap();

    for workers in [1, 2, 4, 8] {
        // Cache sized to zero so every iteration re-runs the gauntlet.
        // Faults are drawn per *statement*, and SPD compresses this id
        // list into a handful of statements, so the rate and round count
        // are sized for every statement shape to fail at least once
        // under seeds 1-3.
        let stack = faulty_stack(FaultPlan::transient_reads(seed(), 0.30), 0);
        for round in 0..16 {
            let (got, _) = fetch_plan_merged(&stack, 1, &ops, &ids, workers)
                .expect("aggressive retries must absorb a 30% transient plan");
            assert_eq!(got, expected, "workers={workers} round={round}");
        }
        let res = stack.resilience_stats();
        assert!(res.retries > 0, "30% over 16 rounds must fire: {res:?}");
        assert_eq!(res.giveups, 0, "budget must absorb every burst: {res:?}");
        assert_eq!(
            res.retries,
            expected_retries(&stack),
            "workers={workers}: each failing fault costs exactly one retry"
        );
    }
}

#[test]
fn retry_accounting_stays_exact_under_concurrency() {
    // Heavier traffic, per-chunk statements (every chunk its own op) so
    // worker interleaving is maximal.
    let ops: Vec<ssdm_storage::spd::FetchOp> = (0..CHUNKS)
        .map(|c| ssdm_storage::spd::FetchOp::In(vec![c]))
        .collect();
    let needed: Vec<u64> = (0..CHUNKS).collect();
    let stack = faulty_stack(FaultPlan::transient_reads(seed(), 0.25), 0);
    for _ in 0..8 {
        let (rows, fallbacks) = fetch_plan(&stack, 1, &ops, &needed, 8)
            .expect("single-chunk ops have no fallback but retries absorb faults");
        assert_eq!(rows.len(), CHUNKS as usize);
        assert_eq!(fallbacks, 0, "resilient layer must hide faults from APR");
    }
    let res = stack.resilience_stats();
    let fs = injector(&stack).fault_stats();
    assert_eq!(res.giveups, 0);
    assert_eq!(res.retries, expected_retries(&stack));
    // Totals are schedule-independent: reads seen (`ops[0]`) is exactly
    // the statement count issued beneath the cacheless stack plus one
    // re-issue per retry, faults or not.
    assert_eq!(
        fs.ops[0],
        res.retries + 8 * CHUNKS,
        "every statement and every retry re-draws exactly once"
    );
}

#[test]
fn warm_cache_shields_the_injector() {
    let ids: Vec<u64> = (0..CHUNKS).collect();
    let ops = spd_plan(&ids, SpdOptions::default());
    let stack = faulty_stack(FaultPlan::transient_reads(seed(), 0.15), 1 << 20);
    let (first, _) = fetch_plan_merged(&stack, 1, &ops, &ids, 4).unwrap();
    let ops_after_first = injector(&stack).fault_stats().ops;
    let (second, _) = fetch_plan_merged(&stack, 1, &ops, &ids, 4).unwrap();
    assert_eq!(first, second);
    assert_eq!(
        injector(&stack).fault_stats().ops,
        ops_after_first,
        "a warm cache must not let reads reach the injector"
    );
    let clean = clean_store();
    let (expected, _) = fetch_plan_merged(&clean, 1, &ops, &ids, 4).unwrap();
    assert_eq!(first, expected);
}
