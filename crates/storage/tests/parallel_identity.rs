//! Tentpole acceptance: `resolve_parallel` is **bit-identical** to
//! sequential `resolve` for every strategy, pattern, and worker count —
//! and the APR statement accounting stays exact, because the same
//! back-end statements execute, just concurrently.

use ssdm_array::NumArray;
use ssdm_storage::spd::SpdOptions;
use ssdm_storage::{
    ArrayStore, CachedChunkStore, Capabilities, ChunkStore, FaultInjectingChunkStore, FaultPlan,
    IoStats, MemoryChunkStore, ParallelConfig, RetrievalStrategy, SharedChunkRead, StorageError,
};

fn matrix() -> NumArray {
    NumArray::from_shape_fn(&[32, 32], |ix| {
        ((ix[0] * 131 + ix[1] * 17) as f64 * 0.37).into()
    })
}

fn strategies() -> Vec<RetrievalStrategy> {
    vec![
        RetrievalStrategy::Single,
        RetrievalStrategy::BufferedIn { buffer_size: 4 },
        RetrievalStrategy::SpdRange {
            options: SpdOptions::default(),
        },
        RetrievalStrategy::WholeArray,
    ]
}

/// Views covering single-chunk, multi-chunk, strided, and full access.
fn views(base: &ssdm_storage::ArrayProxy) -> Vec<ssdm_storage::ArrayProxy> {
    vec![
        base.subscript(0, 3).unwrap(),    // one row
        base.subscript(1, 5).unwrap(),    // one column, many chunks
        base.slice(0, 1, 3, 30).unwrap(), // strided rows
        base.slice(0, 4, 1, 11)
            .and_then(|p| p.slice(1, 4, 1, 11))
            .unwrap(), // block
        base.clone(),                     // whole
    ]
}

#[test]
fn parallel_resolution_is_bit_identical_with_exact_stats() {
    for strategy in strategies() {
        let mut store = ArrayStore::new(MemoryChunkStore::new());
        let base = store.store_array(&matrix(), 256).unwrap();
        for view in views(&base) {
            let seq = store.resolve(&view, strategy).unwrap();
            let seq_stats = store.last_stats();
            let seq_bits: Vec<u64> = seq
                .elements()
                .iter()
                .map(|n| n.as_f64().to_bits())
                .collect();
            for workers in [2, 4, 8] {
                let par = store
                    .resolve_parallel(&view, strategy, ParallelConfig::with_workers(workers))
                    .unwrap();
                let par_bits: Vec<u64> = par
                    .elements()
                    .iter()
                    .map(|n| n.as_f64().to_bits())
                    .collect();
                assert_eq!(par_bits, seq_bits, "{} workers={workers}", strategy.name());
                assert_eq!(par.shape(), seq.shape());
                let par_stats = store.last_stats();
                assert_eq!(
                    (
                        par_stats.statements,
                        par_stats.chunks_fetched,
                        par_stats.bytes_fetched
                    ),
                    (
                        seq_stats.statements,
                        seq_stats.chunks_fetched,
                        seq_stats.bytes_fetched
                    ),
                    "stats must not depend on concurrency ({} workers={workers})",
                    strategy.name()
                );
            }
        }
    }
}

#[test]
fn parallel_through_the_cache_stays_identical() {
    let mut store = ArrayStore::new(CachedChunkStore::new(MemoryChunkStore::new(), 1 << 20));
    let base = store.store_array(&matrix(), 256).unwrap();
    let col = base.subscript(1, 9).unwrap();
    let seq = store.resolve(&col, RetrievalStrategy::Single).unwrap();
    // Repeat with warm cache and workers: identical bits, zero backend
    // statements.
    store.backend_mut().reset_io_stats();
    let par = store
        .resolve_parallel(&col, RetrievalStrategy::Single, ParallelConfig::default())
        .unwrap();
    assert_eq!(par.elements(), seq.elements());
    assert_eq!(
        store.backend().io_stats().statements,
        0,
        "served from cache"
    );
    assert!(store.backend().cache_stats().hit_rate() > 0.99);
}

/// A back-end that *could* serve shared reads but declares it must not
/// (`supports_parallel: false`). Any call on the shared path is a
/// contract violation and panics.
struct NoParallelStore(MemoryChunkStore);

impl ChunkStore for NoParallelStore {
    fn put_chunk(&mut self, array_id: u64, chunk_id: u64, data: &[u8]) -> Result<(), StorageError> {
        self.0.put_chunk(array_id, chunk_id, data)
    }

    fn get_chunk(&mut self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        self.0.get_chunk(array_id, chunk_id)
    }

    fn delete_array(&mut self, array_id: u64, chunk_count: u64) -> Result<(), StorageError> {
        self.0.delete_array(array_id, chunk_count)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            supports_parallel: false,
            ..self.0.capabilities()
        }
    }

    fn io_stats(&self) -> IoStats {
        self.0.io_stats()
    }

    fn reset_io_stats(&mut self) {
        self.0.reset_io_stats()
    }
}

impl SharedChunkRead for NoParallelStore {
    fn read_chunk(&self, _: u64, _: u64) -> Result<Vec<u8>, StorageError> {
        panic!("shared read on a supports_parallel: false back-end")
    }

    fn read_chunks_in(&self, _: u64, _: &[u64]) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        panic!("shared read on a supports_parallel: false back-end")
    }

    fn read_chunk_range(
        &self,
        _: u64,
        _: u64,
        _: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        panic!("shared read on a supports_parallel: false back-end")
    }
}

#[test]
fn unsupported_backends_degrade_to_sequential() {
    // resolve_parallel must honor the capability flag and take the
    // sequential (&mut) path; the panicking SharedChunkRead impl proves
    // the shared path is never touched.
    let mut store = ArrayStore::new(NoParallelStore(MemoryChunkStore::new()));
    let base = store.store_array(&matrix(), 256).unwrap();
    let col = base.subscript(1, 2).unwrap();
    let seq = store.resolve(&col, RetrievalStrategy::Single).unwrap();
    let par = store
        .resolve_parallel(
            &col,
            RetrievalStrategy::Single,
            ParallelConfig::with_workers(4),
        )
        .unwrap();
    assert_eq!(seq.elements(), par.elements());
}

#[test]
fn fault_injector_opts_out_of_parallel_reads() {
    // The injector's deterministic schedule is keyed to operation
    // order, which concurrency would scramble — it must advertise the
    // sequential-only contract.
    let s = FaultInjectingChunkStore::new(MemoryChunkStore::new(), FaultPlan::default());
    assert!(!s.capabilities().supports_parallel);
    assert!(
        MemoryChunkStore::new().capabilities().supports_parallel,
        "the wrapped store alone does support it — the injector overrides"
    );
}

#[test]
fn one_worker_is_the_sequential_path() {
    let mut store = ArrayStore::new(MemoryChunkStore::new());
    let base = store.store_array(&matrix(), 256).unwrap();
    let view = base.subscript(1, 0).unwrap();
    let seq = store.resolve(&view, RetrievalStrategy::Single).unwrap();
    let one = store
        .resolve_parallel(
            &view,
            RetrievalStrategy::Single,
            ParallelConfig::with_workers(1),
        )
        .unwrap();
    assert_eq!(seq.elements(), one.elements());
}
