//! Satellite edge cases in APR plan construction:
//!
//! * SPD range plans where a regular stride repeatedly *crosses* chunk
//!   boundaries (stride not a divisor of elements-per-chunk) must still
//!   resolve correctly and cover every needed chunk;
//! * `BufferedIn` with a needed-chunk count that is an exact multiple
//!   of `buffer_size` must issue exactly `n / buffer_size` statements —
//!   no empty trailing `IN ()` batch.

use ssdm_array::NumArray;
use ssdm_storage::spd::SpdOptions;
use ssdm_storage::{ArrayStore, MemoryChunkStore, RetrievalStrategy};

#[test]
fn spd_strides_crossing_chunk_boundaries_resolve_exactly() {
    // 60 elements, 7 per chunk (56-byte chunks): stride 3 lands on
    // addresses 0,3,6,... which alternate between crossing and not
    // crossing the 7-element chunk seam.
    let v = NumArray::from_i64_shaped((0..60).collect(), &[60]).unwrap();
    for (chunk_bytes, stride) in [(56usize, 3usize), (56, 5), (40, 7), (24, 9)] {
        let mut store = ArrayStore::new(MemoryChunkStore::new());
        let base = store.store_array(&v, chunk_bytes).unwrap();
        let view = base.slice(0, 1, stride, 59).unwrap();
        let expected: Vec<i64> = (1..60).step_by(stride).map(|i| i as i64).collect();
        let got: Vec<i64> = store
            .resolve(
                &view,
                RetrievalStrategy::SpdRange {
                    options: SpdOptions::default(),
                },
            )
            .unwrap()
            .elements()
            .iter()
            .map(|n| n.as_i64())
            .collect();
        assert_eq!(got, expected, "chunk_bytes={chunk_bytes} stride={stride}");
        let stats = store.last_stats();
        assert!(stats.statements >= 1);
        assert!(
            stats.chunks_fetched as usize >= expected.len() * 8 / chunk_bytes,
            "must cover every chunk the stride touches"
        );
    }
}

#[test]
fn spd_stride_across_2d_chunk_seams_matches_whole_array() {
    // A column of a matrix whose row length is not a multiple of the
    // chunk's element count: consecutive column elements sit at
    // different offsets within their chunks.
    let m = NumArray::from_shape_fn(&[24, 9], |ix| (((ix[0] * 9 + ix[1]) as i64) * 3).into());
    let mut store = ArrayStore::new(MemoryChunkStore::new());
    let base = store.store_array(&m, 56).unwrap(); // 7 elems/chunk vs 9/row
    let col = base.subscript(1, 4).unwrap();
    let spd: Vec<i64> = store
        .resolve(
            &col,
            RetrievalStrategy::SpdRange {
                options: SpdOptions::default(),
            },
        )
        .unwrap()
        .elements()
        .iter()
        .map(|n| n.as_i64())
        .collect();
    let whole: Vec<i64> = store
        .resolve(&col, RetrievalStrategy::WholeArray)
        .unwrap()
        .elements()
        .iter()
        .map(|n| n.as_i64())
        .collect();
    assert_eq!(spd, whole);
    assert_eq!(spd, (0..24).map(|r| (r * 9 + 4) * 3).collect::<Vec<_>>());
}

#[test]
fn buffered_in_exact_multiple_has_no_empty_trailing_batch() {
    // 16 chunks needed, buffer_size 4 -> exactly 4 IN statements.
    let v = NumArray::from_i64_shaped((0..128).collect(), &[128]).unwrap();
    let mut store = ArrayStore::new(MemoryChunkStore::new());
    let base = store.store_array(&v, 64).unwrap(); // 8 elems/chunk, 16 chunks
    let got = store
        .resolve(&base, RetrievalStrategy::BufferedIn { buffer_size: 4 })
        .unwrap();
    assert_eq!(got.element_count(), 128);
    let stats = store.last_stats();
    assert_eq!(stats.chunks_fetched, 16);
    assert_eq!(
        stats.statements, 4,
        "16 chunks / buffer 4 = 4 statements, no empty trailing batch"
    );
}

#[test]
fn buffered_in_exact_multiple_under_various_buffers() {
    let v = NumArray::from_i64_shaped((0..96).collect(), &[96]).unwrap();
    for buffer_size in [1usize, 2, 3, 6, 12] {
        let mut store = ArrayStore::new(MemoryChunkStore::new());
        let base = store.store_array(&v, 64).unwrap(); // 12 chunks
        let got = store
            .resolve(&base, RetrievalStrategy::BufferedIn { buffer_size })
            .unwrap();
        assert_eq!(got.element_count(), 96);
        let stats = store.last_stats();
        assert_eq!(
            stats.statements as usize,
            12usize.div_ceil(buffer_size),
            "buffer_size={buffer_size}"
        );
        assert_eq!(stats.chunks_fetched, 12);
    }
}
