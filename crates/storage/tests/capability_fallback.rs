//! Satellite: a back-end whose [`Capabilities`] lack native `IN`-list
//! and range support must still serve `BufferedIn`/`SpdRange` plans —
//! the `ChunkStore` default methods delegate per chunk — and the
//! statement counts in `IoStats` must prove the downgrade happened.

use ssdm_array::NumArray;
use ssdm_storage::spd::SpdOptions;
use ssdm_storage::{
    ArrayStore, Capabilities, ChunkStore, IoStats, MemoryChunkStore, RetrievalStrategy,
    StorageError,
};

/// The most austere conforming back-end: single-chunk statements only,
/// every batched entry point left to the trait defaults.
struct SingleOnlyStore {
    inner: MemoryChunkStore,
    stats: IoStats,
}

impl SingleOnlyStore {
    fn new() -> Self {
        SingleOnlyStore {
            inner: MemoryChunkStore::new(),
            stats: IoStats::default(),
        }
    }
}

impl ChunkStore for SingleOnlyStore {
    fn put_chunk(&mut self, array_id: u64, chunk_id: u64, data: &[u8]) -> Result<(), StorageError> {
        self.inner.put_chunk(array_id, chunk_id, data)
    }

    fn get_chunk(&mut self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        let payload = self.inner.get_chunk(array_id, chunk_id)?;
        self.stats.statements += 1;
        self.stats.chunks_returned += 1;
        self.stats.bytes_returned += payload.len() as u64;
        Ok(payload)
    }

    fn delete_array(&mut self, array_id: u64, chunk_count: u64) -> Result<(), StorageError> {
        self.inner.delete_array(array_id, chunk_count)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            supports_in_list: false,
            supports_range: false,
            supports_cross_range: false,
            supports_parallel: false,
        }
    }

    fn io_stats(&self) -> IoStats {
        self.stats
    }

    fn reset_io_stats(&mut self) {
        self.stats = IoStats::default();
    }
}

#[test]
fn batched_plans_downgrade_to_per_chunk_statements() {
    let m = NumArray::from_i64_shaped((0..400).collect(), &[20, 20]).unwrap();
    let expected: Vec<i64> = (0..20).map(|r| r * 20 + 7).collect();

    for strategy in [
        RetrievalStrategy::BufferedIn { buffer_size: 8 },
        RetrievalStrategy::SpdRange {
            options: SpdOptions::default(),
        },
        RetrievalStrategy::WholeArray,
    ] {
        let mut store = ArrayStore::new(SingleOnlyStore::new());
        let proxy = store.store_array(&m, 64).unwrap(); // 8 elems/chunk
        let col = proxy.subscript(1, 7).unwrap(); // touches 20 chunks
        let got: Vec<i64> = store
            .resolve(&col, strategy)
            .unwrap()
            .elements()
            .iter()
            .map(|n| n.as_i64())
            .collect();
        assert_eq!(got, expected, "content must not depend on capabilities");

        // The downgrade is visible: one statement *per chunk*, not per
        // batch — the default-method delegation charged each get_chunk.
        let stats = store.last_stats();
        assert_eq!(
            stats.statements,
            stats.chunks_fetched,
            "per-chunk delegation expected under {}: {stats:?}",
            strategy.name()
        );
        assert!(
            stats.chunks_fetched >= 20,
            "the column touches at least 20 chunks"
        );
    }

    // Contrast: a capable back-end serves the same plan in few
    // statements, so the test above really measured the downgrade.
    let mut capable = ArrayStore::new(MemoryChunkStore::new());
    let proxy = capable.store_array(&m, 64).unwrap();
    let col = proxy.subscript(1, 7).unwrap();
    capable
        .resolve(&col, RetrievalStrategy::BufferedIn { buffer_size: 8 })
        .unwrap();
    assert!(capable.last_stats().statements < capable.last_stats().chunks_fetched);
}
