//! Tentpole acceptance: the chunk cache may never serve stale bytes.
//!
//! Deleting an array and re-storing different data under the *same*
//! array id is the hostile case — every read path (exclusive, shared,
//! batched, ranged) must observe the new bytes, including when the
//! cache is stacked above a `ResilientChunkStore` so repaired chunks
//! were cached on the way in.

use ssdm_array::NumArray;
use ssdm_storage::{
    ArrayStore, CachedChunkStore, ChunkStore, MemoryChunkStore, ResilientChunkStore,
    RetrievalStrategy, RetryPolicy, SharedChunkRead,
};

#[test]
fn delete_then_restore_same_id_serves_fresh_bytes() {
    let mut s = CachedChunkStore::new(MemoryChunkStore::new(), 1 << 20);
    s.begin_array(7, 8).unwrap();
    for c in 0..4u64 {
        s.put_chunk(7, c, &[0xAA; 8]).unwrap();
    }
    // Warm every read path.
    s.get_chunk(7, 0).unwrap();
    s.get_chunks_in(7, &[1, 2]).unwrap();
    s.get_chunk_range(7, 0, 3).unwrap();
    assert!(s.cache_stats().insertions >= 4);

    s.delete_array(7, 4).unwrap();
    s.begin_array(7, 8).unwrap();
    for c in 0..4u64 {
        s.put_chunk(7, c, &[0xBB; 8]).unwrap();
    }
    assert_eq!(s.get_chunk(7, 0).unwrap(), vec![0xBB; 8]);
    assert_eq!(
        s.get_chunks_in(7, &[1, 2]).unwrap(),
        vec![(1, vec![0xBB; 8]), (2, vec![0xBB; 8])]
    );
    for (_, data) in s.get_chunk_range(7, 0, 3).unwrap() {
        assert_eq!(data, vec![0xBB; 8]);
    }
    // The shared-read path sees fresh bytes too.
    assert_eq!(s.read_chunk(7, 3).unwrap(), vec![0xBB; 8]);
}

#[test]
fn restore_without_delete_is_covered_by_begin_array() {
    // Some callers re-create in place: begin_array alone must also
    // invalidate (back-ends may truncate there).
    let mut s = CachedChunkStore::new(MemoryChunkStore::new(), 1 << 20);
    s.begin_array(3, 8).unwrap();
    s.put_chunk(3, 0, b"old_old_").unwrap();
    s.get_chunk(3, 0).unwrap();
    s.begin_array(3, 8).unwrap();
    s.put_chunk(3, 0, b"new_new_").unwrap();
    assert_eq!(s.get_chunk(3, 0).unwrap(), b"new_new_");
}

#[test]
fn stale_chunks_never_survive_through_the_resilient_wrapper() {
    // Cache above resilience: a chunk cached after retry repair must
    // still be dropped when the array is deleted and re-stored.
    let stack = CachedChunkStore::new(
        ResilientChunkStore::new(MemoryChunkStore::new(), RetryPolicy::default()),
        1 << 20,
    );
    let mut store = ArrayStore::new(stack);

    let first = NumArray::from_i64_shaped((0..64).collect(), &[8, 8]).unwrap();
    let second = NumArray::from_i64_shaped((1000..1064).collect(), &[8, 8]).unwrap();

    let p1 = store.store_array(&first, 64).unwrap();
    let id1 = p1.meta().array_id;
    // Read everything through the cache so every chunk is resident.
    let got: Vec<i64> = store
        .resolve(&p1, RetrievalStrategy::WholeArray)
        .unwrap()
        .elements()
        .iter()
        .map(|n| n.as_i64())
        .collect();
    assert_eq!(got, (0..64).collect::<Vec<_>>());

    store.delete_array(id1).unwrap();
    // Force the next array onto the same backend id by storing through
    // the raw ChunkStore interface under id1.
    let backend = store.backend_mut();
    backend.begin_array(id1, 64).unwrap();
    let payloads: Vec<Vec<u8>> = second
        .elements()
        .iter()
        .map(|n| n.as_i64().to_le_bytes().to_vec())
        .collect();
    // 64-byte chunks of i64 = 8 elements per chunk.
    for (cid, chunk) in payloads.chunks(8).enumerate() {
        let bytes: Vec<u8> = chunk.concat();
        backend.put_chunk(id1, cid as u64, &bytes).unwrap();
    }
    for cid in 0..8u64 {
        let data = backend.get_chunk(id1, cid).unwrap();
        let lo = i64::from_le_bytes(data[..8].try_into().unwrap());
        assert_eq!(
            lo,
            1000 + (cid as i64) * 8,
            "chunk {cid} served stale pre-delete bytes"
        );
    }
}

#[test]
fn shared_reads_fill_and_hit_the_same_cache() {
    let mut s = CachedChunkStore::new(MemoryChunkStore::new(), 1 << 20);
    s.begin_array(1, 8).unwrap();
    s.put_chunk(1, 0, b"payload!").unwrap();
    s.cache().clear();
    s.reset_cache_stats();
    // Fill via the shared path...
    assert_eq!(s.read_chunk(1, 0).unwrap(), b"payload!");
    // ...hit via the exclusive one, and vice versa.
    assert_eq!(s.get_chunk(1, 0).unwrap(), b"payload!");
    assert_eq!(s.read_chunks_in(1, &[0]).unwrap().len(), 1);
    let cs = s.cache_stats();
    assert_eq!((cs.hits, cs.misses), (2, 1));
    assert_eq!(s.io_stats().statements, 1);
}
