//! Property tests: every retrieval strategy over every back-end must
//! resolve any view of any stored array to the same elements a resident
//! array would produce.

use proptest::prelude::*;
use ssdm_array::{AggregateOp, NumArray};
use ssdm_storage::{
    spd::SpdOptions, ArrayStore, ChunkStore, MemoryChunkStore, RelChunkStore, RetrievalStrategy,
};

#[derive(Debug, Clone)]
struct Scenario {
    rows: usize,
    cols: usize,
    chunk_bytes: usize,
    /// Optional row subscript, else a row slice.
    fix_row: Option<usize>,
    col_lo: usize,
    col_stride: usize,
    col_hi: usize,
}

fn scenarios() -> impl Strategy<Value = Scenario> {
    (2usize..12, 2usize..12, 1usize..6).prop_flat_map(|(rows, cols, chunk_elems)| {
        (prop::option::of(0..rows), 0..cols, 1usize..4, 0..cols).prop_map(
            move |(fix_row, a, stride, b)| Scenario {
                rows,
                cols,
                chunk_bytes: chunk_elems * 8,
                fix_row,
                col_lo: a.min(b),
                col_stride: stride,
                col_hi: a.max(b),
            },
        )
    })
}

fn check<S: ChunkStore>(backend: S, sc: &Scenario) {
    let mut store = ArrayStore::new(backend);
    let m = NumArray::from_i64_shaped(
        (0..(sc.rows * sc.cols) as i64).collect(),
        &[sc.rows, sc.cols],
    )
    .unwrap();
    let proxy = store.store_array(&m, sc.chunk_bytes).unwrap();
    // Build the same view on proxy and resident array.
    let (view_proxy, view_resident) = match sc.fix_row {
        Some(r) => (
            proxy
                .subscript(0, r)
                .unwrap()
                .slice(0, sc.col_lo, sc.col_stride, sc.col_hi)
                .unwrap(),
            m.subscript(0, r)
                .unwrap()
                .slice(0, sc.col_lo, sc.col_stride, sc.col_hi)
                .unwrap(),
        ),
        None => (
            proxy.slice(1, sc.col_lo, sc.col_stride, sc.col_hi).unwrap(),
            m.slice(1, sc.col_lo, sc.col_stride, sc.col_hi).unwrap(),
        ),
    };
    let strategies = [
        RetrievalStrategy::Single,
        RetrievalStrategy::BufferedIn { buffer_size: 3 },
        RetrievalStrategy::SpdRange {
            options: SpdOptions::default(),
        },
        RetrievalStrategy::WholeArray,
    ];
    for s in strategies {
        let got = store.resolve(&view_proxy, s).unwrap();
        assert!(
            got.array_eq(&view_resident),
            "strategy {} diverged: {got} vs {view_resident}",
            s.name()
        );
        if view_resident.element_count() > 0 {
            let agg = store
                .resolve_aggregate(&view_proxy, AggregateOp::Sum, s)
                .unwrap();
            assert_eq!(agg, view_resident.sum().unwrap(), "sum via {}", s.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn memory_backend_matches_resident(sc in scenarios()) {
        check(MemoryChunkStore::new(), &sc);
    }

    #[test]
    fn relational_backend_matches_resident(sc in scenarios()) {
        check(RelChunkStore::open_memory().unwrap(), &sc);
    }
}
