//! The sharding acceptance drill: 4 shards x 2 WAL-shipping replicas
//! under a seeded workload, one replica killed mid-workload.
//!
//! Must hold deterministically (CI runs `SSDM_FAULT_SEED=1,2,3`):
//!
//! * **zero failed reads** — every read after the kill fails over to
//!   the sibling replica or the primary within the one permitted hop;
//! * **at least one recorded failover** (and, once the dead replica's
//!   consecutive failures pass the threshold, a breaker trip) visible
//!   in [`ShardStats`];
//! * **bit-identical results** to an unsharded [`MemoryChunkStore`]
//!   holding the same chunks, before and after the kill.
//!
//! A second test pins the *typed* failure contract: with no replicas to
//! absorb a dead primary, point and `IN`-list reads surface
//! [`StorageError::ShardUnavailable`] naming the dark shard, while
//! range reads — the one shape whose contract already skips missing
//! chunks — degrade to partial results and count `degraded_reads`.

use ssdm_storage::shard::place;
use ssdm_storage::{
    ChunkStore, FaultPlan, MemoryChunkStore, ShardOptions, ShardedChunkStore, SharedChunkRead,
    SharedChunkStore, StorageError,
};

const ARRAY: u64 = 7;
const CHUNKS: u64 = 96;

fn payload(c: u64) -> Vec<u8> {
    (0..40)
        .map(|b| (c as u8).wrapping_mul(31).wrapping_add(b))
        .collect()
}

fn baseline() -> MemoryChunkStore {
    let mut s = MemoryChunkStore::new();
    s.begin_array(ARRAY, CHUNKS as usize).unwrap();
    for c in 0..CHUNKS {
        s.put_chunk(ARRAY, c, &payload(c)).unwrap();
    }
    s
}

fn sharded(shards: usize, replicas: usize) -> ShardedChunkStore {
    let primaries: Vec<Box<dyn SharedChunkStore>> = (0..shards)
        .map(|_| Box::new(MemoryChunkStore::new()) as Box<dyn SharedChunkStore>)
        .collect();
    let mut store = ShardedChunkStore::new(
        primaries,
        ShardOptions {
            replicas,
            ..ShardOptions::default()
        },
    )
    .unwrap();
    store.begin_array(ARRAY, CHUNKS as usize).unwrap();
    for c in 0..CHUNKS {
        store.put_chunk(ARRAY, c, &payload(c)).unwrap();
    }
    store
}

fn splitmix(seed: u64, n: u64) -> u64 {
    let mut z = seed
        .wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seed-shuffled pass over every chunk id (Fisher-Yates on the
/// deterministic stream), so each CI seed exercises a different
/// replica-rotation interleaving.
fn shuffled_ids(seed: u64) -> Vec<u64> {
    let mut ids: Vec<u64> = (0..CHUNKS).collect();
    for i in (1..ids.len()).rev() {
        ids.swap(i, splitmix(seed, i as u64) as usize % (i + 1));
    }
    ids
}

/// One mixed read sweep: every chunk as a point read in shuffled order,
/// one `IN`-list over a seed-dependent stride, one full range scan.
/// Every result is checked bit-identical against the unsharded
/// baseline; any read error fails the drill.
fn sweep(store: &ShardedChunkStore, expected: &MemoryChunkStore, seed: u64) {
    for &c in &shuffled_ids(seed) {
        let got = store
            .read_chunk(ARRAY, c)
            .expect("point read must not fail");
        assert_eq!(got, payload(c), "chunk {c}");
    }
    let stride = 2 + (seed % 3);
    let ids: Vec<u64> = (0..CHUNKS).step_by(stride as usize).collect();
    let got = store
        .read_chunks_in(ARRAY, &ids)
        .expect("IN-list read must not fail");
    let want = expected.read_chunks_in(ARRAY, &ids).unwrap();
    assert_eq!(got, want, "IN-list, stride {stride}");
    let got = store
        .read_chunk_range(ARRAY, 0, CHUNKS - 1)
        .expect("range read must not fail");
    let want = expected.read_chunk_range(ARRAY, 0, CHUNKS - 1).unwrap();
    assert_eq!(got, want, "full range");
}

#[test]
fn kill_one_replica_mid_workload_zero_failed_reads() {
    let seed = FaultPlan::seed_from_env(1);
    let expected = baseline();
    let store = sharded(4, 2);

    // Warm-up sweep: replicas catch up from the shipped WAL segments
    // and serve everything; primaries stay out of the read path.
    sweep(&store, &expected, seed);
    let warm = store.stats();
    assert_eq!(warm.failovers, 0, "healthy cluster must not fail over");
    assert!(
        warm.shards.iter().all(|s| s.primary_reads == 0),
        "with live replicas the primaries serve no reads: {warm:?}"
    );

    // Kill one seed-chosen replica mid-workload...
    let dead_shard = (seed % 4) as usize;
    let dead_replica = (splitmix(seed, 0xD1E) % 2) as usize;
    store.kill_replica(dead_shard, dead_replica);

    // ...and keep reading. Nothing is allowed to fail.
    sweep(&store, &expected, splitmix(seed, 1));
    sweep(&store, &expected, splitmix(seed, 2));

    let stats = store.stats();
    assert!(
        stats.failovers >= 1,
        "the dead replica's reads must fail over: {stats:?}"
    );
    assert!(
        stats.breaker_opens >= 1,
        "repeated failures must trip the breaker: {stats:?}"
    );
    let health = &stats.shards[dead_shard].replicas[dead_replica];
    assert!(!health.alive);
    assert_eq!(
        stats.shards[dead_shard].failovers, stats.failovers,
        "only the shard with the dead replica fails over"
    );

    // Revive: after the breaker's half-open probe succeeds, the cluster
    // serves a clean sweep again with no further failovers.
    store.revive_replica(dead_shard, dead_replica);
    let before = store.stats().failovers;
    sweep(&store, &expected, splitmix(seed, 3));
    sweep(&store, &expected, splitmix(seed, 4));
    assert_eq!(
        store.stats().failovers,
        before,
        "a revived replica must stop the failover bleed"
    );
}

#[test]
fn dead_primary_without_replicas_is_typed_and_ranges_degrade() {
    let expected = baseline();
    let store = sharded(2, 0);
    store.kill_primary(0);

    let (on_dead, on_live): (Vec<u64>, Vec<u64>) =
        (0..CHUNKS).partition(|&c| place(ARRAY, c, 2) == 0);
    assert!(!on_dead.is_empty() && !on_live.is_empty());

    // Point reads: owned by the dark shard -> typed error naming it;
    // owned by the live shard -> unaffected.
    match store.read_chunk(ARRAY, on_dead[0]) {
        Err(StorageError::ShardUnavailable { shards }) => assert_eq!(shards, vec![0]),
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }
    assert_eq!(
        store.read_chunk(ARRAY, on_live[0]).unwrap(),
        payload(on_live[0])
    );

    // IN-lists spanning both shards fail as a whole (partial IN results
    // would be silently wrong) and still name exactly the dark shard.
    let mixed: Vec<u64> = vec![on_dead[0], on_live[0], on_dead[1], on_live[1]];
    match store.read_chunks_in(ARRAY, &mixed) {
        Err(StorageError::ShardUnavailable { shards }) => assert_eq!(shards, vec![0]),
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }

    // Ranges degrade: the contract already skips missing chunks, so the
    // live shard's rows come back and the gap is counted, not hidden.
    let got = store.read_chunk_range(ARRAY, 0, CHUNKS - 1).unwrap();
    let want: Vec<(u64, Vec<u8>)> = expected
        .read_chunk_range(ARRAY, 0, CHUNKS - 1)
        .unwrap()
        .into_iter()
        .filter(|(c, _)| place(ARRAY, *c, 2) == 1)
        .collect();
    assert_eq!(got, want);
    assert_eq!(store.stats().degraded_reads, 1);

    // Revival restores the full contract.
    store.revive_primary(0);
    assert_eq!(
        store.read_chunk(ARRAY, on_dead[0]).unwrap(),
        payload(on_dead[0])
    );
    let got = store.read_chunk_range(ARRAY, 0, CHUNKS - 1).unwrap();
    assert_eq!(
        got,
        expected.read_chunk_range(ARRAY, 0, CHUNKS - 1).unwrap()
    );
}

#[test]
fn full_shard_blackout_converges_to_typed_error() {
    let store = sharded(4, 2);
    let dark = 2usize;
    store.kill_primary(dark);
    store.kill_replica(dark, 0);
    store.kill_replica(dark, 1);
    let victim = (0..CHUNKS).find(|&c| place(ARRAY, c, 4) == dark).unwrap();

    // The first reads burn the failover hop on dead replicas and
    // surface their transient error; once both breakers open, routing
    // reaches the dead primary and the error becomes the typed
    // `ShardUnavailable`. No read may ever succeed.
    let mut typed = 0;
    for round in 0..12 {
        match store.read_chunk(ARRAY, victim) {
            Ok(_) => panic!("round {round}: read succeeded on a blacked-out shard"),
            Err(StorageError::ShardUnavailable { shards }) => {
                assert_eq!(shards, vec![dark]);
                typed += 1;
            }
            Err(e) => assert!(e.is_transient(), "round {round}: unexpected {e:?}"),
        }
    }
    assert!(
        typed >= 1,
        "breakers must eventually route to the typed error"
    );

    // Reads on other shards are untouched throughout.
    let other = (0..CHUNKS).find(|&c| place(ARRAY, c, 4) != dark).unwrap();
    assert_eq!(store.read_chunk(ARRAY, other).unwrap(), payload(other));
}
