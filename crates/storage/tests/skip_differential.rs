//! Differential tests for zone-map chunk skipping: with skipping
//! enabled or disabled, every filtered resolution — scans, existence
//! probes, sequential and parallel aggregates — must return
//! bit-identical results, across every codec policy and back-end stack
//! (plain memory, cached, resilient, sharded). Skipping is purely a
//! plan transformation; only the I/O counters may differ, and on a
//! chunk-selective predicate `chunks_skipped` must actually be
//! positive, otherwise the optimisation is dead code.

use ssdm_array::{AggregateOp, Num, NumArray};
use ssdm_storage::{
    ArrayStore, CachedChunkStore, ChunkStore, CodecPolicy, MemoryChunkStore, ParallelConfig,
    ResilientChunkStore, RetrievalStrategy, RetryPolicy, ShardOptions, ShardedChunkStore,
    SharedChunkRead, SharedChunkStore, ValuePredicate,
};

const POLICIES: [CodecPolicy; 4] = [
    CodecPolicy::Raw,
    CodecPolicy::DeltaBp,
    CodecPolicy::Rle,
    CodecPolicy::Auto,
];

/// 16 chunks of 64 elements; chunk `c` holds values `c*1000 ..
/// c*1000+63`, so a narrow range predicate is provably confined to one
/// chunk and the zone map can prune the other fifteen.
fn clustered_ints() -> NumArray {
    NumArray::from_i64((0..1024).map(|i| (i / 64) * 1000 + i % 64).collect())
}

/// Reals with the same clustered layout plus a NaN per chunk, so
/// pruning must stay conservative about non-comparable elements.
fn clustered_reals() -> NumArray {
    NumArray::from_f64(
        (0..1024)
            .map(|i| {
                if i % 64 == 13 {
                    f64::NAN
                } else {
                    ((i / 64) * 1000 + i % 64) as f64
                }
            })
            .collect(),
    )
}

/// Bit-exact key for a `Num`, so NaN payloads and `-0.0` participate
/// in equality instead of being collapsed by IEEE comparison.
fn bits(n: Num) -> (u8, u64) {
    match n {
        Num::Int(v) => (0, v as u64),
        Num::Real(v) => (1, v.to_bits()),
    }
}

fn bits_vec(v: &[Num]) -> Vec<(u8, u64)> {
    v.iter().map(|&n| bits(n)).collect()
}

/// The predicates the matrix runs: a one-chunk range, a cross-chunk
/// range, an empty range, and membership probes (hit and miss).
fn predicates() -> Vec<(&'static str, ValuePredicate)> {
    vec![
        (
            "one-chunk range",
            ValuePredicate::Range {
                lo: Num::Int(3000),
                hi: Num::Int(3063),
            },
        ),
        (
            "cross-chunk range",
            ValuePredicate::Range {
                lo: Num::Int(4050),
                hi: Num::Int(6010),
            },
        ),
        (
            "empty range",
            ValuePredicate::Range {
                lo: Num::Int(700),
                hi: Num::Int(800),
            },
        ),
        (
            "membership hit",
            ValuePredicate::In(vec![Num::Int(5005), Num::Int(12_031)]),
        ),
        ("membership miss", ValuePredicate::In(vec![Num::Int(-7)])),
    ]
}

/// Run the full differential matrix against one freshly built store.
/// `make` is called once per (policy, skip) cell so each cell sees an
/// identical, independently written store.
fn run_matrix<S, F>(make: F)
where
    S: ChunkStore + SharedChunkRead,
    F: Fn() -> ArrayStore<S>,
{
    let resident = clustered_ints();
    for policy in POLICIES {
        for (name, pred) in predicates() {
            let mut on = make();
            let mut off = make();
            on.set_codec(policy);
            off.set_codec(policy);
            on.set_skip_enabled(true);
            off.set_skip_enabled(false);
            let p_on = on.store_array(&resident, 64 * 8).unwrap();
            let p_off = off.store_array(&resident, 64 * 8).unwrap();

            for strategy in [
                RetrievalStrategy::Single,
                RetrievalStrategy::BufferedIn { buffer_size: 4 },
                RetrievalStrategy::WholeArray,
            ] {
                let a = on.resolve_filtered(&p_on, &pred, strategy).unwrap();
                let b = off.resolve_filtered(&p_off, &pred, strategy).unwrap();
                assert_eq!(
                    bits_vec(&a),
                    bits_vec(&b),
                    "filtered scan differs: {} / {:?} / {:?}",
                    name,
                    policy.name(),
                    strategy
                );
                assert_eq!(
                    on.resolve_exists(&p_on, &pred, strategy).unwrap(),
                    off.resolve_exists(&p_off, &pred, strategy).unwrap(),
                    "exists differs: {name}"
                );
                for op in [
                    AggregateOp::Sum,
                    AggregateOp::Min,
                    AggregateOp::Max,
                    AggregateOp::Count,
                ] {
                    let a = on.resolve_aggregate_filtered(&p_on, &pred, op, strategy);
                    let b = off.resolve_aggregate_filtered(&p_off, &pred, op, strategy);
                    match (a, b) {
                        (Ok(x), Ok(y)) => assert_eq!(
                            bits(x),
                            bits(y),
                            "aggregate {op:?} differs: {name} / {}",
                            policy.name()
                        ),
                        (Err(_), Err(_)) => {} // both empty: same typed error
                        (a, b) => panic!("aggregate {op:?} split on {name}: {a:?} vs {b:?}"),
                    }
                    // The parallel fold must agree with the sequential
                    // one bit-for-bit at every worker count.
                    for workers in [1usize, 4] {
                        let par = on.resolve_aggregate_filtered_parallel(
                            &p_on,
                            &pred,
                            op,
                            strategy,
                            ParallelConfig { workers },
                        );
                        let seq = off.resolve_aggregate_filtered(&p_off, &pred, op, strategy);
                        match (par, seq) {
                            (Ok(x), Ok(y)) => assert_eq!(
                                bits(x),
                                bits(y),
                                "parallel({workers}) {op:?} differs: {name}"
                            ),
                            (Err(_), Err(_)) => {}
                            (a, b) => {
                                panic!("parallel {op:?} split on {name}: {a:?} vs {b:?}")
                            }
                        }
                    }
                }
            }

            // Selective predicates must actually skip with the zone map
            // on, and never with it off.
            let _ = on
                .resolve_filtered(&p_on, &pred, RetrievalStrategy::Single)
                .unwrap();
            let _ = off
                .resolve_filtered(&p_off, &pred, RetrievalStrategy::Single)
                .unwrap();
            assert!(
                on.last_stats().chunks_skipped > 0,
                "no chunks skipped for {} under {}",
                name,
                policy.name()
            );
            assert_eq!(
                off.last_stats().chunks_skipped,
                0,
                "skip-disabled store skipped chunks"
            );
        }
    }
}

#[test]
fn memory_store_skip_differential() {
    run_matrix(|| ArrayStore::new(MemoryChunkStore::new()));
}

#[test]
fn cached_store_skip_differential() {
    run_matrix(|| ArrayStore::new(CachedChunkStore::new(MemoryChunkStore::new(), 1 << 20)));
}

#[test]
fn resilient_store_skip_differential() {
    run_matrix(|| {
        ArrayStore::new(ResilientChunkStore::new(
            MemoryChunkStore::new(),
            RetryPolicy::aggressive(),
        ))
    });
}

#[test]
fn sharded_store_skip_differential() {
    run_matrix(|| {
        let primaries: Vec<Box<dyn SharedChunkStore>> = (0..3)
            .map(|_| Box::new(MemoryChunkStore::new()) as Box<dyn SharedChunkStore>)
            .collect();
        ArrayStore::new(ShardedChunkStore::new(primaries, ShardOptions::default()).unwrap())
    });
}

/// NaN elements make every chunk summary report nulls, so range
/// pruning must keep any chunk that still *could* hold a match — while
/// results (including the NaNs a membership probe can never hit) stay
/// identical either way.
#[test]
fn real_arrays_with_nans_prune_conservatively() {
    let resident = clustered_reals();
    let pred = ValuePredicate::Range {
        lo: Num::Real(3000.0),
        hi: Num::Real(3063.0),
    };
    for policy in POLICIES {
        let mut on = ArrayStore::new(MemoryChunkStore::new());
        let mut off = ArrayStore::new(MemoryChunkStore::new());
        on.set_codec(policy);
        off.set_codec(policy);
        on.set_skip_enabled(true);
        off.set_skip_enabled(false);
        let p_on = on.store_array(&resident, 64 * 8).unwrap();
        let p_off = off.store_array(&resident, 64 * 8).unwrap();
        let a = on
            .resolve_filtered(&p_on, &pred, RetrievalStrategy::Single)
            .unwrap();
        let b = off
            .resolve_filtered(&p_off, &pred, RetrievalStrategy::Single)
            .unwrap();
        assert_eq!(bits_vec(&a), bits_vec(&b), "policy {}", policy.name());
        assert_eq!(a.len(), 63, "range covers one chunk minus its NaN");
        assert!(
            on.last_stats().chunks_skipped > 0,
            "NaN-carrying chunks outside the range must still be skippable \
             on their numeric bounds (policy {})",
            policy.name()
        );
    }
}
