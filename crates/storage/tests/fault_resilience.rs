//! The ISSUE-1 acceptance scenario: deterministic fault injection vs
//! the resilience stack.
//!
//! With a 10% transient-fault plan, queries through
//! `ResilientChunkStore` must succeed with *bit-identical* results to
//! the fault-free run and visibly non-zero retry statistics, while the
//! same plan without the resilience wrapper fails. Injected checksum
//! corruption must surface as an error, never as silently wrong data.
//!
//! The plan seed honours `SSDM_FAULT_SEED` (the CI fault matrix runs
//! this file under seeds 1, 2 and 3), defaulting to 1.

use ssdm_array::{AggregateOp, NumArray};
use ssdm_storage::spd::SpdOptions;
use ssdm_storage::{
    ArrayStore, ChunkStore, FaultInjectingChunkStore, FaultKind, FaultPlan, MemoryChunkStore,
    OpKind, RawChunkAccess, ResilientChunkStore, RetrievalStrategy, RetryPolicy, StorageError,
};

const ROWS: usize = 24;
const COLS: usize = 24;
const CHUNK_BYTES: usize = 64;

fn matrix() -> NumArray {
    NumArray::from_i64_shaped((0..(ROWS * COLS) as i64).collect(), &[ROWS, COLS]).unwrap()
}

fn strategies() -> Vec<RetrievalStrategy> {
    vec![
        RetrievalStrategy::Single,
        RetrievalStrategy::BufferedIn { buffer_size: 4 },
        RetrievalStrategy::SpdRange {
            options: SpdOptions::default(),
        },
        RetrievalStrategy::WholeArray,
    ]
}

/// Resolve a battery of views under every strategy, returning each
/// result as element vectors (or propagating the first failure).
fn run_battery<S: ChunkStore>(
    store: &mut ArrayStore<S>,
    proxy: &ssdm_storage::ArrayProxy,
) -> Result<Vec<Vec<i64>>, StorageError> {
    let mut out = Vec::new();
    for strategy in strategies() {
        for view in [
            proxy.clone(),
            proxy.subscript(1, 7).unwrap(),
            proxy.subscript(0, 3).unwrap(),
            proxy.slice(0, 2, 3, 19).unwrap(),
        ] {
            let resolved = store.resolve(&view, strategy)?;
            out.push(resolved.elements().iter().map(|n| n.as_i64()).collect());
        }
        let sum = store.resolve_aggregate(proxy, AggregateOp::Sum, strategy)?;
        out.push(vec![sum.as_i64()]);
    }
    Ok(out)
}

fn seed() -> u64 {
    FaultPlan::seed_from_env(1)
}

/// Fault-free ground truth.
fn baseline() -> Vec<Vec<i64>> {
    let mut store = ArrayStore::new(MemoryChunkStore::new());
    let proxy = store.store_array(&matrix(), CHUNK_BYTES).unwrap();
    run_battery(&mut store, &proxy).unwrap()
}

#[test]
fn resilient_queries_survive_ten_percent_faults_bit_identically() {
    let expected = baseline();
    let plan = FaultPlan::transient_reads(seed(), 0.10);
    let injected = FaultInjectingChunkStore::new(MemoryChunkStore::new(), plan);
    let resilient = ResilientChunkStore::new(injected, RetryPolicy::aggressive());
    let mut store = ArrayStore::new(resilient);
    let proxy = store.store_array(&matrix(), CHUNK_BYTES).unwrap();

    let mut total_retries = 0;
    let mut got = Vec::new();
    // Re-run the battery a few times so enough statements are issued to
    // make the 10% plan bite regardless of the seed.
    for _ in 0..5 {
        got = run_battery(&mut store, &proxy)
            .expect("resilient stack must absorb a 10% transient-fault plan");
        total_retries += store.backend().resilience_stats().retries;
        store.backend_mut().reset_resilience_stats();
    }
    assert_eq!(got, expected, "results must be bit-identical to fault-free");
    assert!(total_retries > 0, "the plan must actually have fired");
    assert!(
        store.backend().inner().fault_stats().total_injected() > 0,
        "injector saw no traffic?"
    );
}

#[test]
fn apr_stats_report_retries_under_faults() {
    let plan = FaultPlan::transient_reads(seed(), 0.35);
    let injected = FaultInjectingChunkStore::new(MemoryChunkStore::new(), plan);
    let resilient = ResilientChunkStore::new(injected, RetryPolicy::aggressive());
    let mut store = ArrayStore::new(resilient);
    let proxy = store.store_array(&matrix(), CHUNK_BYTES).unwrap();

    let mut saw_retries = false;
    for _ in 0..10 {
        store
            .resolve(&proxy, RetrievalStrategy::BufferedIn { buffer_size: 4 })
            .unwrap();
        if store.last_stats().retries > 0 {
            saw_retries = true;
            assert!(store.last_stats().degraded());
            break;
        }
    }
    assert!(saw_retries, "AprStats.retries never became non-zero");
}

#[test]
fn same_plan_without_resilience_fails() {
    let plan = FaultPlan::transient_reads(seed(), 0.10);
    let injected = FaultInjectingChunkStore::new(MemoryChunkStore::new(), plan);
    let mut store = ArrayStore::new(injected);
    let proxy = store.store_array(&matrix(), CHUNK_BYTES).unwrap();

    let mut failures = 0;
    for _ in 0..5 {
        if run_battery(&mut store, &proxy).is_err() {
            failures += 1;
        }
    }
    assert!(
        failures > 0,
        "a 10% fault plan with no retry layer must sink some queries"
    );
}

#[test]
fn batched_statement_giveup_degrades_to_per_chunk_fallback() {
    let expected = baseline();
    // Script a burst long enough to exhaust a 2-attempt policy on the
    // first batched read statement; the per-chunk fallback reads that
    // follow are clean and the query must succeed.
    let plan = FaultPlan::scripted(seed(), vec![])
        .fail_nth(OpKind::Read, 1, FaultKind::Transient)
        .fail_nth(OpKind::Read, 2, FaultKind::Transient);
    let injected = FaultInjectingChunkStore::new(MemoryChunkStore::new(), plan);
    let resilient = ResilientChunkStore::new(injected, RetryPolicy::aggressive());
    let mut store = ArrayStore::new(resilient);
    let proxy = store.store_array(&matrix(), CHUNK_BYTES).unwrap();

    let got = run_battery(&mut store, &proxy).expect("retries must absorb the burst");
    assert_eq!(got, expected);

    // Probe with a 2-attempt policy: the first read statement (a
    // WholeArray range) exhausts its retry budget against the burst and
    // must be served per-chunk instead.
    let policy = RetryPolicy {
        max_attempts: 2,
        ..RetryPolicy::aggressive()
    };
    let mut probe_store = {
        let plan = FaultPlan::scripted(seed(), vec![])
            .fail_nth(OpKind::Read, 1, FaultKind::Transient)
            .fail_nth(OpKind::Read, 2, FaultKind::Transient);
        let injected = FaultInjectingChunkStore::new(MemoryChunkStore::new(), plan);
        ArrayStore::new(ResilientChunkStore::new(injected, policy))
    };
    let probe_proxy = probe_store.store_array(&matrix(), CHUNK_BYTES).unwrap();
    let resolved = probe_store
        .resolve(&probe_proxy, RetrievalStrategy::WholeArray)
        .unwrap();
    assert_eq!(resolved.elements().len(), ROWS * COLS);
    let stats = probe_store.last_stats();
    assert!(
        stats.fallbacks > 0,
        "expected a per-chunk fallback, got {stats:?}"
    );
    assert!(stats.degraded());
    assert!(
        probe_store.backend().resilience_stats().giveups > 0,
        "the batched statement must have exhausted its retry budget"
    );
}

#[test]
fn injected_corruption_is_detected_never_silent() {
    // At-rest flip with no resilience in the stack: the read must error,
    // not return mangled bytes.
    let mut plain = MemoryChunkStore::new();
    plain.put_chunk(5, 0, &[0xAB; 64]).unwrap();
    plain.flip_stored_bit(5, 0, 300).unwrap();
    match plain.get_chunk(5, 0) {
        Err(StorageError::Corrupt {
            array_id: 5,
            chunk_id: 0,
            ..
        }) => {}
        other => panic!("corruption must surface as Corrupt, got {other:?}"),
    }

    // In-transit flip through the injector + retry layer: detected,
    // retried, healed — and the repair is visible in the APR stats.
    let plan = FaultPlan::scripted(seed(), vec![]).fail_nth(OpKind::Read, 1, FaultKind::BitFlip);
    let injected = FaultInjectingChunkStore::new(MemoryChunkStore::new(), plan);
    let resilient = ResilientChunkStore::new(injected, RetryPolicy::aggressive());
    let mut store = ArrayStore::new(resilient);
    let proxy = store.store_array(&matrix(), CHUNK_BYTES).unwrap();
    let expected = baseline();
    let got = run_battery(&mut store, &proxy).unwrap();
    assert_eq!(got, expected);
    let res = store.backend().resilience_stats();
    assert!(res.corruption_detected > 0, "flip must be seen: {res:?}");
    assert!(res.corruption_repaired > 0, "re-read must heal it: {res:?}");
}

#[test]
fn missing_chunk_faults_fail_fast_without_retries() {
    let plan = FaultPlan::scripted(seed(), vec![]).fail_nth(OpKind::Read, 1, FaultKind::Missing);
    let injected = FaultInjectingChunkStore::new(MemoryChunkStore::new(), plan);
    let resilient = ResilientChunkStore::new(injected, RetryPolicy::aggressive());
    let mut store = ArrayStore::new(resilient);
    let proxy = store.store_array(&matrix(), CHUNK_BYTES).unwrap();

    // Single strategy: the per-chunk statement has no batched fallback,
    // and MissingChunk is permanent — exactly one attempt, no pauses.
    let err = store
        .resolve(&proxy, RetrievalStrategy::Single)
        .unwrap_err();
    assert!(matches!(err, StorageError::MissingChunk { .. }));
    let res = store.backend().resilience_stats();
    assert_eq!(res.retries, 0, "permanent faults must not be retried");
    assert_eq!(res.permanent_failures, 1);
}
