//! Chunk-side parallel aggregation (`resolve_aggregate_parallel`) is
//! **bit-identical** to sequential `resolve_aggregate` for every worker
//! count, strategy, element type, and view shape: both paths fold each
//! chunk's relevant elements with the same typed kernel and combine the
//! per-chunk partials in plan order, so the fold tree never depends on
//! scheduling.

use ssdm_array::{AggregateOp, Num, NumArray};
use ssdm_storage::spd::SpdOptions;
use ssdm_storage::{
    ArrayStore, Capabilities, ChunkStore, IoStats, MemoryChunkStore, ParallelConfig,
    RetrievalStrategy, SharedChunkRead, StorageError,
};

fn real_matrix() -> NumArray {
    NumArray::from_shape_fn(&[24, 24], |ix| {
        ((ix[0] * 131 + ix[1] * 17) as f64 * 0.37 - 40.0).into()
    })
}

fn int_matrix() -> NumArray {
    let vals: Vec<i64> = (0..24 * 24).map(|i| (i * 7919 % 1000) - 500).collect();
    NumArray::from_i64_shaped(vals, &[24, 24]).unwrap()
}

fn strategies() -> Vec<RetrievalStrategy> {
    vec![
        RetrievalStrategy::Single,
        RetrievalStrategy::BufferedIn { buffer_size: 4 },
        RetrievalStrategy::SpdRange {
            options: SpdOptions::default(),
        },
        RetrievalStrategy::WholeArray,
    ]
}

const OPS: &[AggregateOp] = &[
    AggregateOp::Sum,
    AggregateOp::Avg,
    AggregateOp::Min,
    AggregateOp::Max,
    AggregateOp::Count,
];

/// Views covering single-chunk, cross-chunk, strided, and full access.
fn views(base: &ssdm_storage::ArrayProxy) -> Vec<ssdm_storage::ArrayProxy> {
    vec![
        base.subscript(0, 3).unwrap(),    // one row (within few chunks)
        base.subscript(1, 5).unwrap(),    // one column, crosses every chunk row
        base.slice(0, 1, 3, 22).unwrap(), // strided rows
        base.slice(0, 4, 1, 11)
            .and_then(|p| p.slice(1, 4, 1, 11))
            .unwrap(), // block spanning chunk seams
        base.clone(),                     // whole array
    ]
}

fn bits(n: &Num) -> (bool, u64) {
    match n {
        Num::Int(v) => (true, *v as u64),
        Num::Real(v) => (false, v.to_bits()),
    }
}

#[test]
fn parallel_aggregation_is_bit_identical() {
    for array in [real_matrix(), int_matrix()] {
        for strategy in strategies() {
            let mut store = ArrayStore::new(MemoryChunkStore::new());
            let base = store.store_array(&array, 256).unwrap();
            for view in views(&base) {
                for &op in OPS {
                    let seq = store.resolve_aggregate(&view, op, strategy).unwrap();
                    for workers in [1, 2, 4] {
                        let par = store
                            .resolve_aggregate_parallel(
                                &view,
                                op,
                                strategy,
                                ParallelConfig::with_workers(workers),
                            )
                            .unwrap();
                        assert_eq!(
                            bits(&par),
                            bits(&seq),
                            "{} {op:?} workers={workers}: {par:?} vs {seq:?}",
                            strategy.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn parallel_aggregation_matches_resident_for_int() {
    // Int aggregation must also agree bit-for-bit with aggregating the
    // resident array (the kernel checked-sum contract), not just with
    // the sequential streamed path.
    let array = int_matrix();
    let mut store = ArrayStore::new(MemoryChunkStore::new());
    let base = store.store_array(&array, 128).unwrap();
    for &op in OPS {
        let resident = array.aggregate(op).unwrap();
        let streamed = store
            .resolve_aggregate_parallel(
                &base,
                op,
                RetrievalStrategy::BufferedIn { buffer_size: 4 },
                ParallelConfig::with_workers(4),
            )
            .unwrap();
        assert_eq!(bits(&streamed), bits(&resident), "{op:?}");
    }
}

#[test]
fn empty_views_and_count_take_no_fetches() {
    let mut store = ArrayStore::new(MemoryChunkStore::new());
    let base = store.store_array(&real_matrix(), 256).unwrap();
    let config = ParallelConfig::with_workers(4);

    // Count needs no chunk payloads at all.
    store.backend_mut().reset_io_stats();
    let n = store
        .resolve_aggregate_parallel(&base, AggregateOp::Count, RetrievalStrategy::Single, config)
        .unwrap();
    assert_eq!(bits(&n), (true, (24 * 24) as u64));
    assert_eq!(store.backend().io_stats().statements, 0);

    // Empty array: Sum/Count answer without fetching, Min errors —
    // exactly like the sequential path.
    let empty = store.store_array(&NumArray::from_f64(vec![]), 256).unwrap();
    assert_eq!(
        bits(
            &store
                .resolve_aggregate_parallel(
                    &empty,
                    AggregateOp::Sum,
                    RetrievalStrategy::Single,
                    config
                )
                .unwrap()
        ),
        (true, 0)
    );
    assert!(store
        .resolve_aggregate_parallel(&empty, AggregateOp::Min, RetrievalStrategy::Single, config)
        .is_err());
    assert!(store
        .resolve_aggregate(&empty, AggregateOp::Min, RetrievalStrategy::Single)
        .is_err());
}

/// A back-end that declares `supports_parallel: false`; any call on the
/// shared-read path is a contract violation and panics.
struct NoParallelStore(MemoryChunkStore);

impl ChunkStore for NoParallelStore {
    fn put_chunk(&mut self, array_id: u64, chunk_id: u64, data: &[u8]) -> Result<(), StorageError> {
        self.0.put_chunk(array_id, chunk_id, data)
    }

    fn get_chunk(&mut self, array_id: u64, chunk_id: u64) -> Result<Vec<u8>, StorageError> {
        self.0.get_chunk(array_id, chunk_id)
    }

    fn delete_array(&mut self, array_id: u64, chunk_count: u64) -> Result<(), StorageError> {
        self.0.delete_array(array_id, chunk_count)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            supports_parallel: false,
            ..self.0.capabilities()
        }
    }

    fn io_stats(&self) -> IoStats {
        self.0.io_stats()
    }

    fn reset_io_stats(&mut self) {
        self.0.reset_io_stats()
    }
}

impl SharedChunkRead for NoParallelStore {
    fn read_chunk(&self, _: u64, _: u64) -> Result<Vec<u8>, StorageError> {
        panic!("shared read on a supports_parallel: false back-end")
    }

    fn read_chunks_in(&self, _: u64, _: &[u64]) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        panic!("shared read on a supports_parallel: false back-end")
    }

    fn read_chunk_range(
        &self,
        _: u64,
        _: u64,
        _: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        panic!("shared read on a supports_parallel: false back-end")
    }
}

#[test]
fn aggregate_degrades_on_unsupported_backends_and_one_worker() {
    let mut store = ArrayStore::new(NoParallelStore(MemoryChunkStore::new()));
    let base = store.store_array(&real_matrix(), 256).unwrap();
    let seq = store
        .resolve_aggregate(&base, AggregateOp::Sum, RetrievalStrategy::Single)
        .unwrap();
    // Capability gate: 4 workers requested, sequential path taken (the
    // panicking SharedChunkRead impl proves the shared path is unused).
    let gated = store
        .resolve_aggregate_parallel(
            &base,
            AggregateOp::Sum,
            RetrievalStrategy::Single,
            ParallelConfig::with_workers(4),
        )
        .unwrap();
    assert_eq!(bits(&gated), bits(&seq));

    // workers == 1 degrades the same way on any back-end.
    let mut plain = ArrayStore::new(MemoryChunkStore::new());
    let base = plain.store_array(&real_matrix(), 256).unwrap();
    let seq = plain
        .resolve_aggregate(&base, AggregateOp::Sum, RetrievalStrategy::Single)
        .unwrap();
    let one = plain
        .resolve_aggregate_parallel(
            &base,
            AggregateOp::Sum,
            RetrievalStrategy::Single,
            ParallelConfig::with_workers(1),
        )
        .unwrap();
    assert_eq!(bits(&one), bits(&seq));
}
