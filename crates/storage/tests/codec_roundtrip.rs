//! Property tests for the `SCC1` chunk codec: every policy must decode
//! every chunk bit-identically — including adversarial payloads full of
//! `-0.0`, NaN bit patterns and `i64::MIN` — and summaries must never
//! prune a chunk that holds a matching element. Corrupt frames must
//! surface as typed [`StorageError::Corrupt`] through the resilience
//! stack, never as silently wrong data.

use proptest::prelude::*;
use ssdm_array::{Num, NumArray, NumericType};
use ssdm_storage::codec::{decode_chunk, encode_chunk, summary_of};
use ssdm_storage::{
    ArrayStore, ChunkStore, CodecPolicy, MemoryChunkStore, ResilientChunkStore, RetrievalStrategy,
    RetryPolicy, StorageError, ValuePredicate,
};

const POLICIES: [CodecPolicy; 4] = [
    CodecPolicy::Raw,
    CodecPolicy::DeltaBp,
    CodecPolicy::Rle,
    CodecPolicy::Auto,
];

/// One 8-byte word, biased toward the patterns that break naive codecs:
/// extremes, sign-boundary values, NaN payloads and negative zero.
fn word() -> impl Strategy<Value = u64> {
    prop_oneof![
        any::<u64>(),
        Just(i64::MIN as u64),
        Just(i64::MAX as u64),
        Just(0u64),
        Just((-0.0f64).to_bits()),
        Just(f64::NAN.to_bits()),
        Just(f64::NAN.to_bits() | 0xDEAD), // non-canonical NaN payload
        Just(f64::INFINITY.to_bits()),
        Just(f64::NEG_INFINITY.to_bits()),
        (-100i64..100).prop_map(|v| v as u64),
    ]
}

/// Chunk shapes the heuristic must judge well: arbitrary words,
/// constant runs, slowly varying (delta-friendly) sequences.
fn chunk() -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        prop::collection::vec(word(), 0..200),
        (word(), 1usize..200).prop_map(|(w, n)| vec![w; n]),
        (any::<i64>(), -5i64..5, 1usize..200).prop_map(|(start, step, n)| {
            (0..n as i64)
                .map(|i| start.wrapping_add(i.wrapping_mul(step)) as u64)
                .collect()
        }),
    ]
}

fn bytes_of(words: &[u64]) -> Vec<u8> {
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// encode → decode is the identity on the raw bytes, under every
    /// policy and both element types, for any word soup whatsoever.
    #[test]
    fn every_policy_round_trips_bit_identically(words in chunk()) {
        let raw = bytes_of(&words);
        for ty in [NumericType::Int, NumericType::Real] {
            for policy in POLICIES {
                let (frame, _) = encode_chunk(&raw, ty, policy);
                let back = decode_chunk(&frame).expect("well-formed frame");
                prop_assert_eq!(&back, &raw, "policy {} ty {:?}", policy.name(), ty);
                // Raw fallback bounds the frame under every policy.
                prop_assert!(frame.len() <= raw.len() + ssdm_storage::SCC_HEADER);
            }
        }
    }

    /// A summary that answers "cannot match" must be right: no element
    /// of the chunk satisfies the predicate. (The converse — pruning
    /// everything prunable — is not required; skipping is conservative.)
    #[test]
    fn summaries_never_prune_a_matching_chunk(
        words in chunk(),
        a in -200i64..200,
        b in -200i64..200,
    ) {
        let raw = bytes_of(&words);
        for ty in [NumericType::Int, NumericType::Real] {
            let (frame, summary) = encode_chunk(&raw, ty, CodecPolicy::Auto);
            let (hdr, hdr_ty) = summary_of(&frame).expect("frame carries summary");
            prop_assert_eq!(hdr, summary);
            prop_assert_eq!(hdr_ty, ty);
            let (lo, hi) = (a.min(b), a.max(b));
            let pred = match ty {
                NumericType::Int => ValuePredicate::Range { lo: Num::Int(lo), hi: Num::Int(hi) },
                NumericType::Real => ValuePredicate::Range {
                    lo: Num::Real(lo as f64),
                    hi: Num::Real(hi as f64),
                },
            };
            if !summary.may_match(ty, &pred) {
                let any_match = words.iter().any(|&w| {
                    let n = match ty {
                        NumericType::Int => Num::Int(w as i64),
                        NumericType::Real => Num::Real(f64::from_bits(w)),
                    };
                    pred.matches(n)
                });
                prop_assert!(!any_match, "pruned a chunk with a match (ty {ty:?})");
            }
        }
    }

    /// Full store/resolve round trip through `ArrayStore` under each
    /// forced policy: elements come back exactly as stored.
    #[test]
    fn stored_arrays_resolve_identically_under_every_policy(
        vals in prop::collection::vec(any::<i64>(), 1..300),
        chunk_elems in 1usize..9,
    ) {
        let resident = NumArray::from_i64(vals);
        for policy in POLICIES {
            let mut store = ArrayStore::new(MemoryChunkStore::new());
            store.set_codec(policy);
            let proxy = store.store_array(&resident, chunk_elems * 8).unwrap();
            let got = store.resolve(&proxy, RetrievalStrategy::WholeArray).unwrap();
            prop_assert!(got.array_eq(&resident), "policy {}", policy.name());
        }
    }
}

/// The exact bit patterns the frame format promises to preserve,
/// pinned deterministically on top of the property sweep.
#[test]
fn adversarial_bit_patterns_survive_exactly() {
    let patterns: Vec<u64> = vec![
        (-0.0f64).to_bits(),
        0.0f64.to_bits(),
        f64::NAN.to_bits(),
        f64::NAN.to_bits() | 1, // distinct NaN payload
        f64::INFINITY.to_bits(),
        f64::NEG_INFINITY.to_bits(),
        i64::MIN as u64,
        i64::MAX as u64,
        1,
        u64::MAX,
    ];
    let raw = bytes_of(&patterns);
    for ty in [NumericType::Int, NumericType::Real] {
        for policy in POLICIES {
            let (frame, _) = encode_chunk(&raw, ty, policy);
            assert_eq!(
                decode_chunk(&frame).unwrap(),
                raw,
                "policy {} ty {ty:?}",
                policy.name()
            );
        }
    }
}

#[test]
fn all_nan_and_empty_chunks_round_trip() {
    for raw in [Vec::new(), bytes_of(&vec![f64::NAN.to_bits(); 64])] {
        for policy in POLICIES {
            let (frame, summary) = encode_chunk(&raw, NumericType::Real, policy);
            assert_eq!(decode_chunk(&frame).unwrap(), raw);
            assert_eq!(summary.nulls as usize, raw.len() / 8);
        }
    }
}

/// Codec-level damage under a valid CRC frame: the store stack returns
/// the bytes happily, and the decode layer must turn them into a typed,
/// chunk-addressed `Corrupt` error that the resilience machinery
/// classifies as transient (retryable), never into wrong elements.
#[test]
fn corrupt_frames_surface_as_typed_errors_through_resilient_store() {
    let resilient = ResilientChunkStore::new(MemoryChunkStore::new(), RetryPolicy::aggressive());
    let mut store = ArrayStore::new(resilient);
    let resident = NumArray::from_i64((0..64).collect());
    let proxy = store.store_array(&resident, 64).unwrap();
    let array_id = proxy.array_id();

    // Sanity: intact frames resolve.
    assert!(store
        .resolve(&proxy, RetrievalStrategy::Single)
        .unwrap()
        .array_eq(&resident));

    // Overwrite chunk 2 with garbage that is NOT an SCC1 frame. The
    // backend re-frames it with a valid checksum, so only the codec
    // layer can notice.
    store
        .backend_mut()
        .put_chunk(array_id, 2, b"not a frame")
        .unwrap();
    let err = store
        .resolve(&proxy, RetrievalStrategy::Single)
        .expect_err("corrupt codec frame must not resolve");
    match &err {
        StorageError::Corrupt {
            array_id: a,
            chunk_id: c,
            ..
        } => {
            assert_eq!((*a, *c), (array_id, 2));
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    assert!(err.is_transient(), "codec damage must be retryable");

    // A truncated frame body — valid header, missing payload bytes —
    // is equally typed, not a panic or a short result.
    let mut frame = ssdm_storage::codec::encode_chunk(
        &(0..8i64).flat_map(|v| v.to_le_bytes()).collect::<Vec<u8>>(),
        NumericType::Int,
        CodecPolicy::DeltaBp,
    )
    .0;
    frame.truncate(frame.len() - 3);
    store.backend_mut().put_chunk(array_id, 3, &frame).unwrap();
    let err = store
        .resolve(&proxy, RetrievalStrategy::Single)
        .expect_err("truncated codec frame must not resolve");
    assert!(
        matches!(err, StorageError::Corrupt { chunk_id: 2, .. })
            || matches!(err, StorageError::Corrupt { chunk_id: 3, .. }),
        "expected Corrupt on a damaged chunk, got {err:?}"
    );

    // Aggregates take the same decode path and fail the same way.
    let err = store
        .resolve_aggregate(
            &proxy,
            ssdm_array::AggregateOp::Sum,
            RetrievalStrategy::Single,
        )
        .expect_err("aggregate over corrupt chunk must fail");
    assert!(matches!(err, StorageError::Corrupt { .. }));
}
