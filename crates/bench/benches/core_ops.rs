//! Microbenchmarks of the core building blocks: array operations,
//! B+-tree access, SPD planning, Turtle parsing, and query parsing /
//! optimization — the components whose costs compose into the
//! experiment-level numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use ssdm_array::{AggregateOp, NumArray};
use ssdm_storage::spd::{self, SpdOptions};

fn bench_array_ops(c: &mut Criterion) {
    let a = NumArray::from_shape_fn(&[256, 256], |ix| ((ix[0] * 256 + ix[1]) as f64).into());
    let b = a.scalar_mul(2.0.into()).unwrap();
    let mut g = c.benchmark_group("array");
    g.bench_function("elementwise_add_64k", |bch| {
        bch.iter(|| std::hint::black_box(a.add(&b).unwrap()))
    });
    g.bench_function("aggregate_sum_64k", |bch| {
        bch.iter(|| std::hint::black_box(a.aggregate(AggregateOp::Sum).unwrap()))
    });
    g.bench_function("transpose_materialize_64k", |bch| {
        bch.iter(|| std::hint::black_box(a.transpose().materialize()))
    });
    g.bench_function("column_view_aggregate", |bch| {
        let col = a.subscript(1, 17).unwrap();
        bch.iter(|| std::hint::black_box(col.aggregate(AggregateOp::Sum).unwrap()))
    });
    g.finish();
}

fn bench_btree(c: &mut Criterion) {
    use relstore::{Db, DbOptions, Key};
    let mut db = Db::open_memory(DbOptions::default()).unwrap();
    for k in 0..10_000u64 {
        db.put(Key::new(1, k), &k.to_le_bytes()).unwrap();
    }
    let mut g = c.benchmark_group("relstore");
    g.bench_function("point_get", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k * 2654435761 + 1) % 10_000;
            std::hint::black_box(db.get(Key::new(1, k)).unwrap())
        })
    });
    g.bench_function("range_100", |b| {
        let mut lo = 0u64;
        b.iter(|| {
            lo = (lo + 997) % 9_900;
            std::hint::black_box(db.get_range(1, lo, lo + 99).unwrap())
        })
    });
    g.finish();
}

fn bench_spd(c: &mut Criterion) {
    let strided: Vec<u64> = (0..4096).map(|k| k * 3).collect();
    let random: Vec<u64> = (0..4096u64).map(|k| (k * k * 31 + 7) % 100_000).collect();
    let mut g = c.benchmark_group("spd");
    g.bench_function("plan_strided_4k", |b| {
        b.iter(|| std::hint::black_box(spd::plan(&strided, SpdOptions::default())))
    });
    g.bench_function("plan_random_4k", |b| {
        b.iter(|| std::hint::black_box(spd::plan(&random, SpdOptions::default())))
    });
    g.finish();
}

fn bench_parsing(c: &mut Criterion) {
    // Turtle parsing throughput with collection consolidation.
    let mut turtle = String::from("@prefix ex: <http://e#> .\n");
    for i in 0..200 {
        turtle.push_str(&format!(
            "ex:s{i} ex:p {i} ; ex:label \"node {i}\" ; ex:vec (1 2 3 4 5 6 7 8) .\n"
        ));
    }
    let query = r#"
        PREFIX ex: <http://e#>
        SELECT ?s (array_avg(?v[1:2:7]) AS ?m) WHERE {
            ?s ex:p ?x ; ex:vec ?v
            OPTIONAL { ?s ex:label ?l }
            FILTER (?x > 10 && ?x < 100)
        } ORDER BY DESC(?m) LIMIT 10"#;
    let mut g = c.benchmark_group("parse");
    g.bench_function("turtle_200_subjects", |b| {
        b.iter(|| {
            let mut graph = ssdm_rdf::Graph::new();
            ssdm_rdf::turtle::parse_into(&mut graph, &turtle).unwrap();
            std::hint::black_box(graph)
        })
    });
    g.bench_function("scisparql_query", |b| {
        b.iter(|| std::hint::black_box(scisparql::parser::parse(query).unwrap()))
    });
    // Translation + optimization against a loaded graph.
    let mut graph = ssdm_rdf::Graph::new();
    ssdm_rdf::turtle::parse_into(&mut graph, &turtle).unwrap();
    let scisparql::ast::Statement::Select(q) = scisparql::parser::parse(query).unwrap() else {
        unreachable!()
    };
    g.bench_function("optimize_plan", |b| {
        b.iter(|| {
            std::hint::black_box(scisparql::algebra::optimize(
                scisparql::algebra::translate(&q.pattern),
                &graph,
            ))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_array_ops, bench_btree, bench_spd, bench_parsing
}
criterion_main!(benches);
