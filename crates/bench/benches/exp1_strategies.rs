//! Criterion bench tracking Experiment 1 (retrieval strategies per
//! access pattern) over time. One group per access pattern, one bench
//! per strategy. Uses the no-latency relational back-end so measured
//! time is engine work, not simulated round trips.

use criterion::{criterion_group, criterion_main, Criterion};
use ssdm_bench::workload::{standard_patterns, QueryGenerator};
use ssdm_storage::{spd::SpdOptions, ArrayStore, RelChunkStore, RetrievalStrategy};

fn bench_strategies(c: &mut Criterion) {
    let (rows, cols) = (128, 128);
    let chunk_bytes = 1024;
    let mut store = ArrayStore::new(RelChunkStore::open_memory().expect("store"));
    let matrix = QueryGenerator::matrix(rows, cols);
    let base = store.store_array(&matrix, chunk_bytes).expect("store");

    let strategies = [
        RetrievalStrategy::Single,
        RetrievalStrategy::BufferedIn { buffer_size: 64 },
        RetrievalStrategy::SpdRange {
            options: SpdOptions::default(),
        },
        RetrievalStrategy::WholeArray,
    ];

    for pattern in standard_patterns() {
        let mut group = c.benchmark_group(format!("exp1/{}", pattern.name()));
        for strategy in strategies {
            group.bench_function(strategy.name(), |b| {
                let mut gen = QueryGenerator::new(rows, cols, 17);
                b.iter(|| {
                    let proxy = gen.instance(&base, pattern);
                    std::hint::black_box(store.resolve(&proxy, strategy).expect("resolve"))
                });
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_strategies
}
criterion_main!(benches);
