//! Criterion bench tracking Experiment 4: the BISTAB application
//! queries per storage configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use ssdm::bistab::{self, BistabConfig};
use ssdm::{Backend, Ssdm};

fn bench_bistab(c: &mut Criterion) {
    let config = BistabConfig {
        tasks: 100,
        realizations: 4,
        trajectory_len: 512,
        seed: 5,
    };
    type MakeDb = Box<dyn Fn() -> Ssdm>;
    let setups: Vec<(&str, MakeDb)> = vec![
        ("resident", Box::new(|| Ssdm::open(Backend::Memory))),
        (
            "relational",
            Box::new(|| {
                let mut db = Ssdm::open(Backend::Relational);
                db.set_externalize_threshold(128, 2048);
                db
            }),
        ),
    ];
    for (sname, make) in setups {
        let mut db = make();
        bistab::load_bistab(&mut db, &config).expect("load");
        let mut group = c.benchmark_group(format!("bistab/{sname}"));
        for (qname, q) in bistab::queries() {
            group.bench_function(qname, |b| {
                b.iter(|| std::hint::black_box(db.query(&q).expect("query")))
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_bistab
}
criterion_main!(benches);
