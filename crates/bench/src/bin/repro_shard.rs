//! Sharded chunk store scenario: read-throughput scaling, replica
//! offload, and the kill-one-replica failover drill.
//!
//! Three sweeps over the [`ShardedChunkStore`]:
//!
//! 1. **shard scaling** — latency-simulated relational primaries whose
//!    per-row cost dominates (the thesis' client-server regime); a
//!    batched read of every chunk fans out across shards in parallel,
//!    so wall time falls with the largest shard's share of the rows.
//! 2. **replica offload** — adding WAL-shipping read replicas moves the
//!    whole read path off the slow primaries: replica reads climb,
//!    primary reads drop to zero, queries get faster.
//! 3. **failover drill** — 4 shards x 2 replicas over in-memory
//!    primaries, one replica killed mid-workload: zero failed reads,
//!    at least one recorded failover, results bit-identical throughout.
//!
//! The binary *asserts* the PR's acceptance criteria and writes the
//! measurements as JSON (default `BENCH_shard.json`, `--out PATH`).
//!
//! ```text
//! repro_shard [--quick] [--out PATH]
//! ```

use std::time::Instant;

use relstore::{Db, DbOptions, LatencyModel};
use ssdm_bench::runner::print_table;
use ssdm_storage::shard::place;
use ssdm_storage::{
    ChunkStore, MemoryChunkStore, RelChunkStore, ShardOptions, ShardedChunkStore, SharedChunkRead,
    SharedChunkStore,
};

const ARRAY: u64 = 11;
const CHUNK_BYTES: usize = 1024;

fn usage() -> ! {
    eprintln!("usage: repro_shard [--quick] [--out PATH]");
    std::process::exit(2)
}

fn payload(c: u64) -> Vec<u8> {
    (0..CHUNK_BYTES)
        .map(|b| (c as u8).wrapping_mul(37).wrapping_add(b as u8))
        .collect()
}

/// The relational-primary latency regime: row transfer dominates the
/// per-statement overhead, so splitting the rows across shards that
/// fetch in parallel is what pays.
fn slow_model() -> LatencyModel {
    LatencyModel {
        per_statement: std::time::Duration::from_micros(200),
        per_row: std::time::Duration::from_micros(20),
        per_kib: std::time::Duration::from_micros(8),
    }
}

fn rel_primaries(shards: usize) -> Vec<Box<dyn SharedChunkStore>> {
    (0..shards)
        .map(|_| {
            let db = Db::open_memory(DbOptions {
                latency: slow_model(),
                ..DbOptions::default()
            })
            .expect("in-memory relational store");
            Box::new(RelChunkStore::new(db)) as Box<dyn SharedChunkStore>
        })
        .collect()
}

fn mem_primaries(shards: usize) -> Vec<Box<dyn SharedChunkStore>> {
    (0..shards)
        .map(|_| Box::new(MemoryChunkStore::new()) as Box<dyn SharedChunkStore>)
        .collect()
}

fn seeded(
    primaries: Vec<Box<dyn SharedChunkStore>>,
    replicas: usize,
    chunks: u64,
) -> ShardedChunkStore {
    let shards = primaries.len();
    let mut store = ShardedChunkStore::new(
        primaries,
        ShardOptions {
            replicas,
            read_workers: shards.max(4),
            ..ShardOptions::default()
        },
    )
    .expect("sharded store");
    store.begin_array(ARRAY, chunks as usize).expect("begin");
    for c in 0..chunks {
        store.put_chunk(ARRAY, c, &payload(c)).expect("put");
    }
    store
}

fn check(rows: &[(u64, Vec<u8>)], ids: &[u64]) {
    assert_eq!(rows.len(), ids.len(), "row count");
    for ((got_id, got), &want_id) in rows.iter().zip(ids) {
        assert_eq!(*got_id, want_id, "id order");
        assert_eq!(*got, payload(want_id), "chunk {want_id} payload");
    }
}

fn main() {
    let mut quick = false;
    let mut out = "BENCH_shard.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    let chunks: u64 = if quick { 96 } else { 256 };
    let queries = if quick { 4 } else { 12 };
    let ids: Vec<u64> = (0..chunks).collect();

    println!("Sharded chunk store: scaling, replica offload, failover drill");
    println!(
        "{chunks} chunks x {CHUNK_BYTES} B, row-dominated relational latency \
         (200 us/stmt + 20 us/row + 8 us/KiB), {queries} queries per cell"
    );

    // --- Sweep 1: shard count (relational primaries, no replicas) --------
    struct ScaleCell {
        shards: usize,
        per_query_ms: f64,
        largest_share: f64,
        speedup: f64,
    }
    let mut scale_cells: Vec<ScaleCell> = Vec::new();
    let mut baseline_ms = 0.0;
    for &shards in &[1usize, 2, 4] {
        let store = seeded(rel_primaries(shards), 0, chunks);
        let start = Instant::now();
        for _ in 0..queries {
            let rows = store.read_chunks_in(ARRAY, &ids).expect("batched read");
            check(&rows, &ids);
        }
        let per_query_ms = start.elapsed().as_secs_f64() * 1e3 / queries as f64;
        if shards == 1 {
            baseline_ms = per_query_ms;
        }
        let largest = (0..shards)
            .map(|s| {
                ids.iter()
                    .filter(|&&c| place(ARRAY, c, shards) == s)
                    .count()
            })
            .max()
            .unwrap_or(0);
        scale_cells.push(ScaleCell {
            shards,
            per_query_ms,
            largest_share: largest as f64 / chunks as f64,
            speedup: baseline_ms / per_query_ms,
        });
    }

    // --- Sweep 2: replica offload (2 shards, memory replicas) ------------
    struct ReplicaCell {
        replicas: usize,
        per_query_ms: f64,
        primary_reads: u64,
        replica_reads: u64,
        speedup: f64,
    }
    let mut replica_cells: Vec<ReplicaCell> = Vec::new();
    let mut replica_baseline_ms = 0.0;
    for &replicas in &[0usize, 1, 2] {
        let store = seeded(rel_primaries(2), replicas, chunks);
        // One untimed pass ships the WAL and catches replicas up, so the
        // timed passes measure steady-state routing.
        check(&store.read_chunks_in(ARRAY, &ids).expect("warm-up"), &ids);
        let warm_stats = store.stats();
        let start = Instant::now();
        for _ in 0..queries {
            let rows = store.read_chunks_in(ARRAY, &ids).expect("batched read");
            check(&rows, &ids);
        }
        let per_query_ms = start.elapsed().as_secs_f64() * 1e3 / queries as f64;
        if replicas == 0 {
            replica_baseline_ms = per_query_ms;
        }
        let stats = store.stats();
        let primary: u64 = stats.shards.iter().map(|s| s.primary_reads).sum::<u64>()
            - warm_stats
                .shards
                .iter()
                .map(|s| s.primary_reads)
                .sum::<u64>();
        let replica: u64 = stats.shards.iter().map(|s| s.replica_reads).sum::<u64>()
            - warm_stats
                .shards
                .iter()
                .map(|s| s.replica_reads)
                .sum::<u64>();
        replica_cells.push(ReplicaCell {
            replicas,
            per_query_ms,
            primary_reads: primary,
            replica_reads: replica,
            speedup: replica_baseline_ms / per_query_ms,
        });
    }

    // --- Sweep 3: failover drill (4 shards x 2 replicas, kill one) -------
    let drill = {
        let store = seeded(mem_primaries(4), 2, chunks);
        let rounds = if quick { 6 } else { 16 };
        let mut failed_reads = 0u64;
        let mut total_reads = 0u64;
        for round in 0..rounds {
            if round == rounds / 2 {
                store.kill_replica(1, 0); // mid-workload
            }
            for &c in &ids {
                total_reads += 1;
                match store.read_chunk(ARRAY, c) {
                    Ok(data) => assert_eq!(data, payload(c), "chunk {c} bit-identical"),
                    Err(_) => failed_reads += 1,
                }
            }
            let rows = store.read_chunks_in(ARRAY, &ids).expect("batched read");
            total_reads += 1;
            check(&rows, &ids);
        }
        let stats = store.stats();
        (
            failed_reads,
            total_reads,
            stats.failovers,
            stats.breaker_opens,
        )
    };
    let (failed_reads, total_reads, failovers, breaker_opens) = drill;

    // --- Report ----------------------------------------------------------
    let header: Vec<String> = ["shards", "ms/query", "largest share", "speedup"]
        .into_iter()
        .map(String::from)
        .collect();
    let rows: Vec<Vec<String>> = scale_cells
        .iter()
        .map(|c| {
            vec![
                format!("{}", c.shards),
                format!("{:.2}", c.per_query_ms),
                format!("{:.0}%", c.largest_share * 100.0),
                format!("{:.2}x", c.speedup),
            ]
        })
        .collect();
    print_table(
        "batched read scaling across shards (bit-identical ✓)",
        &header,
        &rows,
    );

    let header: Vec<String> = [
        "replicas",
        "ms/query",
        "primary reads",
        "replica reads",
        "speedup",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    let rows: Vec<Vec<String>> = replica_cells
        .iter()
        .map(|c| {
            vec![
                format!("{}", c.replicas),
                format!("{:.2}", c.per_query_ms),
                format!("{}", c.primary_reads),
                format!("{}", c.replica_reads),
                format!("{:.1}x", c.speedup),
            ]
        })
        .collect();
    print_table(
        "replica offload of the read path (2 shards)",
        &header,
        &rows,
    );

    println!(
        "failover drill: {total_reads} reads, {failed_reads} failed, \
         {failovers} failovers, {breaker_opens} breaker trips"
    );

    // --- Acceptance assertions -------------------------------------------
    let s2 = scale_cells
        .iter()
        .find(|c| c.shards == 2)
        .expect("2-shard cell");
    let s4 = scale_cells
        .iter()
        .find(|c| c.shards == 4)
        .expect("4-shard cell");
    assert!(
        s2.speedup >= 1.4,
        "expected >=1.4x at 2 shards, got {:.2}x",
        s2.speedup
    );
    assert!(
        s4.speedup >= 2.0,
        "expected >=2x at 4 shards, got {:.2}x",
        s4.speedup
    );
    println!(
        "\nscaling acceptance ✓: {:.2}x at 2 shards, {:.2}x at 4 shards",
        s2.speedup, s4.speedup
    );
    let offloaded = replica_cells
        .iter()
        .find(|c| c.replicas > 0)
        .expect("replica cell");
    assert_eq!(
        offloaded.primary_reads, 0,
        "live replicas must keep primaries out of the read path"
    );
    assert!(offloaded.replica_reads > 0, "replicas must serve the reads");
    println!(
        "offload acceptance ✓: {} replica reads, 0 primary reads, {:.1}x",
        offloaded.replica_reads, offloaded.speedup
    );
    assert_eq!(failed_reads, 0, "failover drill must lose zero reads");
    assert!(failovers >= 1, "the killed replica must record a failover");
    println!("failover acceptance ✓: 0/{total_reads} failed, {failovers} failovers");

    // --- JSON -------------------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"chunks\": {chunks}, \"chunk_bytes\": {CHUNK_BYTES}, \
         \"queries\": {queries}, \"latency\": \"row_dominated\", \"quick\": {quick}}},\n"
    ));
    json.push_str("  \"scaling\": [\n");
    for (i, c) in scale_cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \"per_query_ms\": {:.4}, \"largest_share\": {:.4}, \
             \"speedup\": {:.3}, \"bit_identical\": true}}{}\n",
            c.shards,
            c.per_query_ms,
            c.largest_share,
            c.speedup,
            if i + 1 < scale_cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"replica_offload\": [\n");
    for (i, c) in replica_cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"replicas\": {}, \"per_query_ms\": {:.4}, \"primary_reads\": {}, \
             \"replica_reads\": {}, \"speedup\": {:.3}}}{}\n",
            c.replicas,
            c.per_query_ms,
            c.primary_reads,
            c.replica_reads,
            c.speedup,
            if i + 1 < replica_cells.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"failover_drill\": {{\"total_reads\": {total_reads}, \
         \"failed_reads\": {failed_reads}, \"failovers\": {failovers}, \
         \"breaker_opens\": {breaker_opens}, \"bit_identical\": true}}\n}}\n"
    ));
    std::fs::write(&out, json).expect("write JSON");
    println!("wrote {out}");
}
