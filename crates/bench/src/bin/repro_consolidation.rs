//! Experiment 5 (thesis §2.3.5.1 / §5.3.2): collection consolidation.
//!
//! Quantifies the thesis' motivating claim: representing an n-element
//! numeric collection as an RDF linked list costs ~3n+1 triples and
//! makes element access a chain of `rdf:first`/`rdf:rest` hops, while
//! the consolidated array costs one triple and answers `?a[i]` in
//! constant time. Sweeps the array size and reports graph sizes and
//! element-access query times for both representations.

use std::time::Instant;

use ssdm::{Backend, Ssdm};
use ssdm_bench::fmt_ms;
use ssdm_bench::runner::print_table;
use ssdm_rdf::turtle::ParseOptions;

fn main() {
    println!("Experiment 5: RDF-collection consolidation (thesis §5.3.2)");
    let sizes = [4usize, 16, 64, 256, 1024, 4096];

    let header: Vec<String> = [
        "elements",
        "list triples",
        "array triples",
        "reduction",
        "list access ms",
        "array access ms",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut table = Vec::new();

    for &n in &sizes {
        let values: String = (0..n).map(|i| i.to_string()).collect::<Vec<_>>().join(" ");
        let turtle = format!("@prefix ex: <http://e#> . ex:s ex:data ({values}) .");

        // Expanded (legacy RDF) representation.
        let mut expanded = ssdm_rdf::Graph::new();
        ssdm_rdf::turtle::parse_into_with(
            &mut expanded,
            &turtle,
            ParseOptions {
                consolidate_arrays: false,
            },
        )
        .expect("parse");
        let list_triples = expanded.len();

        // Element access in list form: a chain of rest-hops to index
        // n/2, expressed as a property path (the thesis' "(x+y) triple
        // patterns" observation, using p* here for generality).
        let mut list_db = Ssdm::open(Backend::Memory);
        ssdm_rdf::turtle::parse_into_with(
            &mut list_db.dataset.graph,
            &turtle,
            ParseOptions {
                consolidate_arrays: false,
            },
        )
        .expect("parse");
        let target = n / 2;
        let hops = "rdf:rest/".repeat(target);
        let list_q = format!(
            "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
             PREFIX ex: <http://e#>
             SELECT ?v WHERE {{ ex:s ex:data ?l . ?l {hops}rdf:first ?v }}"
        );
        let t = Instant::now();
        let rows = list_db
            .query(&list_q)
            .expect("list query")
            .into_rows()
            .unwrap();
        let list_time = t.elapsed().as_secs_f64();
        assert_eq!(rows[0][0].as_ref().unwrap().to_string(), target.to_string());

        // Consolidated representation.
        let mut arr_db = Ssdm::open(Backend::Memory);
        arr_db.load_turtle(&turtle).expect("parse");
        let array_triples = arr_db.dataset.graph.len();
        let arr_q = format!(
            "PREFIX ex: <http://e#> SELECT (?a[{}] AS ?v) WHERE {{ ex:s ex:data ?a }}",
            target + 1
        );
        let t = Instant::now();
        let rows = arr_db
            .query(&arr_q)
            .expect("array query")
            .into_rows()
            .unwrap();
        let array_time = t.elapsed().as_secs_f64();
        assert_eq!(rows[0][0].as_ref().unwrap().to_string(), target.to_string());

        table.push(vec![
            n.to_string(),
            list_triples.to_string(),
            array_triples.to_string(),
            format!("{}x", list_triples / array_triples.max(1)),
            fmt_ms(list_time),
            fmt_ms(array_time),
        ]);
    }
    print_table(
        "graph size and element-access time: linked list vs consolidated array",
        &header,
        &table,
    );
    println!(
        "\nReading: the list form needs 2n+1 triples and O(n) path evaluation per \
         access; the array form is 1 triple and O(1) dereference — the gap the \
         thesis' Fig. 4 example (13 triples for a 2x2 matrix) illustrates."
    );
}
