//! Experiment 7 (thesis §6.2.5): Sequence Pattern Detector ablation.
//!
//! Feeds chunk-id sequences of varying regularity to the fetch planner
//! with SPD enabled (SPD-RANGE) and disabled (BUFFERED-IN with the same
//! batch budget), and reports statements issued, chunks fetched and
//! time against the latency-charged relational back-end. This isolates
//! the SPD's contribution: discovering access regularity *at query
//! runtime* instead of relying on tile design (§2.5).

use relstore::{DbOptions, LatencyModel};
use ssdm_bench::fmt_ms;
use ssdm_bench::runner::{print_table, run_pattern};
use ssdm_bench::workload::{AccessPattern, QueryGenerator};
use ssdm_storage::spd::{self, SpdOptions};
use ssdm_storage::{ArrayStore, ChunkStore, RelChunkStore, RetrievalStrategy};

fn main() {
    println!("Experiment 7: SPD effectiveness (thesis §6.2.5)");

    // Part A: planner-level — statements and overfetch per id-sequence.
    println!("\nPart A: fetch plans for synthetic chunk-id sequences");
    let seqs: Vec<(&str, Vec<u64>)> = vec![
        ("dense 0..100", (0..100).collect()),
        ("stride 2", (0..100).map(|k| k * 2).collect()),
        ("stride 7", (0..60).map(|k| k * 7).collect()),
        ("two runs", (0..40).chain(500..540).collect()),
        (
            "random-ish",
            (0..80u64).map(|k| (k * k * 37 + 11) % 4096).collect(),
        ),
    ];
    let header: Vec<String> = [
        "sequence",
        "ids",
        "SPD stmts",
        "SPD fetch",
        "IN stmts",
        "IN fetch",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut table = Vec::new();
    for (name, ids) in &seqs {
        let spd_plan = spd::plan(ids, SpdOptions::default());
        let (needed, spd_fetch) = spd::plan_overfetch(ids, &spd_plan);
        let in_stmts = ids.len().div_ceil(SpdOptions::default().max_in_list);
        table.push(vec![
            name.to_string(),
            needed.to_string(),
            spd_plan.len().to_string(),
            spd_fetch.to_string(),
            in_stmts.to_string(),
            needed.to_string(),
        ]);
    }
    print_table(
        "planner output (statements / chunks fetched)",
        &header,
        &table,
    );

    // Part B: end-to-end against the back-end with latency.
    println!("\nPart B: end-to-end resolution, SPD on vs off");
    let (rows, cols) = (256, 256);
    let chunk_bytes = 512; // 64 elements -> 4 chunks per row
    let queries = 10;
    let db = relstore::Db::open_memory(DbOptions {
        pool_pages: 8192,
        latency: LatencyModel::local_dbms(),
    })
    .expect("db");
    let mut store = ArrayStore::new(RelChunkStore::new(db));
    let matrix = QueryGenerator::matrix(rows, cols);
    let base = store.store_array(&matrix, chunk_bytes).expect("store");

    let patterns = [
        AccessPattern::Column,
        AccessPattern::StridedRows { stride: 2 },
        AccessPattern::StridedRows { stride: 16 },
        AccessPattern::Whole,
    ];
    let header: Vec<String> = [
        "pattern",
        "SPD ms/q",
        "SPD stmts/q",
        "SPD overfetch",
        "no-SPD ms/q",
        "no-SPD stmts/q",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut table = Vec::new();
    for &pattern in &patterns {
        let mut gen = QueryGenerator::new(rows, cols, 11);
        let spd_m = run_pattern(
            &mut store,
            &base,
            &mut gen,
            pattern,
            RetrievalStrategy::SpdRange {
                options: SpdOptions::default(),
            },
            queries,
        );
        let mut gen = QueryGenerator::new(rows, cols, 11);
        let in_m = run_pattern(
            &mut store,
            &base,
            &mut gen,
            pattern,
            RetrievalStrategy::BufferedIn { buffer_size: 256 },
            queries,
        );
        table.push(vec![
            pattern.name(),
            fmt_ms(spd_m.total_seconds / queries as f64),
            format!("{:.1}", spd_m.statements as f64 / queries as f64),
            format!("{:.2}", spd_m.overfetch()),
            fmt_ms(in_m.total_seconds / queries as f64),
            format!("{:.1}", in_m.statements as f64 / queries as f64),
        ]);
    }
    print_table("SPD-RANGE vs BUFFERED-IN(256)", &header, &table);

    // Part C: bags of array proxies (§6.2.4) — the BISTAB shape: many
    // small arrays, the query touching (a part of) each.
    println!("\nPart C: resolving bags of proxies across arrays");
    let db = relstore::Db::open_memory(DbOptions {
        pool_pages: 8192,
        latency: LatencyModel::local_dbms(),
    })
    .expect("db");
    let mut store = ArrayStore::new(RelChunkStore::new(db));
    let fleet: Vec<_> = (0..500)
        .map(|k| {
            let a =
                ssdm_array::NumArray::from_f64((0..256).map(|i| (k * 1000 + i) as f64).collect());
            store.store_array(&a, 512).expect("store") // 4 chunks each
        })
        .collect();
    let heads: Vec<_> = fleet
        .iter()
        .map(|p| p.slice(0, 0, 1, 63).unwrap()) // first chunk of each
        .collect();

    let header: Vec<String> = ["workload", "mode", "ms", "statements", "chunks"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut table = Vec::new();
    for (wname, views) in [("whole arrays", &fleet), ("first quarter", &heads)] {
        // Per-proxy resolution.
        store.backend_mut().reset_io_stats();
        let t = std::time::Instant::now();
        for v in views.iter() {
            store
                .resolve(
                    v,
                    RetrievalStrategy::SpdRange {
                        options: SpdOptions::default(),
                    },
                )
                .expect("resolve");
        }
        let per = (t.elapsed().as_secs_f64(), store.backend().io_stats());
        // Bag resolution.
        store.backend_mut().reset_io_stats();
        let t = std::time::Instant::now();
        store
            .resolve_bag(
                views,
                RetrievalStrategy::SpdRange {
                    options: SpdOptions::default(),
                },
            )
            .expect("bag");
        let bag = (t.elapsed().as_secs_f64(), store.backend().io_stats());
        table.push(vec![
            wname.to_string(),
            "per-proxy".into(),
            fmt_ms(per.0),
            per.1.statements.to_string(),
            per.1.chunks_returned.to_string(),
        ]);
        table.push(vec![
            wname.to_string(),
            "bag".into(),
            fmt_ms(bag.0),
            bag.1.statements.to_string(),
            bag.1.chunks_returned.to_string(),
        ]);
    }
    print_table("per-proxy vs bag resolution (500 arrays)", &header, &table);

    println!(
        "\nReading: regular patterns collapse to a handful of range statements under \
         SPD; for irregular sequences SPD falls back to IN-lists and matches the \
         baseline, so enabling it is never a regression. Bags of proxies (Part C) \
         collapse hundreds of per-array statement rounds into a few clustered scans."
    );
}
