//! Observability overhead: the cost of the always-on recorder.
//!
//! The `obs` recorder sits on the hottest paths in the system — chunk
//! fetch, cache lookup, WAL fsync, query latency — so its cost must be
//! negligible or nobody will leave it on. This binary replays the
//! `repro_parallel` workload (COLUMN views over a latency-simulated
//! relational back-end, cold and warm cache passes) twice per round:
//! once with the recorder enabled (the default) and once with it
//! disabled via `Recorder::set_enabled(false)`, interleaved A/B so
//! drift hits both sides equally.
//!
//! The binary *asserts* the PR's acceptance criterion — **< 3 %
//! overhead** on the latency-simulated workload — and writes the
//! measurements as JSON (default `BENCH_obs.json`, `--out PATH`). A
//! second, latency-free sweep over an in-memory back-end reports the
//! worst-case relative cost for information (not asserted: with no
//! simulated round trips the denominator is microseconds).
//!
//! ```text
//! repro_obs [--quick] [--rounds N] [--out PATH]
//! ```

use std::time::Instant;

use relstore::{Db, DbOptions, LatencyModel};
use ssdm_bench::runner::print_table;
use ssdm_bench::workload::{AccessPattern, QueryGenerator};
use ssdm_storage::{
    ArrayStore, CachedChunkStore, ChunkStore, MemoryChunkStore, RelChunkStore, RetrievalStrategy,
};

const ROWS: usize = 128;
const COLS: usize = 128;
const CHUNK_BYTES: usize = 1024;
const GEN_SEED: u64 = 1717;
const CACHE_BYTES: usize = 4 << 20;

fn usage() -> ! {
    eprintln!("usage: repro_obs [--quick] [--rounds N] [--out PATH]");
    std::process::exit(2)
}

/// One timed pass of the query batch: resolve every view, return
/// milliseconds per query.
fn run_batch<S: ChunkStore>(store: &mut ArrayStore<S>, views: &[ssdm_storage::ArrayProxy]) -> f64 {
    let start = Instant::now();
    for v in views {
        std::hint::black_box(
            store
                .resolve(v, RetrievalStrategy::Single)
                .expect("resolve"),
        );
    }
    start.elapsed().as_secs_f64() * 1e3 / views.len() as f64
}

/// Median of a sample (ms).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

struct Sweep {
    label: &'static str,
    on_ms: f64,
    off_ms: f64,
}

impl Sweep {
    fn overhead_pct(&self) -> f64 {
        (self.on_ms / self.off_ms - 1.0) * 100.0
    }
}

/// A/B the recorder over one store constructor: alternate
/// enabled/disabled passes for `rounds` rounds, keep medians.
/// `cold_each_pass` drops the chunk cache before every timed pass so
/// each pass pays the simulated round trips (the repro_parallel cold
/// profile); otherwise passes run warm (pure in-memory hit path).
fn sweep<S: ChunkStore>(
    label: &'static str,
    rounds: usize,
    queries: usize,
    cold_each_pass: bool,
    mut make: impl FnMut() -> ArrayStore<CachedChunkStore<S>>,
) -> Sweep {
    let rec = ssdm_obs::recorder();
    let mut on = Vec::new();
    let mut off = Vec::new();
    for round in 0..rounds {
        let mut store = make();
        let matrix = QueryGenerator::matrix(ROWS, COLS);
        let base = store.store_array(&matrix, CHUNK_BYTES).expect("store");
        let mut gen = QueryGenerator::new(ROWS, COLS, GEN_SEED);
        let views: Vec<_> = (0..queries)
            .map(|_| gen.instance(&base, AccessPattern::Column))
            .collect();
        // Warm pass to populate the cache and fault in lazy state, then
        // alternate the A/B order per round so neither side always runs
        // second (drift-fair).
        run_batch(&mut store, &views);
        let order = [round % 2 == 0, round % 2 != 0];
        for enabled in order {
            if cold_each_pass {
                store.backend().cache().clear();
            }
            rec.set_enabled(enabled);
            let ms = run_batch(&mut store, &views);
            if enabled {
                on.push(ms);
            } else {
                off.push(ms);
            }
        }
        rec.set_enabled(true);
    }
    Sweep {
        label,
        on_ms: median(on),
        off_ms: median(off),
    }
}

fn main() {
    let mut quick = false;
    let mut rounds = 9;
    let mut out = "BENCH_obs.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    if quick {
        rounds = rounds.min(3);
    }
    let queries = if quick { 5 } else { 20 };

    println!("Recorder overhead: enabled vs. disabled, interleaved A/B");
    println!(
        "matrix {ROWS}x{COLS} f64, chunk {CHUNK_BYTES} B, {queries} queries/pass, \
         {rounds} rounds, median of medians"
    );

    // The repro_parallel workload: simulated network round trips
    // dominate, as in the thesis' client-server runs. This is the
    // configuration the <3% acceptance bound applies to.
    let latency = sweep("networked (cold cache)", rounds, queries, true, || {
        let db = Db::open_memory(DbOptions {
            latency: LatencyModel::networked_dbms(),
            ..DbOptions::default()
        })
        .expect("in-memory relational store");
        ArrayStore::new(CachedChunkStore::new(RelChunkStore::new(db), CACHE_BYTES))
    });

    // Worst case for information only: no latency, warm cache — every
    // span and counter lands on a nanosecond-scale operation.
    let memory = sweep("in-memory (warm cache)", rounds, queries, false, || {
        ArrayStore::new(CachedChunkStore::new(MemoryChunkStore::new(), CACHE_BYTES))
    });

    let header: Vec<String> = ["workload", "on ms/q", "off ms/q", "overhead"]
        .into_iter()
        .map(String::from)
        .collect();
    let rows: Vec<Vec<String>> = [&latency, &memory]
        .iter()
        .map(|s| {
            vec![
                s.label.to_string(),
                format!("{:.3}", s.on_ms),
                format!("{:.3}", s.off_ms),
                format!("{:+.2}%", s.overhead_pct()),
            ]
        })
        .collect();
    print_table("recorder overhead", &header, &rows);

    assert!(
        latency.overhead_pct() < 3.0,
        "recorder overhead {:.2}% >= 3% on the latency-simulated workload",
        latency.overhead_pct()
    );
    println!(
        "\nobs acceptance ✓: {:+.2}% overhead on the networked workload (<3% required)",
        latency.overhead_pct()
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"rows\": {ROWS}, \"cols\": {COLS}, \"chunk_bytes\": {CHUNK_BYTES}, \
         \"queries\": {queries}, \"rounds\": {rounds}, \"quick\": {quick}}},\n  \"sweeps\": [\n"
    ));
    for (i, s) in [&latency, &memory].iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"on_ms\": {:.5}, \"off_ms\": {:.5}, \
             \"overhead_pct\": {:.3}}}{}\n",
            s.label,
            s.on_ms,
            s.off_ms,
            s.overhead_pct(),
            if i == 0 { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write JSON");
    println!("wrote {out}");
}
