//! Experiment 6 (thesis §5.3.3): Data Cube consolidation.
//!
//! Sweeps the number of observations in a generated RDF Data Cube and
//! measures (a) triple counts before/after consolidation and (b) the
//! time of a representative cell lookup in each form — the "drastically
//! reducing the graph size ... speeding up pattern-matching queries"
//! claim.

use std::time::Instant;

use ssdm::datacube::{consolidate_datacube, generate_datacube};
use ssdm::{Backend, Ssdm};
use ssdm_bench::fmt_ms;
use ssdm_bench::runner::print_table;

fn main() {
    println!("Experiment 6: Data Cube consolidation (thesis §5.3.3)");
    let shapes: [&[usize]; 5] = [&[4, 4], &[8, 8], &[16, 16], &[16, 16, 4], &[32, 32, 4]];

    let header: Vec<String> = [
        "cube",
        "cells",
        "triples before",
        "triples after",
        "reduction",
        "consolidate ms",
        "obs lookup ms",
        "array lookup ms",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut table = Vec::new();

    for dims in shapes {
        let cells: usize = dims.iter().product();
        let turtle = generate_datacube(dims);
        let mut db = Ssdm::open(Backend::Memory);
        db.load_turtle(&turtle).expect("load");
        let before = db.dataset.graph.len();

        // Observation-form lookup of a middle cell.
        let coord: Vec<usize> = dims.iter().map(|&d| d / 2).collect();
        let dim_conds: String = coord
            .iter()
            .enumerate()
            .map(|(d, c)| format!("ex:dim{} {} ; ", d + 1, c))
            .collect();
        let obs_q = format!(
            "PREFIX qb: <http://purl.org/linked-data/cube#>
             PREFIX ex: <http://example.org/cube/>
             SELECT ?m WHERE {{ ?o {dim_conds} qb:measure ?m }}"
        );
        let t = Instant::now();
        let obs_rows = db.query(&obs_q).expect("obs query").into_rows().unwrap();
        let obs_time = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let report = consolidate_datacube(&mut db.dataset.graph);
        let cons_time = t.elapsed().as_secs_f64();
        assert_eq!(report.datasets, 1, "cube must consolidate");
        let after = db.dataset.graph.len();

        let subs: String = coord
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let arr_q = format!(
            "PREFIX ex: <http://example.org/cube/>
             SELECT (?a[{subs}] AS ?m)
             WHERE {{ ex:ds <urn:ssdm:datacube:measureArray> ?a }}"
        );
        let t = Instant::now();
        let arr_rows = db.query(&arr_q).expect("array query").into_rows().unwrap();
        let arr_time = t.elapsed().as_secs_f64();
        assert_eq!(
            obs_rows[0][0].as_ref().unwrap().to_string(),
            arr_rows[0][0].as_ref().unwrap().to_string(),
            "lookups must agree"
        );

        table.push(vec![
            dims.iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("x"),
            cells.to_string(),
            before.to_string(),
            after.to_string(),
            format!("{}x", before / after.max(1)),
            fmt_ms(cons_time),
            fmt_ms(obs_time),
            fmt_ms(arr_time),
        ]);
    }
    print_table("Data Cube: graph size and lookup time", &header, &table);
    println!(
        "\nReading: the observation form grows with cells x (dims+2) while the \
         consolidated form stays constant-size; cell lookups in the array form \
         are O(1) dereferences instead of multi-way joins."
    );
}
