//! Fault-tolerance scenario: query success rate vs injected fault rate.
//!
//! Runs the mini-benchmark's access patterns against an in-memory
//! back-end wrapped in a deterministic `FaultInjectingChunkStore`,
//! twice per fault rate: once bare (every transient back-end fault
//! sinks its query) and once behind a `ResilientChunkStore` with
//! retry/backoff plus the APR's per-chunk fallback. A query counts as a
//! success only if it returns *and* its elements are bit-identical to
//! the fault-free baseline.
//!
//! Expected shape: the bare stack's success rate decays roughly with
//! (1 - rate)^statements, while the resilient stack stays at 100% far
//! past realistic fault rates, at the cost of retries visible in the
//! right-hand columns. `SSDM_FAULT_SEED` overrides the plan seed.

use ssdm_bench::runner::print_table;
use ssdm_bench::workload::{AccessPattern, QueryGenerator};
use ssdm_storage::spd::SpdOptions;
use ssdm_storage::{
    ArrayStore, ChunkStore, FaultInjectingChunkStore, FaultPlan, MemoryChunkStore,
    ResilientChunkStore, RetrievalStrategy, RetryPolicy,
};

const ROWS: usize = 128;
const COLS: usize = 128;
const CHUNK_BYTES: usize = 1024;
const QUERIES: usize = 150;
const GEN_SEED: u64 = 4242;

fn patterns() -> Vec<AccessPattern> {
    vec![
        AccessPattern::Row,
        AccessPattern::Column,
        AccessPattern::StridedRows { stride: 4 },
        AccessPattern::Block { rows: 16, cols: 16 },
    ]
}

struct Outcome {
    succeeded: usize,
    wrong: usize,
    retries: u64,
    fallbacks: u64,
    giveups: u64,
}

/// Run the workload against a fresh store stack; `expected[i]` is the
/// fault-free result of query `i`.
fn run<S: ChunkStore>(store: &mut ArrayStore<S>, expected: &[Vec<f64>]) -> Outcome {
    let matrix = QueryGenerator::matrix(ROWS, COLS);
    let base = store.store_array(&matrix, CHUNK_BYTES).expect("store");
    let mut gen = QueryGenerator::new(ROWS, COLS, GEN_SEED);
    let strategy = RetrievalStrategy::SpdRange {
        options: SpdOptions::default(),
    };
    let mut out = Outcome {
        succeeded: 0,
        wrong: 0,
        retries: 0,
        fallbacks: 0,
        giveups: 0,
    };
    let pats = patterns();
    for i in 0..QUERIES {
        let view = gen.instance(&base, pats[i % pats.len()]);
        if let Ok(a) = store.resolve(&view, strategy) {
            let got: Vec<f64> = a.elements().iter().map(|n| n.as_f64()).collect();
            if got == expected[i] {
                out.succeeded += 1;
            } else {
                out.wrong += 1;
            }
        }
        let s = store.last_stats();
        out.retries += s.retries;
        out.fallbacks += s.fallbacks;
    }
    out.giveups = store.backend().resilience_stats().giveups;
    out
}

fn main() {
    let seed = FaultPlan::seed_from_env(7);
    let rates = [0.0, 0.01, 0.02, 0.05, 0.10, 0.20, 0.40];

    println!("Fault tolerance: success rate vs injected transient-fault rate");
    println!(
        "matrix {ROWS}x{COLS} f64, chunk {CHUNK_BYTES} B, {QUERIES} SPD-RANGE queries per cell, \
         plan seed {seed} (override with SSDM_FAULT_SEED)"
    );

    // Fault-free ground truth, once.
    let expected: Vec<Vec<f64>> = {
        let mut store = ArrayStore::new(MemoryChunkStore::new());
        let matrix = QueryGenerator::matrix(ROWS, COLS);
        let base = store.store_array(&matrix, CHUNK_BYTES).expect("store");
        let mut gen = QueryGenerator::new(ROWS, COLS, GEN_SEED);
        let pats = patterns();
        (0..QUERIES)
            .map(|i| {
                let view = gen.instance(&base, pats[i % pats.len()]);
                store
                    .resolve(
                        &view,
                        RetrievalStrategy::SpdRange {
                            options: SpdOptions::default(),
                        },
                    )
                    .expect("fault-free resolve")
                    .elements()
                    .iter()
                    .map(|n| n.as_f64())
                    .collect()
            })
            .collect()
    };

    let header: Vec<String> = [
        "fault rate",
        "bare ok",
        "resilient ok",
        "wrong bits",
        "retries (res)",
        "fallbacks (bare)",
        "giveups (res)",
    ]
    .into_iter()
    .map(String::from)
    .collect();

    let mut table = Vec::new();
    for rate in rates {
        let plan = FaultPlan::transient_reads(seed, rate);

        let mut bare = ArrayStore::new(FaultInjectingChunkStore::new(
            MemoryChunkStore::new(),
            plan.clone(),
        ));
        let bare_out = run(&mut bare, &expected);

        let mut resilient = ArrayStore::new(ResilientChunkStore::new(
            FaultInjectingChunkStore::new(MemoryChunkStore::new(), plan),
            RetryPolicy::aggressive(),
        ));
        let res_out = run(&mut resilient, &expected);

        let pct = |n: usize| format!("{:.0}%", 100.0 * n as f64 / QUERIES as f64);
        table.push(vec![
            format!("{:.0}%", rate * 100.0),
            pct(bare_out.succeeded),
            pct(res_out.succeeded),
            format!("{}", bare_out.wrong + res_out.wrong),
            format!("{}", res_out.retries),
            format!("{}", bare_out.fallbacks),
            format!("{}", res_out.giveups),
        ]);
    }
    print_table(
        "query success rate (bit-identical results) per stack",
        &header,
        &table,
    );

    println!(
        "\nReading: 'wrong bits' must stay 0 — checksummed frames turn corruption into \
         retryable errors, never silent damage. The resilient column should hold 100% \
         while the bare column decays as the fault rate grows."
    );
}
