//! Experiment 1 (thesis §6.3.2): comparing the retrieval strategies.
//!
//! For every access pattern of the mini-benchmark, resolve query views
//! under each retrieval strategy against the relational back-end (with
//! a simulated client–server latency), and against the binary-file and
//! in-memory back-ends as reference points. Reports per-query time,
//! statements issued, chunks fetched and overfetch factor — the
//! quantities behind the thesis' strategy-comparison figures.
//!
//! Expected shape (matches the paper): SINGLE is dominated by
//! per-statement round trips and loses badly on multi-chunk patterns;
//! BUFFERED-IN amortizes statements; SPD-RANGE wins whenever the chunk
//! ids form regular sequences (rows, blocks, whole arrays, strided
//! access) at the cost of bounded overfetch; WHOLE-ARRAY only wins for
//! near-total selectivities.

use relstore::{DbOptions, LatencyModel};
use ssdm_bench::fmt_ms;
use ssdm_bench::runner::{print_table, run_pattern};
use ssdm_bench::workload::{standard_patterns, QueryGenerator};
use ssdm_storage::{spd::SpdOptions, ArrayStore, RelChunkStore, RetrievalStrategy};

fn main() {
    let (rows, cols) = (256, 256); // 512 KiB of f64
    let chunk_bytes = 2048; // 256 elements per chunk
    let queries = 20;

    let strategies = [
        RetrievalStrategy::Single,
        RetrievalStrategy::BufferedIn { buffer_size: 64 },
        RetrievalStrategy::SpdRange {
            options: SpdOptions::default(),
        },
        RetrievalStrategy::WholeArray,
    ];

    println!("Experiment 1: retrieval strategies (thesis §6.3.2)");
    println!(
        "matrix {rows}x{cols} f64, chunk {chunk_bytes} B, {queries} queries per cell, \
         relational back-end with local-DBMS latency model"
    );

    let db = relstore::Db::open_memory(DbOptions {
        pool_pages: 4096,
        latency: LatencyModel::local_dbms(),
    })
    .expect("db");
    let mut store = ArrayStore::new(RelChunkStore::new(db));
    let matrix = QueryGenerator::matrix(rows, cols);
    let base = store.store_array(&matrix, chunk_bytes).expect("store");

    let header: Vec<String> = std::iter::once("pattern".to_string())
        .chain(
            strategies
                .iter()
                .flat_map(|s| [format!("{} ms/q", s.name()), format!("{} stmts", s.name())]),
        )
        .collect();

    let mut table = Vec::new();
    let mut overfetch_rows = Vec::new();
    for pattern in standard_patterns() {
        let mut row = vec![pattern.name()];
        let mut ofrow = vec![pattern.name()];
        for strategy in strategies {
            // Fresh generator per cell: identical query sequences.
            let mut gen = QueryGenerator::new(rows, cols, 4242);
            let m = run_pattern(&mut store, &base, &mut gen, pattern, strategy, queries);
            row.push(fmt_ms(m.total_seconds / queries as f64));
            row.push(format!("{}", m.statements / queries as u64));
            ofrow.push(format!("{:.2}", m.overfetch()));
        }
        table.push(row);
        overfetch_rows.push(ofrow);
    }
    print_table(
        "per-query time (ms) and statements per query",
        &header,
        &table,
    );

    let of_header: Vec<String> = std::iter::once("pattern".to_string())
        .chain(strategies.iter().map(|s| format!("{} overfetch", s.name())))
        .collect();
    print_table(
        "overfetch factor (bytes fetched / bytes needed)",
        &of_header,
        &overfetch_rows,
    );

    println!(
        "\nReading: SPD-RANGE should match BUFFERED-IN results with fewer statements on \
         regular patterns; WHOLE-ARRAY overfetch explodes on selective patterns."
    );
}
