//! Experiment 2 (thesis §6.3.3): varying the buffer size.
//!
//! The BUFFERED-IN strategy batches chunk requests into `IN`-list
//! statements of at most `buffer_size` ids (§6.2.4). Sweeping the
//! buffer size shows the trade-off the thesis measures: tiny buffers
//! degenerate to the SINGLE strategy (one round trip per chunk), large
//! buffers amortize the per-statement cost until the per-row cost
//! dominates and the curve flattens.

use relstore::{DbOptions, LatencyModel};
use ssdm_bench::fmt_ms;
use ssdm_bench::runner::{print_table, run_pattern};
use ssdm_bench::workload::{AccessPattern, QueryGenerator};
use ssdm_storage::{ArrayStore, RelChunkStore, RetrievalStrategy};

fn main() {
    let (rows, cols) = (256, 256);
    let chunk_bytes = 1024; // 128 elements: a column touches all 256 rows' chunks
    let queries = 10;
    let buffer_sizes = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512];

    println!("Experiment 2: varying the proxy-resolution buffer size (thesis §6.3.3)");
    println!(
        "matrix {rows}x{cols}, chunk {chunk_bytes} B, {queries} queries per cell, \
         BUFFERED-IN strategy, local-DBMS latency"
    );

    let patterns = [
        AccessPattern::Column,
        AccessPattern::StridedRows { stride: 4 },
        AccessPattern::Whole,
    ];

    let db = relstore::Db::open_memory(DbOptions {
        pool_pages: 8192,
        latency: LatencyModel::local_dbms(),
    })
    .expect("db");
    let mut store = ArrayStore::new(RelChunkStore::new(db));
    let matrix = QueryGenerator::matrix(rows, cols);
    let base = store.store_array(&matrix, chunk_bytes).expect("store");

    let header: Vec<String> = std::iter::once("buffer".to_string())
        .chain(patterns.iter().flat_map(|p| {
            [
                format!("{} ms/q", p.name()),
                format!("{} stmts/q", p.name()),
            ]
        }))
        .collect();
    let mut table = Vec::new();
    for &buffer_size in &buffer_sizes {
        let mut row = vec![buffer_size.to_string()];
        for &pattern in &patterns {
            let mut gen = QueryGenerator::new(rows, cols, 99);
            let m = run_pattern(
                &mut store,
                &base,
                &mut gen,
                pattern,
                RetrievalStrategy::BufferedIn { buffer_size },
                queries,
            );
            row.push(fmt_ms(m.total_seconds / queries as f64));
            row.push(format!("{:.1}", m.statements as f64 / queries as f64));
        }
        table.push(row);
    }
    print_table("per-query time vs buffer size", &header, &table);
    println!(
        "\nReading: time falls steeply while statements/query shrink, then flattens \
         once per-row transfer dominates — the knee is the thesis' recommended buffer."
    );
}
