//! Typed compute kernels + chunk-side parallel aggregation scenario.
//!
//! Two sweeps, asserting this PR's acceptance criteria:
//!
//! 1. **elementwise** — dense f64 arrays of ≥1M elements through the
//!    typed kernels (`zip_with` / `scalar_op`) against the retained
//!    per-element `Num` reference path (`zip_with_ref` /
//!    `scalar_op_ref`). Required: **≥4×** on at least the headline
//!    array⊗array ops; results checked bit-identical.
//! 2. **streamed aggregates** — `resolve_aggregate_parallel` over an
//!    externalized matrix behind the latency-simulated relational
//!    back-end (`networked_dbms`: 500 µs per statement, round trips
//!    dominate). Fetch workers fold each chunk's partial in place and
//!    the partials combine in plan order. Required: **≥2×** at 4
//!    workers vs the sequential `resolve_aggregate` baseline; every
//!    result checked bit-identical to the sequential fold.
//!
//! Measurements land as JSON (default `BENCH_kernels.json`, `--out`).
//!
//! ```text
//! repro_kernels [--quick] [--workers N[,N]...] [--out PATH]
//! ```

use std::time::Instant;

use relstore::{Db, DbOptions, LatencyModel};
use ssdm_array::{AggregateOp, BinOp, Num, NumArray};
use ssdm_bench::runner::print_table;
use ssdm_storage::{ArrayStore, ChunkStore, ParallelConfig, RelChunkStore, RetrievalStrategy};

const ELEMS: usize = 1 << 20; // 1M f64 — the acceptance floor's size
const ROWS: usize = 128;
const COLS: usize = 128;
const CHUNK_BYTES: usize = 1024; // one row per chunk: 128 chunks per scan

fn usage() -> ! {
    eprintln!("usage: repro_kernels [--quick] [--workers N[,N]...] [--out PATH]");
    std::process::exit(2)
}

fn dense(n: usize, salt: f64) -> NumArray {
    NumArray::from_f64(
        (0..n)
            .map(|i| (i as f64 * 0.618 + salt).sin() * 100.0 + salt)
            .collect(),
    )
}

fn bits(a: &NumArray) -> Vec<u64> {
    a.elements().iter().map(|n| n.as_f64().to_bits()).collect()
}

fn num_bits(n: &Num) -> (bool, u64) {
    match n {
        Num::Int(v) => (true, *v as u64),
        Num::Real(v) => (false, v.to_bits()),
    }
}

/// Median-free best-of-N timing: the minimum is the least-noise
/// estimate for a deterministic computation.
fn best_of<R>(repeats: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        result = Some(r);
    }
    (best, result.expect("repeats >= 1"))
}

struct ElemCell {
    label: &'static str,
    ref_ms: f64,
    kernel_ms: f64,
    speedup: f64,
}

struct AggCell {
    workers: usize,
    per_query_ms: f64,
    statements: u64,
    speedup: f64,
}

fn main() {
    let mut quick = false;
    let mut workers: Vec<usize> = vec![1, 2, 4, 8];
    let mut out = "BENCH_kernels.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--workers" => {
                workers = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(|w| w.parse().unwrap_or_else(|_| usage()))
                    .collect();
                if workers.is_empty() {
                    usage()
                }
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    if quick {
        workers.retain(|&w| w == 1 || w == 4);
        if workers.is_empty() {
            workers = vec![1, 4];
        }
    }
    if !workers.contains(&1) {
        workers.insert(0, 1);
    }
    workers.sort_unstable();
    workers.dedup();
    let repeats = if quick { 3 } else { 7 };
    let agg_repeats = if quick { 2 } else { 5 };
    let max_workers = *workers.last().expect("non-empty");

    println!("Typed compute kernels + chunk-side parallel aggregation");
    println!(
        "elementwise: {ELEMS} f64 elements, best of {repeats}; aggregates: \
         {ROWS}x{COLS} f64 matrix, chunk {CHUNK_BYTES} B, networked-DBMS latency \
         (500 us/statement), best of {agg_repeats}"
    );

    // --- Sweep 1: resident elementwise kernels ---------------------------
    // The kernel pool sizes to the sweep's largest worker count (arrays
    // at/above the parallel threshold split across it).
    ssdm_array::pool::set_compute_workers(max_workers);
    let a = dense(ELEMS, 1.25);
    let b = dense(ELEMS, -0.75);
    let scalar = Num::Real(1.0625);

    type Run<'a> = Box<dyn Fn() -> NumArray + 'a>;
    let mut elem_cells: Vec<ElemCell> = Vec::new();
    {
        let runs: Vec<(&'static str, Run, Run)> = vec![
            (
                "add(a,b)",
                Box::new(|| a.zip_with(&b, BinOp::Add).expect("add")),
                Box::new(|| a.zip_with_ref(&b, BinOp::Add).expect("add ref")),
            ),
            (
                "mul(a,b)",
                Box::new(|| a.zip_with(&b, BinOp::Mul).expect("mul")),
                Box::new(|| a.zip_with_ref(&b, BinOp::Mul).expect("mul ref")),
            ),
            (
                "a+s",
                Box::new(|| a.scalar_op(scalar, BinOp::Add).expect("sadd")),
                Box::new(|| a.scalar_op_ref(scalar, BinOp::Add).expect("sadd ref")),
            ),
        ];
        for (label, kernel_run, ref_run) in &runs {
            let (kernel_ms, kernel_out) = best_of(repeats, kernel_run);
            let (ref_ms, ref_out) = best_of(repeats, ref_run);
            assert_eq!(
                bits(&kernel_out),
                bits(&ref_out),
                "{label}: kernel must be bit-identical to the reference"
            );
            elem_cells.push(ElemCell {
                label,
                ref_ms,
                kernel_ms,
                speedup: ref_ms / kernel_ms,
            });
        }
    }

    // --- Sweep 2: streamed aggregates over the latency-simulated DBMS ----
    let agg_ops = [AggregateOp::Sum, AggregateOp::Max];
    let mut store = {
        let db = Db::open_memory(DbOptions {
            latency: LatencyModel::networked_dbms(),
            ..DbOptions::default()
        })
        .expect("in-memory relational store");
        ArrayStore::new(RelChunkStore::new(db))
    };
    let matrix = NumArray::from_f64_shaped(
        (0..ROWS * COLS)
            .map(|i| (i as f64 * 0.37).cos() * 50.0)
            .collect(),
        &[ROWS, COLS],
    )
    .expect("matrix");
    let base = store.store_array(&matrix, CHUNK_BYTES).expect("store");
    // Whole-array scans under Single: 128 chunk statements per query —
    // round trips dominate, the worker sweep overlaps them.
    let strategy = RetrievalStrategy::Single;
    let expected: Vec<(bool, u64)> = agg_ops
        .iter()
        .map(|&op| num_bits(&store.resolve_aggregate(&base, op, strategy).expect("seq")))
        .collect();

    let mut agg_cells: Vec<AggCell> = Vec::new();
    let mut baseline_ms = 0.0;
    for &w in &workers {
        store.backend_mut().reset_io_stats();
        let config = ParallelConfig::with_workers(w);
        let (total_ms, got) = best_of(agg_repeats, || {
            agg_ops
                .iter()
                .map(|&op| {
                    num_bits(
                        &store
                            .resolve_aggregate_parallel(&base, op, strategy, config)
                            .expect("parallel aggregate"),
                    )
                })
                .collect::<Vec<_>>()
        });
        assert_eq!(got, expected, "w={w}: must match the sequential fold");
        let per_query_ms = total_ms / agg_ops.len() as f64;
        let statements = store.backend().io_stats().statements / (agg_repeats as u64);
        if w == 1 {
            baseline_ms = per_query_ms;
        }
        agg_cells.push(AggCell {
            workers: w,
            per_query_ms,
            statements,
            speedup: baseline_ms / per_query_ms,
        });
    }

    // --- Report ----------------------------------------------------------
    let header: Vec<String> = ["op", "ref ms", "kernel ms", "speedup"]
        .into_iter()
        .map(String::from)
        .collect();
    let rows: Vec<Vec<String>> = elem_cells
        .iter()
        .map(|c| {
            vec![
                c.label.to_string(),
                format!("{:.2}", c.ref_ms),
                format!("{:.2}", c.kernel_ms),
                format!("{:.1}x", c.speedup),
            ]
        })
        .collect();
    print_table(
        &format!("elementwise kernels, {ELEMS} f64 (bit-identical ✓)"),
        &header,
        &rows,
    );

    let header: Vec<String> = ["workers", "ms/aggregate", "statements", "speedup"]
        .into_iter()
        .map(String::from)
        .collect();
    let rows: Vec<Vec<String>> = agg_cells
        .iter()
        .map(|c| {
            vec![
                format!("{}", c.workers),
                format!("{:.2}", c.per_query_ms),
                format!("{}", c.statements),
                format!("{:.2}x", c.speedup),
            ]
        })
        .collect();
    print_table(
        "streamed aggregates, networked DBMS (bit-identical ✓)",
        &header,
        &rows,
    );

    // --- Acceptance assertions -------------------------------------------
    let best_elem = elem_cells.iter().map(|c| c.speedup).fold(0.0f64, f64::max);
    assert!(
        best_elem >= 4.0,
        "expected >=4x elementwise kernel speedup at {ELEMS} f64, got {best_elem:.1}x"
    );
    println!(
        "\nkernel acceptance ✓: {best_elem:.1}x best elementwise at {ELEMS} f64 (>=4x required)"
    );
    if let Some(c4) = agg_cells.iter().find(|c| c.workers == 4) {
        assert!(
            c4.speedup >= 2.0,
            "expected >=2x at 4 workers for streamed aggregates, got {:.2}x",
            c4.speedup
        );
        println!(
            "aggregate acceptance ✓: {:.2}x at 4 workers (>=2x required)",
            c4.speedup
        );
    }

    // --- JSON -------------------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"elements\": {ELEMS}, \"rows\": {ROWS}, \"cols\": {COLS}, \
         \"chunk_bytes\": {CHUNK_BYTES}, \"latency\": \"networked_dbms\", \
         \"quick\": {quick}}},\n"
    ));
    json.push_str("  \"elementwise\": [\n");
    for (i, c) in elem_cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"op\": \"{}\", \"ref_ms\": {:.4}, \"kernel_ms\": {:.4}, \
             \"speedup\": {:.3}, \"bit_identical\": true}}{}\n",
            c.label,
            c.ref_ms,
            c.kernel_ms,
            c.speedup,
            if i + 1 < elem_cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"aggregate\": [\n");
    for (i, c) in agg_cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"per_query_ms\": {:.4}, \"statements\": {}, \
             \"speedup\": {:.3}, \"bit_identical\": true}}{}\n",
            c.workers,
            c.per_query_ms,
            c.statements,
            c.speedup,
            if i + 1 < agg_cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write JSON");
    println!("wrote {out}");
}
