//! Experiment 4 (thesis §6.4.5): BISTAB application query performance.
//!
//! Runs the four application queries of §6.4.4 over the synthetic
//! BISTAB dataset in every storage configuration: fully resident
//! in-memory graph, memory-chunk back-end, binary files, and the
//! relational back-end (with and without simulated client–server
//! latency). Reports per-query wall time and back-end I/O — the
//! thesis' table of query times per storage choice.

use std::time::Instant;

use ssdm::bistab::{self, BistabConfig};
use ssdm::{Backend, Ssdm};
use ssdm_bench::fmt_ms;
use ssdm_bench::runner::print_table;
use ssdm_storage::ChunkStore;

fn main() {
    let config = BistabConfig {
        tasks: 500,
        realizations: 4,
        trajectory_len: 2048, // 16 KiB per trajectory
        seed: 2016,
    };
    println!(
        "Experiment 4: BISTAB application queries (thesis §6.4) — {} tasks × {} steps",
        config.tasks, config.trajectory_len
    );

    let dir = std::env::temp_dir().join(format!("ssdm-bistab-{}", std::process::id()));
    type MakeDb = Box<dyn Fn() -> Ssdm>;
    let configs: Vec<(&str, MakeDb)> = vec![
        ("resident", Box::new(|| Ssdm::open(Backend::Memory))),
        (
            "memory-chunks",
            Box::new(|| {
                let mut db = Ssdm::open(Backend::Memory);
                db.set_externalize_threshold(256, 4096);
                db
            }),
        ),
        ("file", {
            let dir = dir.clone();
            Box::new(move || {
                let d = dir.join(format!("f{}", std::process::id()));
                std::fs::remove_dir_all(&d).ok();
                let mut db = Ssdm::open(Backend::File(d));
                db.set_externalize_threshold(256, 4096);
                db
            })
        }),
        (
            "relational",
            Box::new(|| {
                let mut db = Ssdm::open(Backend::Relational);
                db.set_externalize_threshold(256, 4096);
                db
            }),
        ),
        (
            "relational+latency",
            Box::new(|| {
                let db_inner = relstore::Db::open_memory(relstore::DbOptions {
                    pool_pages: 8192,
                    latency: relstore::LatencyModel::local_dbms(),
                })
                .expect("db");
                let mut db = Ssdm::from_dataset(scisparql::Dataset::with_backend(Box::new(
                    ssdm_storage::RelChunkStore::new(db_inner),
                )));
                db.set_externalize_threshold(256, 4096);
                db
            }),
        ),
    ];

    let queries = bistab::queries();
    let header: Vec<String> = std::iter::once("storage".to_string())
        .chain(std::iter::once("load ms".to_string()))
        .chain(
            queries
                .iter()
                .flat_map(|(n, _)| [format!("{n} ms"), format!("{n} KiB")]),
        )
        .collect();
    let mut table = Vec::new();
    for (name, make) in configs {
        let mut db = make();
        let t = Instant::now();
        bistab::load_bistab(&mut db, &config).expect("load");
        let load = t.elapsed().as_secs_f64();
        let mut row = vec![name.to_string(), fmt_ms(load)];
        for (qname, q) in &queries {
            db.dataset.arrays.backend_mut().reset_io_stats();
            let t = Instant::now();
            let result = db.query(q).unwrap_or_else(|e| panic!("{qname}: {e}"));
            let elapsed = t.elapsed().as_secs_f64();
            std::hint::black_box(&result);
            let io = db.dataset.arrays.backend().io_stats();
            row.push(fmt_ms(elapsed));
            row.push(format!("{}", io.bytes_returned / 1024));
        }
        table.push(row);
    }
    print_table(
        "BISTAB query times per storage configuration",
        &header,
        &table,
    );
    println!(
        "\nReading: Q1 (metadata only) is storage-independent; Q2/Q3 touch small parts \
         of each trajectory, so chunked back-ends transfer KiB where 'resident' holds \
         everything in RAM; Q4 (whole-array max) pays full transfer on every back-end, \
         and the latency model shows the round-trip share."
    );
    std::fs::remove_dir_all(&dir).ok();
}
