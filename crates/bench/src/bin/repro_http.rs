//! HTTP front-end scenario: idle keep-alive scale, throughput against
//! the framed protocol, and byte-validated result formats.
//!
//! Three sweeps over `ssdm::http`'s event-loop server:
//!
//! 1. **idle scale** — ≥1000 keep-alive connections held open at once,
//!    each having served a request; the process thread count must not
//!    grow with connections (the reactor owns them all), and a request
//!    issued over one of the parked connections still answers.
//! 2. **throughput** — the same engine behind the HTTP front end and
//!    the framed TCP protocol, sequential and concurrent request
//!    streams over keep-alive connections; requests/s for both.
//! 3. **format round trip** — `GET /query` across the four negotiated
//!    result formats; each response body must be byte-identical to the
//!    serializer's output for the expected result.
//!
//! The binary *asserts* the PR's acceptance criteria and writes the
//! measurements as JSON (default `BENCH_http.json`, `--out PATH`).
//!
//! ```text
//! repro_http [--quick] [--out PATH]
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use scisparql::{QueryResult, Value};
use ssdm::http::{results, Format, HttpConfig, HttpServer, ShutdownHandle};
use ssdm::server::{Client, Server, ServerConfig};
use ssdm::{Backend, Ssdm};
use ssdm_bench::runner::print_table;

fn usage() -> ! {
    eprintln!("usage: repro_http [--quick] [--out PATH]");
    std::process::exit(2)
}

/// A small engine with a predictable answer for every request shape the
/// sweeps use.
fn engine() -> Ssdm {
    let mut db = Ssdm::open(Backend::Memory);
    let mut turtle = String::from("@prefix ex: <http://e#> .\n");
    for i in 0..100 {
        turtle.push_str(&format!("ex:s{i} ex:p {i} .\n"));
    }
    db.load_turtle(&turtle).expect("seed triples");
    db
}

fn start_http(config: HttpConfig) -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<()>) {
    let server = HttpServer::bind("127.0.0.1:0", config).expect("bind http");
    let addr = server.local_addr().expect("http addr");
    let handle = server.shutdown_handle().expect("shutdown handle");
    let shared = Arc::new(Mutex::new(engine()));
    let join = std::thread::spawn(move || server.serve(shared).expect("http serve"));
    (addr, handle, join)
}

/// Read one HTTP response off a persistent per-connection reader;
/// returns (status, body).
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, Vec<u8>) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, body)
}

fn send_get(stream: &mut TcpStream, target: &str, accept: &str) {
    stream
        .write_all(
            format!("GET {target} HTTP/1.1\r\nHost: bench\r\nAccept: {accept}\r\n\r\n").as_bytes(),
        )
        .expect("request write");
}

/// The current thread count of this process (`/proc/self/status`);
/// `None` off Linux.
fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

fn percent_encode(query: &str) -> String {
    let mut out = String::new();
    for b in query.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn main() {
    let mut quick = false;
    let mut out = "BENCH_http.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    let idle_target: usize = if quick { 256 } else { 1000 };
    let seq_requests: usize = if quick { 200 } else { 1000 };
    let conc_clients: usize = 8;
    let conc_requests: usize = if quick { 50 } else { 200 };

    // The bench process holds both ends of every idle connection.
    let _ = ssdm::http::raise_nofile_limit((idle_target as u64) * 2 + 512);

    println!("HTTP front end: idle keep-alive scale, throughput vs framed, format round trip");

    // --- Sweep 1: idle keep-alive scale ----------------------------------
    let (addr, handle, join) = start_http(HttpConfig {
        max_connections: idle_target * 2,
        idle_timeout: Duration::from_secs(600),
        ..HttpConfig::default()
    });
    // Warm up first so the reactor and its worker pool exist before the
    // baseline thread count is taken — what must stay flat is the count
    // per *connection*, not the fixed pool.
    {
        let mut warm = TcpStream::connect(addr).expect("connect");
        warm.set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        send_get(&mut warm, "/healthz", "*/*");
        let mut reader = BufReader::new(warm);
        let (status, _) = read_response(&mut reader);
        assert_eq!(status, 200, "warm-up request");
    }
    let threads_before = process_threads();
    let start = Instant::now();
    let mut parked: Vec<BufReader<TcpStream>> = Vec::with_capacity(idle_target);
    for i in 0..idle_target {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        send_get(&mut stream, "/healthz", "*/*");
        let mut reader = BufReader::new(stream);
        let (status, _) = read_response(&mut reader);
        assert_eq!(status, 200, "connection {i} served");
        parked.push(reader);
    }
    let establish_s = start.elapsed().as_secs_f64();
    let threads_with_idle = process_threads();
    // A parked connection is still live: ask it for a query.
    let probe_target = format!(
        "/query?query={}",
        percent_encode("SELECT ?o WHERE { <http://e#s7> <http://e#p> ?o }")
    );
    let mid = parked.len() / 2;
    send_get(parked[mid].get_mut(), &probe_target, "text/csv");
    let (status, body) = read_response(&mut parked[mid]);
    assert_eq!(status, 200, "parked connection still answers");
    assert_eq!(body, b"o\r\n7\r\n", "parked-connection query result");
    let thread_growth = match (threads_before, threads_with_idle) {
        (Some(before), Some(with)) => Some(with as i64 - before as i64),
        _ => None,
    };
    println!(
        "idle scale: {} keep-alive connections in {:.2}s, thread growth {}",
        parked.len(),
        establish_s,
        thread_growth.map_or("n/a".into(), |d| d.to_string()),
    );
    if let Some(growth) = thread_growth {
        assert_eq!(
            growth, 0,
            "holding {idle_target} connections must not grow the thread count"
        );
    }
    drop(parked);
    handle.shutdown();
    join.join().expect("idle server thread");

    // --- Sweep 2: throughput vs the framed protocol ----------------------
    let query = "SELECT ?o WHERE { <http://e#s7> <http://e#p> ?o }";
    let http_target = format!("/query?query={}", percent_encode(query));

    let (addr, handle, join) = start_http(HttpConfig::default());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    send_get(&mut stream, &http_target, "text/csv"); // warm up
    let mut reader = BufReader::new(stream);
    read_response(&mut reader);
    let start = Instant::now();
    for _ in 0..seq_requests {
        send_get(reader.get_mut(), &http_target, "text/csv");
        let (status, _) = read_response(&mut reader);
        assert_eq!(status, 200);
    }
    let http_seq_rps = seq_requests as f64 / start.elapsed().as_secs_f64();

    let start = Instant::now();
    let workers: Vec<_> = (0..conc_clients)
        .map(|_| {
            let target = http_target.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("timeout");
                let mut reader = BufReader::new(stream);
                for _ in 0..conc_requests {
                    send_get(reader.get_mut(), &target, "text/csv");
                    let (status, _) = read_response(&mut reader);
                    assert_eq!(status, 200);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("concurrent http client");
    }
    let http_conc_rps = (conc_clients * conc_requests) as f64 / start.elapsed().as_secs_f64();
    handle.shutdown();
    join.join().expect("throughput server thread");

    let framed_server = Server::bind_with(
        "127.0.0.1:0",
        engine(),
        ServerConfig {
            workers: conc_clients,
            ..ServerConfig::default()
        },
    )
    .expect("bind framed");
    let framed_addr = framed_server.local_addr().expect("framed addr");
    let framed_join = std::thread::spawn(move || framed_server.serve().expect("framed serve"));
    let mut client = Client::connect(framed_addr).expect("framed client");
    client.query(query).expect("warm up");
    let start = Instant::now();
    for _ in 0..seq_requests {
        client.query(query).expect("framed query");
    }
    let framed_seq_rps = seq_requests as f64 / start.elapsed().as_secs_f64();
    // Disconnect before the concurrent phase: a parked framed session
    // would pin one of the pool's workers (and eventually idle out).
    drop(client);
    let start = Instant::now();
    let workers: Vec<_> = (0..conc_clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(framed_addr).expect("framed client");
                for _ in 0..conc_requests {
                    client.query(query).expect("framed query");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("concurrent framed client");
    }
    let framed_conc_rps = (conc_clients * conc_requests) as f64 / start.elapsed().as_secs_f64();
    Client::connect(framed_addr)
        .expect("framed client")
        .shutdown()
        .expect("framed shutdown");
    framed_join.join().expect("framed server thread");

    let header: Vec<String> = ["protocol", "sequential req/s", "8-way req/s"]
        .into_iter()
        .map(String::from)
        .collect();
    let rows = vec![
        vec![
            "http/1.1 keep-alive".to_string(),
            format!("{http_seq_rps:.0}"),
            format!("{http_conc_rps:.0}"),
        ],
        vec![
            "framed tcp".to_string(),
            format!("{framed_seq_rps:.0}"),
            format!("{framed_conc_rps:.0}"),
        ],
    ];
    print_table("throughput, one shared engine", &header, &rows);

    // --- Sweep 3: byte-validated format round trip -----------------------
    let (addr, handle, join) = start_http(HttpConfig::default());
    let expected = QueryResult::Solutions {
        vars: vec!["o".into()],
        rows: vec![vec![Some(Value::integer(7))]],
    };
    let mut formats_ok = Vec::new();
    for (accept, format) in [
        ("application/sparql-results+json", Format::Json),
        ("application/sparql-results+xml", Format::Xml),
        ("text/csv", Format::Csv),
        ("text/tab-separated-values", Format::Tsv),
    ] {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        send_get(&mut stream, &http_target, accept);
        let mut reader = BufReader::new(stream);
        let (status, body) = read_response(&mut reader);
        assert_eq!(status, 200, "format {accept}");
        assert_eq!(
            body,
            results::serialize(&expected, format),
            "byte-identical {accept} body"
        );
        formats_ok.push(accept);
    }
    handle.shutdown();
    join.join().expect("format server thread");
    println!(
        "format round trip ✓: {} byte-identical response bodies",
        formats_ok.len()
    );

    println!(
        "\nidle acceptance ✓: {idle_target} keep-alive connections, thread growth {}",
        thread_growth.map_or("n/a (no /proc)".into(), |d| d.to_string()),
    );

    // --- JSON -------------------------------------------------------------
    let json = format!(
        "{{\n  \"config\": {{\"idle_connections\": {idle_target}, \
         \"sequential_requests\": {seq_requests}, \"concurrent_clients\": {conc_clients}, \
         \"requests_per_client\": {conc_requests}, \"quick\": {quick}}},\n  \
         \"idle_scale\": {{\"connections\": {idle_target}, \"establish_s\": {establish_s:.3}, \
         \"thread_growth\": {}, \"parked_query_ok\": true}},\n  \
         \"throughput\": {{\"http_sequential_rps\": {http_seq_rps:.1}, \
         \"http_concurrent_rps\": {http_conc_rps:.1}, \
         \"framed_sequential_rps\": {framed_seq_rps:.1}, \
         \"framed_concurrent_rps\": {framed_conc_rps:.1}}},\n  \
         \"format_round_trip\": {{\"formats\": {}, \"byte_identical\": true}}\n}}\n",
        thread_growth.map_or("null".into(), |d| d.to_string()),
        formats_ok.len(),
    );
    std::fs::write(&out, json).expect("write JSON");
    println!("wrote {out}");
}
