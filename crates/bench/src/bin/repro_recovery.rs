//! Durability scenario: WAL commit throughput per fsync policy, replay
//! throughput on recovery, and checkpoint latency.
//!
//! For each fsync policy (`always`, `interval:5`, `off`) the bench
//! applies the same update workload — scalar INSERT DATA statements
//! interleaved with Turtle loads whose arrays externalize into the
//! durable chunk store — against a fresh durable directory, then
//! reopens it and measures the recovery replay. After the sweep, the
//! last directory gets a checkpoint + a short update tail and is
//! reopened once more: recovery now loads the snapshot and replays
//! only the tail. Every recovered instance is checked for state
//! equality (triple signature + array sums) against the writer before
//! it was dropped.
//!
//! Measurements land as JSON (default `BENCH_recovery.json`, `--out`).
//!
//! ```text
//! repro_recovery [--quick] [--updates N] [--out PATH]
//! ```

use std::time::Instant;

use ssdm::{DurableOptions, FsyncPolicy, Ssdm};
use ssdm_bench::runner::print_table;

fn usage() -> ! {
    eprintln!("usage: repro_recovery [--quick] [--updates N] [--out PATH]");
    std::process::exit(2)
}

/// The deterministic update workload: every 8th op loads a Turtle
/// collection that externalizes; the rest are scalar INSERT DATA.
fn apply_workload(db: &mut Ssdm, updates: usize) {
    db.set_externalize_threshold(8, 256);
    for i in 0..updates {
        if i % 8 == 0 {
            let values: Vec<String> = (0..16).map(|j| ((i + j) % 97).to_string()).collect();
            db.load_turtle(&format!(
                "<http://a{i}> <http://arr> ( {} ) .",
                values.join(" ")
            ))
            .expect("load");
        } else {
            db.query(&format!(
                "INSERT DATA {{ <http://s{i}> <http://p> {} . }}",
                i % 1000
            ))
            .expect("insert");
        }
    }
}

/// Placement-independent state signature: triple count plus the sum of
/// every array's sum — cheap, but any lost or torn update changes it.
fn state_signature(db: &mut Ssdm) -> (usize, String) {
    let scalars = db
        .query("SELECT ?s ?o WHERE { ?s <http://p> ?o }")
        .expect("scalars")
        .into_rows()
        .expect("rows")
        .len();
    let mut sums: Vec<String> = db
        .query("SELECT ?s (array_sum(?v) AS ?sum) WHERE { ?s <http://arr> ?v }")
        .expect("array sums")
        .into_rows()
        .expect("rows")
        .iter()
        .map(|r| {
            r.iter()
                .map(|c| c.as_ref().map(|v| v.to_string()).unwrap_or_default())
                .collect::<Vec<_>>()
                .join("=")
        })
        .collect();
    sums.sort();
    (scalars, sums.join(";"))
}

struct PolicyCell {
    policy: &'static str,
    commit_ms: f64,
    updates_per_s: f64,
    fsyncs: u64,
    wal_bytes: u64,
    replay_ms: f64,
    replays_per_s: f64,
}

fn main() {
    let mut quick = false;
    let mut updates: Option<usize> = None;
    let mut out = "BENCH_recovery.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--updates" => {
                updates = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    let updates = updates.unwrap_or(if quick { 400 } else { 4000 });

    println!("Durability: WAL commit throughput, recovery replay, checkpoint latency");
    println!("workload: {updates} updates (1 in 8 an externalized 16-element array load)");

    let base = std::env::temp_dir().join(format!("ssdm-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let policies: [(&'static str, FsyncPolicy); 3] = [
        ("always", FsyncPolicy::Always),
        (
            "interval:5",
            FsyncPolicy::Interval(std::time::Duration::from_millis(5)),
        ),
        ("off", FsyncPolicy::Off),
    ];

    let mut cells: Vec<PolicyCell> = Vec::new();
    for (name, policy) in policies {
        let dir = base.join(name.replace(':', "-"));
        let options = DurableOptions {
            fsync: policy,
            ..DurableOptions::default()
        };
        let mut db = Ssdm::open_durable_with(&dir, options).expect("open durable");
        let t = Instant::now();
        apply_workload(&mut db, updates);
        let commit_ms = t.elapsed().as_secs_f64() * 1e3;
        let stats = db.durability_stats().expect("durable");
        let (fsyncs, wal_bytes) = (stats.wal.fsyncs, stats.wal.bytes_appended);
        let expected = state_signature(&mut db);
        drop(db);

        let mut back = Ssdm::open_durable(&dir).expect("recover");
        let rstats = back.durability_stats().expect("durable");
        assert_eq!(
            state_signature(&mut back),
            expected,
            "{name}: recovered state must equal the writer's"
        );
        cells.push(PolicyCell {
            policy: name,
            commit_ms,
            updates_per_s: updates as f64 / (commit_ms / 1e3),
            fsyncs,
            wal_bytes,
            replay_ms: rstats.replay_ms,
            replays_per_s: rstats.replayed_records as f64 / (rstats.replay_ms / 1e3).max(1e-9),
        });
    }

    // --- Checkpoint: latency + post-checkpoint recovery -------------------
    let ckpt_dir = base.join("always");
    let tail = (updates / 20).max(5);
    let (checkpoint_ms, post_replay_ms, post_records) = {
        let mut db = Ssdm::open_durable(&ckpt_dir).expect("reopen for checkpoint");
        let expected_pre = state_signature(&mut db);
        db.checkpoint().expect("checkpoint");
        let checkpoint_ms = db.durability_stats().expect("durable").last_checkpoint_ms;
        for i in 0..tail {
            db.query(&format!(
                "INSERT DATA {{ <http://tail{i}> <http://p> {i} . }}"
            ))
            .expect("tail insert");
        }
        let expected = state_signature(&mut db);
        assert_eq!(expected.0, expected_pre.0 + tail, "tail applied");
        drop(db);

        let mut back = Ssdm::open_durable(&ckpt_dir).expect("post-checkpoint recover");
        let stats = back.durability_stats().expect("durable");
        assert_eq!(
            state_signature(&mut back),
            expected,
            "post-checkpoint recovery must equal the writer's state"
        );
        (checkpoint_ms, stats.replay_ms, stats.replayed_records)
    };

    // --- Report ----------------------------------------------------------
    let header: Vec<String> = [
        "fsync",
        "commit ms",
        "updates/s",
        "fsyncs",
        "wal KiB",
        "replay ms",
        "records/s",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.policy.to_string(),
                format!("{:.1}", c.commit_ms),
                format!("{:.0}", c.updates_per_s),
                format!("{}", c.fsyncs),
                format!("{}", c.wal_bytes / 1024),
                format!("{:.1}", c.replay_ms),
                format!("{:.0}", c.replays_per_s),
            ]
        })
        .collect();
    print_table(
        &format!("WAL commit + recovery replay, {updates} updates (state equality ✓)"),
        &header,
        &rows,
    );
    println!(
        "\ncheckpoint: {checkpoint_ms:.1} ms; post-checkpoint recovery replays \
         {post_records} records in {post_replay_ms:.1} ms (tail of {tail})"
    );

    // --- JSON -------------------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"updates\": {updates}, \"array_every\": 8, \"quick\": {quick}}},\n"
    ));
    json.push_str("  \"policies\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"policy\": \"{}\", \"commit_ms\": {:.3}, \"updates_per_s\": {:.1}, \
             \"fsyncs\": {}, \"wal_bytes\": {}, \"replay_ms\": {:.3}, \
             \"replayed_records_per_s\": {:.1}, \"state_equal\": true}}{}\n",
            c.policy,
            c.commit_ms,
            c.updates_per_s,
            c.fsyncs,
            c.wal_bytes,
            c.replay_ms,
            c.replays_per_s,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"checkpoint\": {{\"checkpoint_ms\": {checkpoint_ms:.3}, \
         \"post_replay_ms\": {post_replay_ms:.3}, \"post_replayed_records\": {post_records}, \
         \"state_equal\": true}}\n"
    ));
    json.push_str("}\n");
    std::fs::write(&out, json).expect("write json");
    println!("\nwrote {out}");

    let _ = std::fs::remove_dir_all(&base);
}
