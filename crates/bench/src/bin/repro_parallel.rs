//! Parallel retrieval pipeline + chunk cache scenario.
//!
//! Two sweeps over a latency-simulated relational back-end (the
//! `networked_dbms` model: 500 µs per statement — round trips dominate,
//! as in the thesis' client-server measurements):
//!
//! 1. **worker sweep** — the COLUMN pattern under the naive `Single`
//!    strategy touches one chunk per statement; partitioning the fetch
//!    plan across workers overlaps the simulated round trips. Every
//!    parallel result is checked **bit-identical** to the sequential
//!    `Single` resolution of the same view.
//! 2. **cache sweep** — the same query batch twice per cache budget:
//!    a cold pass that fills the [`CachedChunkStore`] and a warm pass
//!    that must be served from it.
//!
//! The binary *asserts* the PR's acceptance criteria — ≥2× speedup at
//! 4 workers and ≥2× for warm-cache repetition — and writes the
//! measurements as JSON (default `BENCH_parallel.json`, `--out PATH`).
//!
//! ```text
//! repro_parallel [--quick] [--workers N[,N]...] [--out PATH]
//! ```

use std::time::Instant;

use relstore::{Db, DbOptions, LatencyModel};
use ssdm_bench::runner::print_table;
use ssdm_bench::workload::{AccessPattern, QueryGenerator};
use ssdm_storage::{
    ArrayStore, CachedChunkStore, ChunkStore, ParallelConfig, RelChunkStore, RetrievalStrategy,
};

const ROWS: usize = 128;
const COLS: usize = 128;
const CHUNK_BYTES: usize = 1024; // one row per chunk: COLUMN touches 128 chunks
const GEN_SEED: u64 = 1717;

fn usage() -> ! {
    eprintln!("usage: repro_parallel [--quick] [--workers N[,N]...] [--out PATH]");
    std::process::exit(2)
}

/// A fresh latency-simulated relational store behind a cache of
/// `cache_bytes` (0 = caching disabled), seeded with the test matrix.
fn stack(cache_bytes: usize) -> ArrayStore<CachedChunkStore<RelChunkStore>> {
    let db = Db::open_memory(DbOptions {
        latency: LatencyModel::networked_dbms(),
        ..DbOptions::default()
    })
    .expect("in-memory relational store");
    ArrayStore::new(CachedChunkStore::new(RelChunkStore::new(db), cache_bytes))
}

/// The fixed query batch every configuration replays (same seed → same
/// views, the controlled comparison).
fn batch(
    store: &mut ArrayStore<CachedChunkStore<RelChunkStore>>,
    queries: usize,
) -> (ssdm_storage::ArrayProxy, Vec<ssdm_storage::ArrayProxy>) {
    let matrix = QueryGenerator::matrix(ROWS, COLS);
    let base = store.store_array(&matrix, CHUNK_BYTES).expect("store");
    let mut gen = QueryGenerator::new(ROWS, COLS, GEN_SEED);
    let views = (0..queries)
        .map(|_| gen.instance(&base, AccessPattern::Column))
        .collect();
    (base, views)
}

fn bits(a: &ssdm_array::NumArray) -> Vec<u64> {
    a.elements().iter().map(|n| n.as_f64().to_bits()).collect()
}

struct Cell {
    label: String,
    per_query_ms: f64,
    statements: u64,
    speedup: f64,
}

fn main() {
    let mut quick = false;
    let mut workers: Vec<usize> = vec![1, 2, 4, 8];
    let mut out = "BENCH_parallel.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--workers" => {
                workers = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(|w| w.parse().unwrap_or_else(|_| usage()))
                    .collect();
                if workers.is_empty() {
                    usage()
                }
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    if quick {
        workers.retain(|&w| w == 1 || w == 4);
        if workers.is_empty() {
            workers = vec![1, 4];
        }
    }
    if !workers.contains(&1) {
        workers.insert(0, 1); // the sequential baseline anchors speedups
    }
    workers.sort_unstable();
    workers.dedup();
    let queries = if quick { 5 } else { 20 };

    println!("Parallel retrieval + chunk cache: COLUMN / Single strategy");
    println!(
        "matrix {ROWS}x{COLS} f64, chunk {CHUNK_BYTES} B, networked-DBMS latency \
         (500 us/statement), {queries} queries per cell"
    );

    // Sequential ground truth, once: resolve() under Single.
    let expected: Vec<Vec<u64>> = {
        let mut store = stack(0);
        let (_base, views) = batch(&mut store, queries);
        views
            .iter()
            .map(|v| {
                bits(
                    &store
                        .resolve(v, RetrievalStrategy::Single)
                        .expect("resolve"),
                )
            })
            .collect()
    };

    // --- Sweep 1: workers (cold, uncached) -------------------------------
    let mut worker_cells: Vec<Cell> = Vec::new();
    let mut baseline_ms = 0.0;
    for &w in &workers {
        let mut store = stack(0);
        let (_base, views) = batch(&mut store, queries);
        store.backend_mut().reset_io_stats();
        let start = Instant::now();
        let results: Vec<Vec<u64>> = views
            .iter()
            .map(|v| {
                bits(
                    &store
                        .resolve_parallel(
                            v,
                            RetrievalStrategy::Single,
                            ParallelConfig::with_workers(w),
                        )
                        .expect("resolve_parallel"),
                )
            })
            .collect();
        let per_query_ms = start.elapsed().as_secs_f64() * 1e3 / queries as f64;
        assert_eq!(results, expected, "parallel w={w} must be bit-identical");
        let statements = store.backend().io_stats().statements;
        if w == 1 {
            baseline_ms = per_query_ms;
        }
        worker_cells.push(Cell {
            label: format!("{w}"),
            per_query_ms,
            statements,
            speedup: baseline_ms / per_query_ms,
        });
    }

    // --- Sweep 2: cache budgets (cold fill vs. warm repeat) --------------
    struct CacheCell {
        budget: usize,
        cold_ms: f64,
        warm_ms: f64,
        hit_rate: f64,
        warm_speedup: f64,
    }
    let budgets: &[usize] = if quick {
        &[0, 4 << 20]
    } else {
        &[0, 64 << 10, 4 << 20]
    };
    let mut cache_cells: Vec<CacheCell> = Vec::new();
    for &budget in budgets {
        let mut store = stack(budget);
        let (_base, views) = batch(&mut store, queries);
        store.backend_mut().inner_mut(); // keep the wrapper type obvious
        store.backend().cache().clear(); // drop write-through fills: measure a cold start
        store.backend_mut().reset_cache_stats();
        let run = |store: &mut ArrayStore<CachedChunkStore<RelChunkStore>>| {
            let start = Instant::now();
            let got: Vec<Vec<u64>> = views
                .iter()
                .map(|v| {
                    bits(
                        &store
                            .resolve(v, RetrievalStrategy::Single)
                            .expect("resolve"),
                    )
                })
                .collect();
            (start.elapsed().as_secs_f64() * 1e3 / queries as f64, got)
        };
        let (cold_ms, cold_bits) = run(&mut store);
        assert_eq!(
            cold_bits, expected,
            "cached cold pass must be bit-identical"
        );
        store.backend_mut().reset_cache_stats();
        let (warm_ms, warm_bits) = run(&mut store);
        assert_eq!(
            warm_bits, expected,
            "cached warm pass must be bit-identical"
        );
        let hit_rate = store.backend().cache_stats().hit_rate();
        cache_cells.push(CacheCell {
            budget,
            cold_ms,
            warm_ms,
            hit_rate,
            warm_speedup: cold_ms / warm_ms,
        });
    }

    // --- Report ----------------------------------------------------------
    let header: Vec<String> = ["workers", "ms/query", "statements", "speedup"]
        .into_iter()
        .map(String::from)
        .collect();
    let rows: Vec<Vec<String>> = worker_cells
        .iter()
        .map(|c| {
            vec![
                c.label.clone(),
                format!("{:.2}", c.per_query_ms),
                format!("{}", c.statements),
                format!("{:.2}x", c.speedup),
            ]
        })
        .collect();
    print_table(
        "parallel fetch, cold cache (bit-identical ✓)",
        &header,
        &rows,
    );

    let header: Vec<String> = [
        "cache budget",
        "cold ms/q",
        "warm ms/q",
        "hit rate",
        "speedup",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    let rows: Vec<Vec<String>> = cache_cells
        .iter()
        .map(|c| {
            vec![
                if c.budget == 0 {
                    "off".into()
                } else {
                    format!("{} KiB", c.budget >> 10)
                },
                format!("{:.2}", c.cold_ms),
                format!("{:.2}", c.warm_ms),
                format!("{:.0}%", c.hit_rate * 100.0),
                format!("{:.1}x", c.warm_speedup),
            ]
        })
        .collect();
    print_table("repeated slicing, cold fill vs. warm cache", &header, &rows);

    // --- Acceptance assertions -------------------------------------------
    if let Some(c4) = worker_cells.iter().find(|c| c.label == "4") {
        assert!(
            c4.speedup >= 2.0,
            "expected >=2x at 4 workers, got {:.2}x",
            c4.speedup
        );
        println!(
            "\nparallel acceptance ✓: {:.2}x at 4 workers (>=2x required)",
            c4.speedup
        );
    }
    let best = cache_cells
        .iter()
        .filter(|c| c.budget > 0)
        .map(|c| c.warm_speedup)
        .fold(0.0f64, f64::max);
    assert!(
        best >= 2.0,
        "expected >=2x warm-cache speedup, got {best:.2}x"
    );
    println!("cache acceptance ✓: {best:.1}x warm repeat (>=2x required)");

    // --- JSON -------------------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"rows\": {ROWS}, \"cols\": {COLS}, \"chunk_bytes\": {CHUNK_BYTES}, \
         \"queries\": {queries}, \"latency\": \"networked_dbms\", \"quick\": {quick}}},\n"
    ));
    json.push_str("  \"parallel\": [\n");
    for (i, c) in worker_cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"per_query_ms\": {:.4}, \"statements\": {}, \
             \"speedup\": {:.3}, \"bit_identical\": true}}{}\n",
            c.label,
            c.per_query_ms,
            c.statements,
            c.speedup,
            if i + 1 < worker_cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"cache\": [\n");
    for (i, c) in cache_cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"budget_bytes\": {}, \"cold_ms\": {:.4}, \"warm_ms\": {:.4}, \
             \"hit_rate\": {:.4}, \"warm_speedup\": {:.3}}}{}\n",
            c.budget,
            c.cold_ms,
            c.warm_ms,
            c.hit_rate,
            c.warm_speedup,
            if i + 1 < cache_cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write JSON");
    println!("wrote {out}");
}
