//! Optimizer ablation (thesis §5.4): statistics-driven join ordering
//! vs textual order.
//!
//! SSDM reorders the predicates of each conjunction by estimated cost
//! before execution (the Amos II cost-based optimizer's role). This
//! ablation runs queries whose textual pattern order is deliberately
//! bad — the selective pattern written last — and compares evaluation
//! time with optimization on and off.

use std::collections::HashSet;
use std::time::Instant;

use scisparql::algebra;
use scisparql::ast::Statement;
use ssdm::bistab::{self, BistabConfig};
use ssdm::{Backend, Ssdm};
use ssdm_bench::fmt_ms;
use ssdm_bench::runner::print_table;

fn run_with_plan(db: &mut Ssdm, query: &str, optimize: bool) -> (usize, f64) {
    let Statement::Select(q) = scisparql::parser::parse(query).expect("parse") else {
        panic!("expected SELECT");
    };
    let plan = if optimize {
        algebra::optimize(algebra::translate(&q.pattern), &db.dataset.graph)
    } else {
        algebra::translate_unoptimized(&q.pattern)
    };
    let t = Instant::now();
    let rows =
        scisparql::eval::eval_plan(&mut db.dataset, &plan, vec![scisparql::eval::Row::new()])
            .expect("eval");
    (rows.len(), t.elapsed().as_secs_f64())
}

fn main() {
    println!("Optimizer ablation: cost-based join ordering (thesis §5.4)");
    let mut db = Ssdm::open(Backend::Memory);
    bistab::load_bistab(
        &mut db,
        &BistabConfig {
            tasks: 2000,
            realizations: 4,
            trajectory_len: 8,
            seed: 3,
        },
    )
    .expect("load");

    // Queries written selective-pattern-LAST (worst textual order).
    let b = bistab::NS;
    let queries = vec![
        (
            "point lookup last",
            format!(
                "PREFIX b: <{b}>
                 SELECT ?k WHERE {{
                   ?t b:k_1 ?k . ?t b:k_a ?ka . ?t b:k_d ?kd .
                   ?e b:task ?t .
                   ?t b:realization 1 . ?t b:result 1 .
                   FILTER (?k > 49.9)
                 }}"
            ),
        ),
        (
            "star join, filter late",
            format!(
                "PREFIX b: <{b}>
                 SELECT ?t WHERE {{
                   ?t b:k_1 ?k1 . ?t b:k_4 ?k4 . ?t b:k_a ?ka .
                   FILTER (?k1 + ?k4 > 120)
                   ?t b:result 1 .
                 }}"
            ),
        ),
        (
            "cross-task pair",
            format!(
                "PREFIX b: <{b}>
                 SELECT ?t ?u WHERE {{
                   ?t b:realization ?r . ?u b:realization ?r .
                   ?t b:result 1 . ?u b:result 0 .
                   ?t b:k_1 ?k . ?u b:k_1 ?k .
                 }}"
            ),
        ),
    ];

    let header: Vec<String> = ["query", "rows", "textual ms", "optimized ms", "speedup"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut table = Vec::new();
    for (name, q) in &queries {
        let (rows_u, unopt) = run_with_plan(&mut db, q, false);
        let (rows_o, opt) = run_with_plan(&mut db, q, true);
        assert_eq!(rows_u, rows_o, "{name}: plans must agree");
        table.push(vec![
            name.to_string(),
            rows_o.to_string(),
            fmt_ms(unopt),
            fmt_ms(opt),
            format!("{:.1}x", unopt / opt.max(1e-9)),
        ]);
    }
    print_table("textual vs cost-based join order", &header, &table);

    // Show a chosen ordering for inspection.
    let Statement::Select(q) = scisparql::parser::parse(&queries[0].1).unwrap() else {
        unreachable!()
    };
    let plan = algebra::optimize(algebra::translate(&q.pattern), &db.dataset.graph);
    let est = algebra::estimate(&plan, &db.dataset.graph, &HashSet::new());
    println!(
        "\noptimized plan estimate for '{}': {est:.2e} rows",
        queries[0].0
    );
}
