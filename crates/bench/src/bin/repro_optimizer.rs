//! Optimizer ablation v2 (thesis §5.4): 3-way join-enumeration matrix
//! plus the calibration feedback loop.
//!
//! 1. **Enumeration matrix** — star-join queries over the BISTAB
//!    workload, written selective-pattern-LAST (worst textual order),
//!    evaluated under all three planner modes. Required: DP **≥ 2×**
//!    faster than textual order on the star-join shape, DP no slower
//!    than greedy, and identical row counts everywhere.
//! 2. **Calibration** — a deliberately misestimated skew shape: the
//!    uniform count/distinct model orders a "selective-looking" scan
//!    first even though it matches most of the graph. Two profiled
//!    training runs feed observed cardinalities into the calibration
//!    table; the corrected plan flips the join order. Required:
//!    calibration-on beats calibration-off, identical results.
//!
//! Measurements land as JSON (default `BENCH_optimizer.json`, `--out`).
//!
//! ```text
//! repro_optimizer [--quick] [--out PATH]
//! ```

use std::time::Instant;

use scisparql::algebra::{self, Plan};
use scisparql::ast::Statement;
use scisparql::planner::{PlannerConfig, PlannerCtx, PlannerMode};
use scisparql::Dataset;
use ssdm::bistab::{self, BistabConfig};
use ssdm::{Backend, Ssdm};
use ssdm_bench::fmt_ms;
use ssdm_bench::runner::print_table;

fn usage() -> ! {
    eprintln!("usage: repro_optimizer [--quick] [--out PATH]");
    std::process::exit(2)
}

/// Best-of-N timing: the minimum is the least-noise estimate for a
/// deterministic computation.
fn best_of<R>(repeats: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        result = Some(r);
    }
    (best, result.expect("repeats >= 1"))
}

/// Plan a SELECT under an explicit mode, optionally with the dataset's
/// learned calibration factors. `Textual` here means the plan exactly
/// as written — textual join order, filters where they appear — i.e.
/// no optimization at all, the thesis' baseline.
fn plan_for(ds: &Dataset, query: &str, mode: PlannerMode, calibrated: bool) -> Plan {
    let Statement::Select(q) = scisparql::parser::parse(query).expect("parse") else {
        panic!("expected SELECT");
    };
    if mode == PlannerMode::Textual {
        return algebra::translate_unoptimized(&q.pattern);
    }
    let config = PlannerConfig {
        mode,
        adaptive_qerror: None,
        calibration: calibrated,
        ..PlannerConfig::default()
    };
    let ctx = PlannerCtx {
        graph: &ds.graph,
        config,
        calibration: if calibrated {
            Some(&ds.calibration)
        } else {
            None
        },
        zones: None,
    };
    algebra::optimize_with(algebra::translate(&q.pattern), &ctx)
}

/// Evaluate a pre-built plan, returning (rows, best-of-N ms).
fn run_plan(ds: &mut Dataset, plan: &Plan, repeats: usize) -> (usize, f64) {
    let (ms, rows) = best_of(repeats, || {
        scisparql::eval::eval_plan(ds, plan, vec![scisparql::eval::Row::new()])
            .expect("eval")
            .len()
    });
    (rows, ms)
}

/// The skewed dataset for the calibration leg: `status "common"` looks
/// selective to the uniform model (count/distinct ≈ n/20) but matches
/// 95% of subjects, while `grade "b7"` looks unselective (n/10) but
/// matches 2%.
fn skew_dataset(n: usize) -> Dataset {
    let mut ds = Dataset::in_memory();
    let mut turtle = String::from("@prefix ex: <http://example.org/> .\n");
    for i in 0..n {
        let status = if i % 20 == 0 {
            format!("s{}", i % 19 + 1)
        } else {
            "common".to_string()
        };
        let grade = if i % 50 == 0 {
            "b7".to_string()
        } else {
            format!("b{}", i % 9)
        };
        turtle.push_str(&format!(
            "ex:r{i} ex:status \"{status}\" ; ex:grade \"{grade}\" ; ex:payload {} .\n",
            i % 1000
        ));
    }
    ds.load_turtle(&turtle).expect("load skew data");
    ds
}

fn main() {
    let mut quick = false;
    let mut out = "BENCH_optimizer.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }
    let repeats = if quick { 3 } else { 7 };

    println!("Optimizer ablation v2: enumeration matrix + calibration (thesis §5.4)");
    let mut db = Ssdm::open(Backend::Memory);
    bistab::load_bistab(
        &mut db,
        &BistabConfig {
            tasks: if quick { 800 } else { 2000 },
            realizations: 4,
            trajectory_len: 8,
            seed: 3,
        },
    )
    .expect("load");
    // Static plans only: adaptivity would partially repair the bad
    // textual order mid-flight and blur the comparison.
    db.dataset.planner.adaptive_qerror = None;

    // Queries written selective-pattern-LAST (worst textual order).
    let b = bistab::NS;
    let queries = vec![
        (
            "star-join",
            format!(
                "PREFIX b: <{b}>
                 SELECT ?k WHERE {{
                   ?t b:k_1 ?k . ?t b:k_a ?ka . ?t b:k_d ?kd .
                   ?e b:task ?t .
                   ?t b:realization 1 . ?t b:result 1 .
                   FILTER (?k > 45)
                 }}"
            ),
        ),
        (
            "star-filter",
            format!(
                "PREFIX b: <{b}>
                 SELECT ?t WHERE {{
                   ?t b:k_1 ?k1 . ?t b:k_4 ?k4 . ?t b:k_a ?ka .
                   FILTER (?k1 + ?k4 > 120)
                   ?t b:result 1 .
                 }}"
            ),
        ),
    ];

    let modes = [PlannerMode::Textual, PlannerMode::Greedy, PlannerMode::Dp];
    let header: Vec<String> = [
        "query",
        "rows",
        "textual ms",
        "greedy ms",
        "dp ms",
        "dp vs textual",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut table = Vec::new();
    let mut matrix = Vec::new();
    for (name, q) in &queries {
        let mut times = Vec::new();
        let mut rows_seen = None;
        for mode in modes {
            let plan = plan_for(&db.dataset, q, mode, false);
            let (rows, ms) = run_plan(&mut db.dataset, &plan, repeats);
            match rows_seen {
                None => rows_seen = Some(rows),
                Some(r) => assert_eq!(r, rows, "{name}: {} diverged", mode.name()),
            }
            times.push(ms);
        }
        let (textual, greedy, dp) = (times[0], times[1], times[2]);
        let rows = rows_seen.expect("ran");
        table.push(vec![
            name.to_string(),
            rows.to_string(),
            fmt_ms(textual),
            fmt_ms(greedy),
            fmt_ms(dp),
            format!("{:.1}x", textual / dp.max(1e-9)),
        ]);
        matrix.push((name.to_string(), rows, textual, greedy, dp));
    }
    print_table("join enumeration: textual vs greedy vs DP", &header, &table);

    // Acceptance: DP ≥2× over textual on the star join, and no slower
    // than greedy (identical order is expected on this shape; the
    // tolerance absorbs timer noise).
    let (_, _, star_textual, star_greedy, star_dp) = matrix[0].clone();
    assert!(
        star_dp * 2.0 <= star_textual,
        "DP must be >=2x faster than textual on star-join: dp={star_dp:.2}ms textual={star_textual:.2}ms"
    );
    assert!(
        star_dp <= star_greedy * 1.25,
        "DP must not lose to greedy on star-join: dp={star_dp:.2}ms greedy={star_greedy:.2}ms"
    );

    // ----- calibration leg -------------------------------------------------
    let n = if quick { 6000 } else { 20000 };
    let mut skew = skew_dataset(n);
    skew.planner.adaptive_qerror = None;
    let query = "PREFIX ex: <http://example.org/>
                 SELECT ?s ?p WHERE {
                   ?s ex:status \"common\" .
                   ?s ex:grade \"b7\" .
                   ?s ex:payload ?p .
                 }";

    let cold_plan = plan_for(&skew, query, PlannerMode::Dp, false);
    let (rows_off, off_ms) = run_plan(&mut skew, &cold_plan, repeats);
    // Train: two profiled runs feed observed scan cardinalities into
    // the calibration table (EWMA converges fast under 20x error).
    for _ in 0..2 {
        skew.query_profiled(query).expect("training run");
    }
    let warm_plan = plan_for(&skew, query, PlannerMode::Dp, true);
    let (rows_on, on_ms) = run_plan(&mut skew, &warm_plan, repeats);
    assert_eq!(rows_off, rows_on, "calibration changed results");
    println!(
        "\ncalibration (skewed shape, n={n}): off={} on={} ({:.1}x), {} rows, {} learned predicates",
        fmt_ms(off_ms),
        fmt_ms(on_ms),
        off_ms / on_ms.max(1e-9),
        rows_on,
        skew.calibration.len()
    );
    assert!(
        on_ms < off_ms,
        "calibration-on must beat calibration-off on the misestimated shape: on={on_ms:.2}ms off={off_ms:.2}ms"
    );

    // ----- JSON artifact ---------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"enumeration\": [\n");
    for (i, (name, rows, textual, greedy, dp)) in matrix.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{name}\", \"rows\": {rows}, \"textual_ms\": {textual:.3}, \
             \"greedy_ms\": {greedy:.3}, \"dp_ms\": {dp:.3}}}{}\n",
            if i + 1 == matrix.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"calibration\": {{\"n\": {n}, \"rows\": {rows_on}, \"off_ms\": {off_ms:.3}, \
         \"on_ms\": {on_ms:.3}, \"speedup\": {:.2}}}\n",
        off_ms / on_ms.max(1e-9)
    ));
    json.push_str("}\n");
    std::fs::write(&out, json).expect("write JSON");
    println!("wrote {out}");
}
