//! Chunk compression + zone-map skipping scenario.
//!
//! Two sweeps, asserting this PR's acceptance criteria:
//!
//! 1. **codec matrix** — every `SCC1` policy over three chunk shapes:
//!    BISTAB-like integer series (slowly varying, delta-friendly),
//!    constant plateaus (RLE-friendly) and incompressible f64 noise
//!    (raw-fallback territory). Per cell: compression ratio and
//!    encode/decode throughput, every decode checked bit-identical.
//!    Required: **≥2×** ratio on the integer series under `delta-bp`
//!    and `auto`, and no frame ever larger than raw + header.
//! 2. **predicate skipping** — a filtered aggregate over a clustered
//!    array behind the latency-simulated relational back-end
//!    (`networked_dbms`: 500 µs per statement). The zone map prunes
//!    non-qualifying chunks before any statement is issued. Required:
//!    **≥2×** end-to-end speedup with skipping on vs off, identical
//!    results, and a positive skipped-chunk count.
//!
//! Measurements land as JSON (default `BENCH_compress.json`, `--out`).
//!
//! ```text
//! repro_compress [--quick] [--out PATH]
//! ```

use std::time::Instant;

use relstore::{Db, DbOptions, LatencyModel};
use ssdm_array::{AggregateOp, Num, NumArray, NumericType};
use ssdm_bench::runner::print_table;
use ssdm_storage::codec::{decode_chunk, encode_chunk};
use ssdm_storage::{
    ArrayStore, CodecPolicy, RelChunkStore, RetrievalStrategy, ValuePredicate, SCC_HEADER,
};

const CHUNK_BYTES: usize = 64 * 1024;

fn usage() -> ! {
    eprintln!("usage: repro_compress [--quick] [--out PATH]");
    std::process::exit(2)
}

/// Best-of-N timing: the minimum is the least-noise estimate for a
/// deterministic computation.
fn best_of<R>(repeats: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        result = Some(r);
    }
    (best, result.expect("repeats >= 1"))
}

/// BISTAB-shaped integers: a drifting baseline with small per-sample
/// jitter, the shape of the thesis' stability-matrix time series.
fn bistab_ints(n: usize) -> Vec<u8> {
    (0..n as i64)
        .flat_map(|i| (1_000_000 + i / 8 + (i * 7) % 5).to_le_bytes())
        .collect()
}

/// Constant plateaus: long runs of one value (sensor dead bands).
fn plateau_ints(n: usize) -> Vec<u8> {
    (0..n as i64)
        .flat_map(|i| ((i / 512) * 40).to_le_bytes())
        .collect()
}

/// Pseudo-random f64 noise: incompressible, forces the raw fallback.
fn noise_reals(n: usize) -> Vec<u8> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    (0..n)
        .flat_map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            f64::from_bits((state >> 12) | 0x3FF0_0000_0000_0000).to_le_bytes()
        })
        .collect()
}

struct CodecCell {
    dataset: &'static str,
    policy: CodecPolicy,
    ratio: f64,
    encode_mbps: f64,
    decode_mbps: f64,
}

fn main() {
    let mut quick = false;
    let mut out = "BENCH_compress.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    let elems: usize = if quick { 1 << 17 } else { 1 << 20 };
    let repeats = if quick { 3 } else { 7 };
    let agg_repeats = if quick { 2 } else { 5 };

    println!("SCC1 chunk compression + zone-map predicate skipping");
    println!(
        "codec matrix: {elems} elements per dataset, {CHUNK_BYTES} B chunks, \
         best of {repeats}; skipping: networked-DBMS latency (500 us/statement), \
         best of {agg_repeats}"
    );

    // --- Sweep 1: codec matrix ------------------------------------------
    let datasets: Vec<(&'static str, NumericType, Vec<u8>)> = vec![
        ("bistab-int", NumericType::Int, bistab_ints(elems)),
        ("plateau-int", NumericType::Int, plateau_ints(elems)),
        ("noise-real", NumericType::Real, noise_reals(elems)),
    ];
    let policies = [
        CodecPolicy::Raw,
        CodecPolicy::DeltaBp,
        CodecPolicy::Rle,
        CodecPolicy::Auto,
    ];

    let mut cells: Vec<CodecCell> = Vec::new();
    for (dataset, ty, raw) in &datasets {
        let chunks: Vec<&[u8]> = raw.chunks(CHUNK_BYTES).collect();
        for policy in policies {
            let (encode_ms, frames) = best_of(repeats, || {
                chunks
                    .iter()
                    .map(|c| encode_chunk(c, *ty, policy).0)
                    .collect::<Vec<_>>()
            });
            let (decode_ms, decoded) = best_of(repeats, || {
                frames
                    .iter()
                    .map(|f| decode_chunk(f).expect("well-formed frame"))
                    .collect::<Vec<_>>()
            });
            for (got, want) in decoded.iter().zip(&chunks) {
                assert_eq!(&got.as_slice(), want, "decode must be bit-identical");
            }
            for (frame, chunk) in frames.iter().zip(&chunks) {
                assert!(
                    frame.len() <= chunk.len() + SCC_HEADER,
                    "frame exceeds raw + header under {}",
                    policy.name()
                );
            }
            let frame_bytes: usize = frames.iter().map(Vec::len).sum();
            let mb = raw.len() as f64 / 1e6;
            cells.push(CodecCell {
                dataset,
                policy,
                ratio: raw.len() as f64 / frame_bytes as f64,
                encode_mbps: mb / (encode_ms / 1e3),
                decode_mbps: mb / (decode_ms / 1e3),
            });
        }
    }

    // --- Sweep 2: predicate-driven chunk skipping ------------------------
    // 128 chunks of 1024 clustered ints; the predicate's matches live in
    // exactly one chunk, so the zone map prunes 127 round trips.
    let mut store = {
        let db = Db::open_memory(DbOptions {
            latency: LatencyModel::networked_dbms(),
            ..DbOptions::default()
        })
        .expect("in-memory relational store");
        ArrayStore::new(RelChunkStore::new(db))
    };
    let clustered = NumArray::from_i64(
        (0..128 * 1024)
            .map(|i| (i / 1024) * 100_000 + i % 1024)
            .collect(),
    );
    let proxy = store.store_array(&clustered, 1024 * 8).expect("store");
    let pred = ValuePredicate::Range {
        lo: Num::Int(64 * 100_000),
        hi: Num::Int(64 * 100_000 + 1023),
    };
    let strategy = RetrievalStrategy::Single;

    store.set_skip_enabled(false);
    let (off_ms, off_sum) = best_of(agg_repeats, || {
        store
            .resolve_aggregate_filtered(&proxy, &pred, AggregateOp::Sum, strategy)
            .expect("filtered aggregate")
    });
    let off_stats = store.last_stats();
    store.set_skip_enabled(true);
    let (on_ms, on_sum) = best_of(agg_repeats, || {
        store
            .resolve_aggregate_filtered(&proxy, &pred, AggregateOp::Sum, strategy)
            .expect("filtered aggregate")
    });
    let on_stats = store.last_stats();
    assert_eq!(on_sum, off_sum, "skipping changed an aggregate result");
    assert_eq!(off_stats.chunks_skipped, 0);
    assert!(on_stats.chunks_skipped > 0, "zone map skipped nothing");
    let skip_speedup = off_ms / on_ms;

    // --- Report ----------------------------------------------------------
    let header: Vec<String> = ["dataset", "codec", "ratio", "enc MB/s", "dec MB/s"]
        .into_iter()
        .map(String::from)
        .collect();
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.dataset.to_string(),
                c.policy.name().to_string(),
                format!("{:.2}x", c.ratio),
                format!("{:.0}", c.encode_mbps),
                format!("{:.0}", c.decode_mbps),
            ]
        })
        .collect();
    print_table("SCC1 codec matrix (bit-identical ✓)", &header, &rows);

    let header: Vec<String> = ["skipping", "ms/aggregate", "chunks fetched", "skipped"]
        .into_iter()
        .map(String::from)
        .collect();
    let rows = vec![
        vec![
            "off".to_string(),
            format!("{off_ms:.2}"),
            format!("{}", off_stats.chunks_fetched),
            format!("{}", off_stats.chunks_skipped),
        ],
        vec![
            "on".to_string(),
            format!("{on_ms:.2}"),
            format!("{}", on_stats.chunks_fetched),
            format!("{}", on_stats.chunks_skipped),
        ],
    ];
    print_table(
        &format!("filtered aggregate, networked DBMS ({skip_speedup:.1}x with skipping)"),
        &header,
        &rows,
    );

    // --- Acceptance assertions -------------------------------------------
    for policy in [CodecPolicy::DeltaBp, CodecPolicy::Auto] {
        let cell = cells
            .iter()
            .find(|c| c.dataset == "bistab-int" && c.policy == policy)
            .expect("bistab cell");
        assert!(
            cell.ratio >= 2.0,
            "expected >=2x compression on bistab-int under {}, got {:.2}x",
            policy.name(),
            cell.ratio
        );
    }
    println!(
        "\ncompression acceptance ✓: >=2x on bistab-int under delta-bp and auto \
         (best {:.1}x)",
        cells
            .iter()
            .filter(|c| c.dataset == "bistab-int")
            .map(|c| c.ratio)
            .fold(0.0f64, f64::max)
    );
    assert!(
        skip_speedup >= 2.0,
        "expected >=2x end-to-end speedup from chunk skipping, got {skip_speedup:.2}x"
    );
    println!("skipping acceptance ✓: {skip_speedup:.1}x end-to-end (>=2x required)");

    // --- JSON -------------------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"elements\": {elems}, \"chunk_bytes\": {CHUNK_BYTES}, \
         \"latency\": \"networked_dbms\", \"quick\": {quick}}},\n"
    ));
    json.push_str("  \"codecs\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"codec\": \"{}\", \"ratio\": {:.4}, \
             \"encode_mbps\": {:.1}, \"decode_mbps\": {:.1}, \"bit_identical\": true}}{}\n",
            c.dataset,
            c.policy.name(),
            c.ratio,
            c.encode_mbps,
            c.decode_mbps,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"skipping\": {{\"off_ms\": {off_ms:.4}, \"on_ms\": {on_ms:.4}, \
         \"speedup\": {skip_speedup:.3}, \"chunks_skipped\": {}, \
         \"chunks_fetched_on\": {}, \"chunks_fetched_off\": {}, \
         \"identical_result\": true}}\n",
        on_stats.chunks_skipped, on_stats.chunks_fetched, off_stats.chunks_fetched
    ));
    json.push_str("}\n");
    std::fs::write(&out, json).expect("write JSON");
    println!("wrote {out}");
}
