//! Multi-tenant serving scenario: fair-share admission keeps
//! interactive tenants responsive while a hog saturates its quota.
//!
//! One HTTP front end hosts three tenants over isolated engines:
//!
//! * `hog` — floods `/tenants/hog/query` with expensive cross-join
//!   queries from several keep-alive connections (quota: 1 concurrent
//!   slot, deep queue), staying saturated for the whole contended
//!   phase;
//! * `i1`, `i2` — interactive tenants issuing point lookups, measured
//!   request-by-request.
//!
//! Phase 1 measures the interactive tenants solo (hog silent); phase 2
//! re-measures them while the hog saturates. Deficit-round-robin
//! dispatch plus the hog's concurrency quota must keep the interactive
//! p99 within a bounded factor of solo — a plain FIFO queue fails this
//! by parking interactive requests behind the hog's backlog. The
//! binary *asserts* the acceptance criteria: interactive p99 ≤ 3× solo
//! (with a small absolute floor against scheduler noise) and exact
//! per-tenant counter reconciliation (`admitted = completed + errors +
//! timed_out`) in `/metrics`.
//!
//! Measurements land as JSON (default `BENCH_tenants.json`, `--out
//! PATH`).
//!
//! ```text
//! repro_tenants [--quick] [--out PATH]
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ssdm::http::{HttpConfig, HttpServer, ShutdownHandle};
use ssdm::tenant::{RateLimit, TenantQuotas, TenantRegistry};
use ssdm::{Backend, Ssdm};
use ssdm_bench::runner::print_table;

fn usage() -> ! {
    eprintln!("usage: repro_tenants [--quick] [--out PATH]");
    std::process::exit(2)
}

fn engine(rows: usize) -> Ssdm {
    let mut db = Ssdm::open(Backend::Memory);
    let mut turtle = String::from("@prefix ex: <http://e#> .\n");
    for i in 0..rows {
        turtle.push_str(&format!("ex:s{i} ex:p {i} .\n"));
    }
    db.load_turtle(&turtle).expect("seed triples");
    db
}

fn start_server(
    hog_quotas: TenantQuotas,
) -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<()>) {
    let registry = TenantRegistry::new(engine(10), TenantQuotas::default());
    registry
        .add("hog", engine(120), hog_quotas)
        .expect("hog tenant");
    for name in ["i1", "i2"] {
        registry
            .add(name, engine(10), TenantQuotas::default())
            .expect("interactive tenant");
    }
    let server = HttpServer::bind(
        "127.0.0.1:0",
        HttpConfig {
            // Two workers: the hog's single concurrency slot can pin at
            // most one, so fairness — not luck — keeps the other free.
            workers: 2,
            ..HttpConfig::default()
        },
    )
    .expect("bind http");
    let addr = server.local_addr().expect("http addr");
    let handle = server.shutdown_handle().expect("shutdown handle");
    let join = std::thread::spawn(move || {
        server
            .serve_registry(Arc::new(registry))
            .expect("http serve")
    });
    (addr, handle, join)
}

fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, Vec<u8>) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, body)
}

fn percent_encode(query: &str) -> String {
    let mut out = String::new();
    for b in query.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn connect(addr: SocketAddr) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    BufReader::new(stream)
}

fn get(reader: &mut BufReader<TcpStream>, target: &str) -> (u16, Vec<u8>) {
    reader
        .get_mut()
        .write_all(
            format!("GET {target} HTTP/1.1\r\nHost: bench\r\nAccept: text/csv\r\n\r\n").as_bytes(),
        )
        .expect("request write");
    read_response(reader)
}

/// Per-request latencies for `n` sequential point queries on `tenant`.
fn measure(addr: SocketAddr, tenant: &str, n: usize) -> Vec<Duration> {
    let target = format!(
        "/tenants/{tenant}/query?query={}",
        percent_encode("SELECT ?o WHERE { <http://e#s7> <http://e#p> ?o }")
    );
    let mut reader = connect(addr);
    let (status, _) = get(&mut reader, &target); // warm up
    assert_eq!(status, 200, "interactive warm-up on {tenant}");
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let start = Instant::now();
        let (status, _) = get(&mut reader, &target);
        assert_eq!(status, 200, "interactive request on {tenant}");
        samples.push(start.elapsed());
    }
    samples
}

fn percentile(samples: &mut [Duration], p: f64) -> Duration {
    samples.sort();
    let idx = ((samples.len() as f64 * p).ceil() as usize).saturating_sub(1);
    samples[idx.min(samples.len() - 1)]
}

fn main() {
    let mut quick = false;
    let mut out = "BENCH_tenants.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    let interactive_n: usize = if quick { 150 } else { 500 };
    let hog_clients: usize = 4;

    println!("multi-tenant fair share: one hog, two interactive tenants, shared worker pool");

    let (addr, handle, join) = start_server(TenantQuotas {
        max_concurrent: 1,
        max_queued: 16,
        rate: Some(RateLimit {
            per_sec: 400.0,
            burst: 32.0,
        }),
    });

    // --- Phase 1: solo baselines -----------------------------------------
    let mut solo: Vec<(String, Vec<Duration>)> = Vec::new();
    for tenant in ["i1", "i2"] {
        solo.push((tenant.to_string(), measure(addr, tenant, interactive_n)));
    }

    // --- Phase 2: the hog saturates, interactive re-measured -------------
    let stop = Arc::new(AtomicBool::new(false));
    let hog_ok = Arc::new(AtomicU64::new(0));
    let hog_rejected = Arc::new(AtomicU64::new(0));
    // A cross join over the hog's 120 subjects: ~14k result rows per
    // request, expensive enough that an unfair queue visibly stalls
    // the interactive tenants behind it.
    let hog_target = format!(
        "/tenants/hog/query?query={}",
        percent_encode("SELECT ?a ?b WHERE { ?a <http://e#p> ?x . ?b <http://e#p> ?y }")
    );
    let hogs: Vec<_> = (0..hog_clients)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let ok = Arc::clone(&hog_ok);
            let rejected = Arc::clone(&hog_rejected);
            let target = hog_target.clone();
            std::thread::spawn(move || {
                let mut reader = connect(addr);
                while !stop.load(Ordering::Relaxed) {
                    let (status, _) = get(&mut reader, &target);
                    match status {
                        200 => ok.fetch_add(1, Ordering::Relaxed),
                        429 | 503 => rejected.fetch_add(1, Ordering::Relaxed),
                        other => panic!("unexpected hog status {other}"),
                    };
                }
            })
        })
        .collect();
    // Let the hog build a backlog before measuring.
    while hog_ok.load(Ordering::Relaxed) < 4 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut contended: Vec<(String, Vec<Duration>)> = Vec::new();
    for tenant in ["i1", "i2"] {
        contended.push((tenant.to_string(), measure(addr, tenant, interactive_n)));
    }
    stop.store(true, Ordering::Relaxed);
    for h in hogs {
        h.join().expect("hog client");
    }
    let hog_served = hog_ok.load(Ordering::Relaxed);
    let hog_429s = hog_rejected.load(Ordering::Relaxed);
    assert!(
        hog_served >= 4,
        "hog must actually saturate ({hog_served} served)"
    );

    // --- Acceptance: bounded interference --------------------------------
    let floor = Duration::from_millis(2);
    let header: Vec<String> = [
        "tenant",
        "solo p50",
        "solo p99",
        "contended p50",
        "contended p99",
        "ratio",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    let mut rows = Vec::new();
    let mut report: Vec<(String, f64, f64, f64)> = Vec::new();
    for ((name, mut s), (_, mut c)) in solo.into_iter().zip(contended) {
        let solo_p50 = percentile(&mut s, 0.50);
        let solo_p99 = percentile(&mut s, 0.99);
        let cont_p50 = percentile(&mut c, 0.50);
        let cont_p99 = percentile(&mut c, 0.99);
        let bound = solo_p99.max(floor);
        let ratio = cont_p99.as_secs_f64() / bound.as_secs_f64();
        rows.push(vec![
            name.clone(),
            format!("{:.2}ms", solo_p50.as_secs_f64() * 1e3),
            format!("{:.2}ms", solo_p99.as_secs_f64() * 1e3),
            format!("{:.2}ms", cont_p50.as_secs_f64() * 1e3),
            format!("{:.2}ms", cont_p99.as_secs_f64() * 1e3),
            format!("{ratio:.2}"),
        ]);
        assert!(
            cont_p99 <= bound * 3,
            "tenant {name}: contended p99 {cont_p99:?} exceeds 3x solo bound {bound:?}"
        );
        report.push((
            name,
            solo_p99.as_secs_f64() * 1e3,
            cont_p99.as_secs_f64() * 1e3,
            ratio,
        ));
    }
    print_table(
        "interactive latency, hog saturating its quota",
        &header,
        &rows,
    );
    println!("hog: {hog_served} served, {hog_429s} rejected over quota");

    // --- Acceptance: per-tenant counters reconcile ------------------------
    let mut reader = connect(addr);
    let (status, body) = get(&mut reader, "/metrics");
    assert_eq!(status, 200, "/metrics");
    let metrics = String::from_utf8(body).expect("metrics utf-8");
    let series = |name: &str, tenant: &str| -> u64 {
        let needle = format!("{name}{{tenant=\"{tenant}\"}} ");
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(&needle))
            .unwrap_or_else(|| panic!("missing series {needle}"))
            .trim()
            .parse()
            .expect("numeric series")
    };
    let mut reconciled = Vec::new();
    for tenant in ["hog", "i1", "i2"] {
        let admitted = series("ssdm_tenant_admitted_total", tenant);
        let finished = series("ssdm_tenant_completed_total", tenant)
            + series("ssdm_tenant_errors_total", tenant)
            + series("ssdm_tenant_timed_out_total", tenant);
        assert_eq!(
            admitted, finished,
            "tenant {tenant}: admitted != completed + errors + timed_out"
        );
        reconciled.push((tenant, admitted));
    }
    println!(
        "counter reconciliation ✓: {}",
        reconciled
            .iter()
            .map(|(t, n)| format!("{t}={n}"))
            .collect::<Vec<_>>()
            .join(" ")
    );

    handle.shutdown();
    join.join().expect("server thread");

    // --- JSON -------------------------------------------------------------
    let tenants_json = report
        .iter()
        .map(|(name, solo_ms, cont_ms, ratio)| {
            format!(
                "{{\"tenant\": \"{name}\", \"solo_p99_ms\": {solo_ms:.3}, \
                 \"contended_p99_ms\": {cont_ms:.3}, \"ratio_vs_bound\": {ratio:.3}}}"
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"config\": {{\"interactive_requests\": {interactive_n}, \
         \"hog_clients\": {hog_clients}, \"workers\": 2, \"quick\": {quick}}},\n  \
         \"interactive\": [{tenants_json}],\n  \
         \"hog\": {{\"served\": {hog_served}, \"rejected\": {hog_429s}}},\n  \
         \"counters_reconcile\": true\n}}\n",
    );
    std::fs::write(&out, json).expect("write JSON");
    println!("wrote {out}");
}
