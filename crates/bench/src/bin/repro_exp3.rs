//! Experiment 3 (thesis §6.3.4): varying the chunk size.
//!
//! The chunk size is the single physical tuning parameter of SSDM's
//! array storage (§2.5). Small chunks minimize overfetch on point
//! access but multiply statements and per-chunk overheads; large chunks
//! favour sequential scans but drag whole neighbourhoods across the
//! wire for selective access. The degenerate largest setting stores
//! the array as one chunk — the "whole-array BLOB" baseline.

use relstore::{DbOptions, LatencyModel};
use ssdm_bench::fmt_ms;
use ssdm_bench::runner::{print_table, run_pattern};
use ssdm_bench::workload::{AccessPattern, QueryGenerator};
use ssdm_storage::{spd::SpdOptions, ArrayStore, RelChunkStore, RetrievalStrategy};

fn main() {
    let (rows, cols) = (256, 256); // 512 KiB
    let queries = 10;
    let chunk_sizes = [64usize, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20];

    println!("Experiment 3: varying the chunk size (thesis §6.3.4)");
    println!(
        "matrix {rows}x{cols} f64 (512 KiB), {queries} queries per cell, \
         SPD-RANGE strategy, local-DBMS latency; last column = whole-array chunk"
    );

    let patterns = [
        AccessPattern::SingleElement,
        AccessPattern::Row,
        AccessPattern::Column,
        AccessPattern::Whole,
    ];

    let header: Vec<String> = std::iter::once("chunk B".to_string())
        .chain(
            patterns
                .iter()
                .flat_map(|p| [format!("{} ms/q", p.name()), format!("{} KiB/q", p.name())]),
        )
        .collect();
    let mut table = Vec::new();
    for &chunk_bytes in &chunk_sizes {
        // A fresh store per chunk size (the layout changes physically).
        let db = relstore::Db::open_memory(DbOptions {
            pool_pages: 8192,
            latency: LatencyModel::local_dbms(),
        })
        .expect("db");
        let mut store = ArrayStore::new(RelChunkStore::new(db));
        let matrix = QueryGenerator::matrix(rows, cols);
        let base = store.store_array(&matrix, chunk_bytes).expect("store");

        let mut row = vec![chunk_bytes.to_string()];
        for &pattern in &patterns {
            let mut gen = QueryGenerator::new(rows, cols, 7);
            let m = run_pattern(
                &mut store,
                &base,
                &mut gen,
                pattern,
                RetrievalStrategy::SpdRange {
                    options: SpdOptions::default(),
                },
                queries,
            );
            row.push(fmt_ms(m.total_seconds / queries as f64));
            row.push(format!(
                "{:.1}",
                m.bytes_fetched as f64 / 1024.0 / queries as f64
            ));
        }
        table.push(row);
    }
    print_table(
        "per-query time and data volume vs chunk size",
        &header,
        &table,
    );
    println!(
        "\nReading: ELEMENT cost grows with chunk size (overfetch); WHOLE cost falls \
         (fewer chunks, fewer statements); the crossover region around a few KiB is \
         the thesis' auto-tuning sweet spot."
    );
}
