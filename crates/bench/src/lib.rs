//! Benchmark harness for the SciSPARQL evaluation (thesis ch. 6).
//!
//! [`workload`] implements the array mini-benchmark's query generator
//! (§6.3.1): parameterized access patterns over stored 2-D arrays.
//! [`runner`] executes a pattern against an [`ssdm_storage::ArrayStore`]
//! under a chosen retrieval strategy and collects the measurements the
//! thesis reports: wall time, back-end statements, chunks and bytes
//! fetched. The `repro_*` binaries print one table or figure each; the
//! Criterion benches track the same code paths over time.

pub mod runner;
pub mod workload;

/// Format a f64 duration in milliseconds with sensible precision.
pub fn fmt_ms(seconds: f64) -> String {
    let ms = seconds * 1e3;
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.4}")
    }
}
