//! Experiment execution and measurement collection.

use std::time::Instant;

use ssdm_storage::{ArrayProxy, ArrayStore, ChunkStore, RetrievalStrategy};

use crate::workload::{AccessPattern, QueryGenerator};

/// Measurements for one (pattern, strategy) cell of an experiment
/// table, averaged over `queries` query instances.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    pub queries: usize,
    pub total_seconds: f64,
    pub statements: u64,
    pub chunks_fetched: u64,
    pub bytes_fetched: u64,
    pub elements_resolved: u64,
}

impl Measurement {
    pub fn per_query_ms(&self) -> f64 {
        self.total_seconds * 1e3 / self.queries.max(1) as f64
    }

    /// Overfetch factor: bytes fetched per byte actually needed.
    pub fn overfetch(&self) -> f64 {
        let needed = self.elements_resolved.max(1) * 8;
        self.bytes_fetched as f64 / needed as f64
    }
}

/// Run `queries` instances of `pattern` under `strategy`, resolving
/// each view fully, and return the aggregated measurements.
pub fn run_pattern<S: ChunkStore>(
    store: &mut ArrayStore<S>,
    base: &ArrayProxy,
    generator: &mut QueryGenerator,
    pattern: AccessPattern,
    strategy: RetrievalStrategy,
    queries: usize,
) -> Measurement {
    store.backend_mut().reset_io_stats();
    let mut elements = 0u64;
    let start = Instant::now();
    for _ in 0..queries {
        let proxy = generator.instance(base, pattern);
        let resolved = store.resolve(&proxy, strategy).expect("resolve");
        elements += resolved.element_count() as u64;
        std::hint::black_box(&resolved);
    }
    let total_seconds = start.elapsed().as_secs_f64();
    let io = store.backend().io_stats();
    Measurement {
        queries,
        total_seconds,
        statements: io.statements,
        chunks_fetched: io.chunks_returned,
        bytes_fetched: io.bytes_returned,
        elements_resolved: elements,
    }
}

/// Like [`run_pattern`] but computing a streamed aggregate (AAPR)
/// instead of materializing.
pub fn run_pattern_aggregate<S: ChunkStore>(
    store: &mut ArrayStore<S>,
    base: &ArrayProxy,
    generator: &mut QueryGenerator,
    pattern: AccessPattern,
    strategy: RetrievalStrategy,
    queries: usize,
) -> Measurement {
    store.backend_mut().reset_io_stats();
    let mut elements = 0u64;
    let start = Instant::now();
    for _ in 0..queries {
        let proxy = generator.instance(base, pattern);
        elements += proxy.element_count() as u64;
        let agg = store
            .resolve_aggregate(&proxy, ssdm_array::AggregateOp::Sum, strategy)
            .expect("aggregate");
        std::hint::black_box(agg);
    }
    let total_seconds = start.elapsed().as_secs_f64();
    let io = store.backend().io_stats();
    Measurement {
        queries,
        total_seconds,
        statements: io.statements,
        chunks_fetched: io.chunks_returned,
        bytes_fetched: io.bytes_returned,
        elements_resolved: elements,
    }
}

/// Print an aligned table: header then rows of cells.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n== {title}");
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        s
    };
    println!("{}", line(header));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for r in rows {
        println!("{}", line(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::standard_patterns;
    use ssdm_storage::MemoryChunkStore;

    #[test]
    fn measurements_are_consistent() {
        let mut store = ArrayStore::new(MemoryChunkStore::new());
        // Pin the raw codec: this test checks *wire* overfetch against
        // bytes needed, an invariant compression deliberately breaks.
        store.set_codec(ssdm_storage::CodecPolicy::Raw);
        let m = QueryGenerator::matrix(64, 64);
        let base = store.store_array(&m, 512).unwrap();
        let mut gen = QueryGenerator::new(64, 64, 3);
        for p in standard_patterns() {
            let meas = run_pattern(&mut store, &base, &mut gen, p, RetrievalStrategy::Single, 4);
            assert_eq!(meas.queries, 4);
            assert!(meas.statements >= 4, "{}", p.name());
            assert!(meas.chunks_fetched >= meas.statements);
            assert!(
                meas.overfetch() >= 0.99,
                "{}: {}",
                p.name(),
                meas.overfetch()
            );
        }
    }

    #[test]
    fn aggregate_runner_matches_materialized_totals() {
        let mut store = ArrayStore::new(MemoryChunkStore::new());
        let m = QueryGenerator::matrix(16, 16);
        let base = store.store_array(&m, 64).unwrap();
        let mut gen = QueryGenerator::new(16, 16, 9);
        let meas = run_pattern_aggregate(
            &mut store,
            &base,
            &mut gen,
            AccessPattern::Whole,
            RetrievalStrategy::WholeArray,
            2,
        );
        assert_eq!(meas.elements_resolved, 2 * 256);
        assert_eq!(meas.statements, 2);
    }
}
