//! The array mini-benchmark's query generator (thesis §6.3.1).
//!
//! Generates the "typical array access patterns, including the best and
//! worst cases for each storage choice": single elements (random point
//! access), full rows (sequential, chunk-aligned), full columns
//! (regular stride — the SPD's best case over a chunked layout),
//! strided slices, and contiguous blocks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssdm_array::NumArray;
use ssdm_storage::ArrayProxy;

/// The access-pattern families of the mini-benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// One random element.
    SingleElement,
    /// One full row (contiguous in row-major storage).
    Row,
    /// One full column (stride = row length).
    Column,
    /// Every k-th element of one row.
    StridedRow { stride: usize },
    /// Every k-th row, whole rows.
    StridedRows { stride: usize },
    /// A contiguous rows×cols block at a random origin.
    Block { rows: usize, cols: usize },
    /// The whole array.
    Whole,
}

impl AccessPattern {
    pub fn name(&self) -> String {
        match self {
            AccessPattern::SingleElement => "ELEMENT".into(),
            AccessPattern::Row => "ROW".into(),
            AccessPattern::Column => "COLUMN".into(),
            AccessPattern::StridedRow { stride } => format!("ROW/{stride}"),
            AccessPattern::StridedRows { stride } => format!("ROWS/{stride}"),
            AccessPattern::Block { rows, cols } => format!("BLOCK{rows}x{cols}"),
            AccessPattern::Whole => "WHOLE".into(),
        }
    }
}

/// A generator of concrete array views for a pattern over a fixed
/// matrix shape, with a deterministic RNG (so every strategy sees the
/// same query sequence — the paper's controlled comparison).
pub struct QueryGenerator {
    pub rows: usize,
    pub cols: usize,
    rng: StdRng,
}

impl QueryGenerator {
    pub fn new(rows: usize, cols: usize, seed: u64) -> Self {
        QueryGenerator {
            rows,
            cols,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The test matrix itself: `rows × cols` reals with deterministic
    /// contents.
    pub fn matrix(rows: usize, cols: usize) -> NumArray {
        NumArray::from_shape_fn(&[rows, cols], |ix| {
            ((ix[0] * 31 + ix[1] * 7) as f64 * 0.25).into()
        })
    }

    /// Derive the proxy view for one instance of `pattern`.
    pub fn instance(&mut self, base: &ArrayProxy, pattern: AccessPattern) -> ArrayProxy {
        let (r, c) = (self.rows, self.cols);
        match pattern {
            AccessPattern::SingleElement => {
                let i = self.rng.gen_range(0..r);
                let j = self.rng.gen_range(0..c);
                base.subscript(0, i)
                    .and_then(|p| p.subscript(0, j))
                    .expect("in-bounds")
            }
            AccessPattern::Row => {
                let i = self.rng.gen_range(0..r);
                base.subscript(0, i).expect("in-bounds")
            }
            AccessPattern::Column => {
                let j = self.rng.gen_range(0..c);
                base.subscript(1, j).expect("in-bounds")
            }
            AccessPattern::StridedRow { stride } => {
                let i = self.rng.gen_range(0..r);
                base.subscript(0, i)
                    .and_then(|p| p.slice(0, 0, stride, c - 1))
                    .expect("in-bounds")
            }
            AccessPattern::StridedRows { stride } => {
                base.slice(0, 0, stride, r - 1).expect("in-bounds")
            }
            AccessPattern::Block { rows, cols } => {
                let rows = rows.min(r);
                let cols = cols.min(c);
                let i = self.rng.gen_range(0..=r - rows);
                let j = self.rng.gen_range(0..=c - cols);
                base.slice(0, i, 1, i + rows - 1)
                    .and_then(|p| p.slice(1, j, 1, j + cols - 1))
                    .expect("in-bounds")
            }
            AccessPattern::Whole => base.clone(),
        }
    }
}

/// The standard pattern suite used across experiments 1–3.
pub fn standard_patterns() -> Vec<AccessPattern> {
    vec![
        AccessPattern::SingleElement,
        AccessPattern::Row,
        AccessPattern::Column,
        AccessPattern::StridedRow { stride: 4 },
        AccessPattern::StridedRows { stride: 8 },
        AccessPattern::Block { rows: 16, cols: 16 },
        AccessPattern::Whole,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdm_storage::{ArrayStore, MemoryChunkStore, RetrievalStrategy};

    #[test]
    fn instances_are_deterministic_per_seed() {
        let mut store = ArrayStore::new(MemoryChunkStore::new());
        let m = QueryGenerator::matrix(32, 32);
        let base = store.store_array(&m, 256).unwrap();
        let mut g1 = QueryGenerator::new(32, 32, 5);
        let mut g2 = QueryGenerator::new(32, 32, 5);
        for p in standard_patterns() {
            let a = g1.instance(&base, p);
            let b = g2.instance(&base, p);
            assert_eq!(a.view(), b.view(), "{}", p.name());
        }
    }

    #[test]
    fn every_pattern_resolves_correctly() {
        let mut store = ArrayStore::new(MemoryChunkStore::new());
        let m = QueryGenerator::matrix(32, 32);
        let base = store.store_array(&m, 128).unwrap();
        let mut gen = QueryGenerator::new(32, 32, 1);
        for p in standard_patterns() {
            let proxy = gen.instance(&base, p);
            let got = store
                .resolve(&proxy, RetrievalStrategy::WholeArray)
                .unwrap();
            // Check against the resident matrix through the same view.
            let want_addrs = proxy.view().addresses();
            let got_elems = got.elements();
            assert_eq!(got_elems.len(), want_addrs.len(), "{}", p.name());
            for (k, addr) in want_addrs.iter().enumerate() {
                let (i, j) = (addr / 32, addr % 32);
                assert_eq!(got_elems[k], m.get(&[i, j]).unwrap(), "{}", p.name());
            }
        }
    }
}
