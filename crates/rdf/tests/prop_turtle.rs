//! Property tests: random RDF-with-Arrays graphs survive
//! serialize → parse round trips through both Turtle and N-Triples
//! (with consolidation restoring arrays).

use proptest::prelude::*;
use ssdm_array::NumArray;
use ssdm_rdf::{consolidate_collections, ntriples, turtle, Graph, Namespaces, Term};

/// Strategy: a random RDF term usable as an object.
fn objects() -> impl Strategy<Value = Term> {
    prop_oneof![
        "[a-z][a-z0-9]{0,8}".prop_map(|s| Term::uri(format!("http://t/{s}"))),
        any::<i64>().prop_map(Term::integer),
        // Finite reals only: NaN breaks value round-trip comparison.
        (-1.0e12f64..1.0e12).prop_map(Term::double),
        "[ -~]{0,20}".prop_map(Term::str),
        any::<bool>().prop_map(Term::Bool),
        prop::collection::vec(-1000i64..1000, 1..8)
            .prop_map(|v| Term::Array(NumArray::from_i64(v))),
        (1usize..4, prop::collection::vec(-100i64..100, 1..4)).prop_map(|(rows, base)| {
            let cols = base.len();
            let data: Vec<i64> = (0..rows * cols)
                .map(|i| base[i % cols] + i as i64)
                .collect();
            Term::Array(NumArray::from_i64_shaped(data, &[rows, cols]).unwrap())
        }),
    ]
}

fn graphs() -> impl Strategy<Value = Vec<(String, String, Term)>> {
    prop::collection::vec(
        ("[a-z][a-z0-9]{0,6}", "[a-z][a-z0-9]{0,6}", objects()),
        1..25,
    )
}

fn build(triples: &[(String, String, Term)]) -> Graph {
    let mut g = Graph::new();
    for (s, p, o) in triples {
        g.insert(
            Term::uri(format!("http://s/{s}")),
            Term::uri(format!("http://p/{p}")),
            o.clone(),
        );
    }
    g
}

fn graphs_equivalent(a: &Graph, b: &Graph) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().all(|t| {
        let (s, p, o) = (a.term(t.s), a.term(t.p), a.term(t.o));
        b.iter()
            .any(|u| b.term(u.s).value_eq(s) && b.term(u.p).value_eq(p) && b.term(u.o).value_eq(o))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn turtle_round_trip(triples in graphs()) {
        let g = build(&triples);
        let text = turtle::serialize(&g, &Namespaces::new());
        let mut back = Graph::new();
        turtle::parse_into(&mut back, &text).unwrap();
        prop_assert!(graphs_equivalent(&g, &back), "turtle:\n{text}");
    }

    #[test]
    fn ntriples_round_trip_with_consolidation(triples in graphs()) {
        let g = build(&triples);
        let text = ntriples::serialize(&g);
        let mut back = Graph::new();
        turtle::parse_into(&mut back, &text).unwrap();
        consolidate_collections(&mut back);
        prop_assert!(graphs_equivalent(&g, &back), "ntriples:\n{text}");
    }

    /// Pattern matching agrees with a linear scan of the triple list.
    #[test]
    fn match_pattern_equals_scan(triples in graphs(), probe in 0usize..25) {
        let g = build(&triples);
        prop_assume!(!triples.is_empty());
        let (s, p, _) = &triples[probe % triples.len()];
        let sid = g.dictionary().lookup(&Term::uri(format!("http://s/{s}")));
        let pid = g.dictionary().lookup(&Term::uri(format!("http://p/{p}")));
        let via_index = g.match_pattern(sid, pid, None).count();
        let via_scan = g
            .iter()
            .filter(|t| Some(t.s) == sid && Some(t.p) == pid)
            .count();
        prop_assert_eq!(via_index, via_scan);
    }
}
