//! Incremental value statistics for the cost-based optimizer.
//!
//! The graph keeps, per predicate, a small **equi-width histogram** over
//! the numeric object values and a **KMV distinct-count sketch**, both
//! maintained incrementally as triples are inserted and deleted
//! (thesis §5.4: the statistics that feed the Amos II-style cost
//! optimizer; RDF-3X keeps the same shape of histogram per predicate).
//!
//! Design constraints:
//!
//! * **Incremental.** Loads stream millions of triples; the structures
//!   update in O(1) amortized per triple with no rebuild pass.
//! * **Bounded.** 16 buckets and a 64-hash sketch per predicate, so a
//!   graph with thousands of predicates stays cheap.
//! * **Conservative under deletion.** Histogram counts decrement
//!   exactly; the sketch is insert-only (a deletion leaves the distinct
//!   estimate an upper bound, which only makes equality selectivities
//!   *smaller* — the safe direction for join ordering).

/// Number of buckets in every histogram. 16 keeps a predicate's
/// statistics in one cache line while still separating the value
/// clusters real datasets have.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// Size of the KMV (k-minimum-values) distinct sketch.
pub const SKETCH_K: usize = 64;

/// An equi-width histogram over f64 values whose range grows by
/// doubling: inserting a value outside the current range merges bucket
/// pairs and widens, so earlier counts stay exact at coarser
/// granularity. Deletions decrement the covering bucket.
#[derive(Debug, Clone, Default)]
pub struct NumericHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    /// Left edge of bucket 0. Meaningless while `count == 0`.
    lo: f64,
    /// Width of one bucket.
    width: f64,
    count: u64,
    /// Smallest / largest value ever inserted (not shrunk by deletes).
    min: f64,
    max: f64,
}

impl NumericHistogram {
    pub fn new() -> Self {
        NumericHistogram::default()
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observed value bounds, if any value was ever inserted.
    pub fn bounds(&self) -> Option<(f64, f64)> {
        (self.count > 0).then_some((self.min, self.max))
    }

    pub fn insert(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.count == 0 {
            self.lo = v;
            self.width = 1.0;
            self.buckets = [0; HISTOGRAM_BUCKETS];
            self.min = v;
            self.max = v;
        }
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        // Widen by doubling until the value is covered. Each doubling
        // merges bucket pairs, so the loop is logarithmic in the span.
        let mut guard = 0;
        while v < self.lo {
            self.grow_left();
            guard += 1;
            if guard > 4200 {
                break; // full f64 range exhausted; clamp below
            }
        }
        while v >= self.hi() {
            self.grow_right();
            guard += 1;
            if guard > 4200 {
                break;
            }
        }
        let idx = self.bucket_of(v);
        self.buckets[idx] += 1;
        self.count += 1;
    }

    pub fn remove(&mut self, v: f64) {
        if !v.is_finite() || self.count == 0 {
            return;
        }
        let idx = self.bucket_of(v);
        self.buckets[idx] = self.buckets[idx].saturating_sub(1);
        self.count -= 1;
    }

    fn hi(&self) -> f64 {
        self.lo + self.width * HISTOGRAM_BUCKETS as f64
    }

    fn bucket_of(&self, v: f64) -> usize {
        if v < self.lo {
            return 0;
        }
        let idx = ((v - self.lo) / self.width) as usize;
        idx.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Double the range to the left: new range `[lo - span, hi)`.
    fn grow_left(&mut self) {
        let mut merged = [0u64; HISTOGRAM_BUCKETS];
        for (j, c) in self.buckets.iter().enumerate() {
            merged[HISTOGRAM_BUCKETS / 2 + j / 2] += c;
        }
        self.lo -= self.width * HISTOGRAM_BUCKETS as f64;
        self.width *= 2.0;
        self.buckets = merged;
    }

    /// Double the range to the right: new range `[lo, hi + span)`.
    fn grow_right(&mut self) {
        let mut merged = [0u64; HISTOGRAM_BUCKETS];
        for (j, c) in self.buckets.iter().enumerate() {
            merged[j / 2] += c;
        }
        self.width *= 2.0;
        self.buckets = merged;
    }

    /// Estimated number of inserted values in `[lo, hi]` (either bound
    /// optional), interpolating linearly within partially covered
    /// buckets.
    pub fn estimate_range(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let lo = lo.unwrap_or(f64::NEG_INFINITY);
        let hi = hi.unwrap_or(f64::INFINITY);
        if hi < lo {
            return 0.0;
        }
        let mut total = 0.0;
        for (j, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let b_lo = self.lo + self.width * j as f64;
            let b_hi = b_lo + self.width;
            let ov_lo = lo.max(b_lo);
            let ov_hi = hi.min(b_hi);
            if ov_hi <= ov_lo {
                continue;
            }
            total += c as f64 * ((ov_hi - ov_lo) / self.width).min(1.0);
        }
        total
    }

    /// The mass of the bucket covering `v` (0 when out of range).
    pub fn bucket_mass(&self, v: f64) -> f64 {
        if self.count == 0 || v < self.lo || v >= self.hi() {
            return 0.0;
        }
        self.buckets[self.bucket_of(v)] as f64
    }

    /// Number of buckets currently holding mass.
    pub fn nonempty_buckets(&self) -> usize {
        self.buckets.iter().filter(|&&c| c > 0).count()
    }
}

/// A KMV (k-minimum-values) distinct-count sketch over 64-bit hashes.
/// Insert-only: deletions are counted but not reflected, so the
/// estimate is an upper bound after deletes (documented above).
#[derive(Debug, Clone, Default)]
pub struct DistinctSketch {
    /// The `SKETCH_K` smallest hashes seen, sorted ascending.
    mins: Vec<u64>,
    /// Total inserts offered (not distinct).
    inserts: u64,
    /// Deletions offered since the sketch was built (estimate staleness
    /// indicator; the estimate itself does not shrink).
    deletes: u64,
}

impl DistinctSketch {
    pub fn new() -> Self {
        DistinctSketch::default()
    }

    pub fn insert_hash(&mut self, h: u64) {
        self.inserts += 1;
        match self.mins.binary_search(&h) {
            Ok(_) => {}
            Err(pos) => {
                if self.mins.len() < SKETCH_K {
                    self.mins.insert(pos, h);
                } else if pos < SKETCH_K {
                    self.mins.insert(pos, h);
                    self.mins.pop();
                }
            }
        }
    }

    pub fn insert_f64(&mut self, v: f64) {
        // Normalize -0.0 so both zeros hash identically.
        let v = if v == 0.0 { 0.0 } else { v };
        self.insert_hash(splitmix64(v.to_bits()));
    }

    pub fn note_delete(&mut self) {
        self.deletes += 1;
    }

    /// Estimated number of distinct values inserted. Exact below
    /// `SKETCH_K` distinct values.
    pub fn estimate(&self) -> f64 {
        let n = self.mins.len();
        if n < SKETCH_K {
            return n as f64;
        }
        let kth = *self.mins.last().expect("k >= 1") as f64;
        if kth <= 0.0 {
            return n as f64;
        }
        // E[distinct] = (k - 1) / normalized kth minimum.
        (SKETCH_K as f64 - 1.0) * (u64::MAX as f64) / kth
    }

    pub fn deletes(&self) -> u64 {
        self.deletes
    }
}

/// SplitMix64: the cheap, well-mixed 64-bit hash used across the
/// workspace (shard placement uses the same construction).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Per-predicate statistics over *numeric object values*: the
/// histogram drives range selectivities, the sketch equality
/// selectivities under skew.
#[derive(Debug, Clone, Default)]
pub struct ObjectStats {
    pub histogram: NumericHistogram,
    pub sketch: DistinctSketch,
}

impl ObjectStats {
    /// Estimated triples whose numeric object equals `v`: the covering
    /// bucket's mass divided by the distinct values expected per
    /// non-empty bucket. Under heavy skew the common value dominates
    /// its bucket and the estimate tracks the real frequency instead of
    /// the uniform `count / distinct` guess.
    pub fn estimate_eq(&self, v: f64) -> f64 {
        let mass = self.histogram.bucket_mass(v);
        if mass <= 0.0 {
            return 0.0;
        }
        let nonempty = self.histogram.nonempty_buckets().max(1);
        let distinct = self.sketch.estimate().max(1.0);
        let per_bucket = (distinct / nonempty as f64).max(1.0);
        (mass / per_bucket).max(1.0)
    }

    /// Estimated triples whose numeric object lies in `[lo, hi]`.
    pub fn estimate_range(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        self.histogram.estimate_range(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_insert_and_range() {
        let mut h = NumericHistogram::new();
        for i in 0..100 {
            h.insert(i as f64);
        }
        assert_eq!(h.count(), 100);
        let half = h.estimate_range(None, Some(49.999));
        assert!(
            (40.0..=60.0).contains(&half),
            "expected ~50 below 50, got {half}"
        );
        let all = h.estimate_range(None, None);
        assert!((all - 100.0).abs() < 1e-6);
        assert_eq!(h.bounds(), Some((0.0, 99.0)));
    }

    #[test]
    fn histogram_grows_both_directions() {
        let mut h = NumericHistogram::new();
        h.insert(0.0);
        h.insert(1000.0);
        h.insert(-1000.0);
        assert_eq!(h.count(), 3);
        let all = h.estimate_range(None, None);
        assert!((all - 3.0).abs() < 1e-6);
        // Counts survive merging: exactly one value above 500.
        let high = h.estimate_range(Some(500.0), None);
        assert!((0.5..=2.0).contains(&high), "got {high}");
    }

    #[test]
    fn histogram_remove_decrements() {
        let mut h = NumericHistogram::new();
        for i in 0..10 {
            h.insert(i as f64);
        }
        for i in 0..5 {
            h.remove(i as f64);
        }
        assert_eq!(h.count(), 5);
        let below = h.estimate_range(None, Some(4.0));
        assert!(below <= 2.0, "deleted mass still estimated: {below}");
    }

    #[test]
    fn histogram_extreme_values_do_not_hang() {
        let mut h = NumericHistogram::new();
        h.insert(1e300);
        h.insert(-1e300);
        h.insert(f64::NAN); // ignored
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn sketch_exact_when_small() {
        let mut s = DistinctSketch::new();
        for i in 0..40 {
            s.insert_f64(i as f64);
            s.insert_f64(i as f64); // duplicates collapse
        }
        assert_eq!(s.estimate(), 40.0);
    }

    #[test]
    fn sketch_estimates_large_cardinalities() {
        let mut s = DistinctSketch::new();
        for i in 0..10_000 {
            s.insert_f64(i as f64);
        }
        let est = s.estimate();
        assert!(
            (5_000.0..=20_000.0).contains(&est),
            "KMV estimate too far off: {est}"
        );
    }

    #[test]
    fn skewed_eq_estimate_tracks_common_value() {
        let mut st = ObjectStats::default();
        // 950 copies of 1.0, 50 distinct rare values spread out.
        for _ in 0..950 {
            st.histogram.insert(1.0);
            st.sketch.insert_f64(1.0);
        }
        for i in 0..50 {
            let v = 100.0 + i as f64 * 10.0;
            st.histogram.insert(v);
            st.sketch.insert_f64(v);
        }
        let common = st.estimate_eq(1.0);
        let uniform_guess = 1000.0 / 51.0;
        assert!(
            common > 5.0 * uniform_guess,
            "skew not detected: eq(1.0) = {common}, uniform = {uniform_guess}"
        );
    }
}
