//! Namespace prefix handling.

use std::collections::HashMap;

use crate::term::RdfError;

pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
pub const RDF_FIRST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#first";
pub const RDF_REST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#rest";
pub const RDF_NIL: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil";
pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
pub const XSD_DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";

/// A prefix → namespace-URI map with the ubiquitous W3C namespaces
/// pre-declared (rdf, rdfs, xsd, owl).
#[derive(Debug, Clone)]
pub struct Namespaces {
    map: HashMap<String, String>,
    base: Option<String>,
}

impl Default for Namespaces {
    fn default() -> Self {
        let mut map = HashMap::new();
        map.insert(
            "rdf".to_string(),
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#".to_string(),
        );
        map.insert(
            "rdfs".to_string(),
            "http://www.w3.org/2000/01/rdf-schema#".to_string(),
        );
        map.insert(
            "xsd".to_string(),
            "http://www.w3.org/2001/XMLSchema#".to_string(),
        );
        map.insert(
            "owl".to_string(),
            "http://www.w3.org/2002/07/owl#".to_string(),
        );
        Namespaces { map, base: None }
    }
}

impl Namespaces {
    pub fn new() -> Self {
        Namespaces::default()
    }

    pub fn declare(&mut self, prefix: impl Into<String>, uri: impl Into<String>) {
        self.map.insert(prefix.into(), uri.into());
    }

    pub fn set_base(&mut self, base: impl Into<String>) {
        self.base = Some(base.into());
    }

    pub fn base(&self) -> Option<&str> {
        self.base.as_deref()
    }

    /// Expand `prefix:local` into a full URI.
    pub fn expand(&self, prefix: &str, local: &str) -> Result<String, RdfError> {
        self.map
            .get(prefix)
            .map(|ns| format!("{ns}{local}"))
            .ok_or_else(|| RdfError::UnknownPrefix(prefix.to_string()))
    }

    /// Resolve a possibly-relative URI reference against the base.
    pub fn resolve(&self, uri: &str) -> String {
        if uri.contains("://") || self.base.is_none() {
            uri.to_string()
        } else {
            format!("{}{uri}", self.base.as_deref().unwrap())
        }
    }

    /// Compact a full URI back into `prefix:local` form if a declared
    /// namespace covers it (longest match wins). For serialization.
    pub fn compact(&self, uri: &str) -> Option<String> {
        let mut best: Option<(&str, &str)> = None;
        for (p, ns) in &self.map {
            if let Some(local) = uri.strip_prefix(ns.as_str()) {
                if local.contains('/') || local.contains('#') {
                    continue;
                }
                if best.map(|(_, b)| ns.len() > b.len()).unwrap_or(true) {
                    best = Some((p, ns));
                }
            }
        }
        best.map(|(p, ns)| format!("{p}:{}", &uri[ns.len()..]))
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &String)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_known_prefix() {
        let ns = Namespaces::new();
        assert_eq!(ns.expand("rdf", "type").unwrap(), RDF_TYPE);
    }

    #[test]
    fn expand_unknown_prefix_errors() {
        let ns = Namespaces::new();
        assert!(matches!(
            ns.expand("nope", "x"),
            Err(RdfError::UnknownPrefix(_))
        ));
    }

    #[test]
    fn declare_and_expand() {
        let mut ns = Namespaces::new();
        ns.declare("foaf", "http://xmlns.com/foaf/0.1/");
        assert_eq!(
            ns.expand("foaf", "name").unwrap(),
            "http://xmlns.com/foaf/0.1/name"
        );
    }

    #[test]
    fn base_resolution() {
        let mut ns = Namespaces::new();
        ns.set_base("http://example.org/");
        assert_eq!(ns.resolve("thing"), "http://example.org/thing");
        assert_eq!(ns.resolve("http://other.org/x"), "http://other.org/x");
    }

    #[test]
    fn compact_longest_match() {
        let mut ns = Namespaces::new();
        ns.declare("ex", "http://example.org/");
        ns.declare("exsub", "http://example.org/sub/");
        assert_eq!(ns.compact("http://example.org/sub/x").unwrap(), "exsub:x");
        assert_eq!(ns.compact("http://unknown.org/x"), None);
    }
}
