//! RDF terms extended with array values.
//!
//! A term is a URI, a blank node, or a literal; SciSPARQL adds numeric
//! multidimensional arrays as a literal kind ("RDF with Arrays",
//! thesis §1, research question 1). Scalar numeric literals reuse the
//! array crate's [`Num`] so query arithmetic is uniform across scalars
//! and array elements.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use ssdm_array::{Num, NumArray};

/// Errors raised by RDF parsing and term handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// Syntax error with line/column context.
    Parse {
        line: usize,
        col: usize,
        msg: String,
    },
    /// An undeclared prefix was used.
    UnknownPrefix(String),
    /// Malformed literal (bad number, bad escape, ...).
    BadLiteral(String),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            RdfError::UnknownPrefix(p) => write!(f, "unknown prefix '{p}:'"),
            RdfError::BadLiteral(s) => write!(f, "bad literal: {s}"),
        }
    }
}

impl std::error::Error for RdfError {}

/// An RDF term: node or edge label of an RDF-with-Arrays graph.
#[derive(Debug, Clone)]
pub enum Term {
    /// A URI reference (IRI).
    Uri(String),
    /// A blank node with a graph-scoped label.
    Blank(String),
    /// A plain or `xsd:string` literal.
    Str(String),
    /// A language-tagged string literal.
    LangStr { value: String, lang: String },
    /// A numeric literal (`xsd:integer` or `xsd:double`).
    Number(Num),
    /// An `xsd:boolean` literal.
    Bool(bool),
    /// Any other typed literal, kept as lexical form + datatype URI.
    Typed { value: String, datatype: String },
    /// A numeric multidimensional array value (the RDF-with-Arrays
    /// extension). Shared; cloning is O(1).
    Array(NumArray),
    /// A reference to an array stored externally behind the ASEI
    /// (thesis ch. 6): the value is an *array proxy* resolved lazily by
    /// the query processor. The id is the back-end catalog key.
    ArrayRef(u64),
}

impl Term {
    pub fn uri(s: impl Into<String>) -> Term {
        Term::Uri(s.into())
    }

    pub fn blank(s: impl Into<String>) -> Term {
        Term::Blank(s.into())
    }

    pub fn str(s: impl Into<String>) -> Term {
        Term::Str(s.into())
    }

    pub fn integer(i: i64) -> Term {
        Term::Number(Num::Int(i))
    }

    pub fn double(r: f64) -> Term {
        Term::Number(Num::Real(r))
    }

    pub fn is_literal(&self) -> bool {
        !matches!(self, Term::Uri(_) | Term::Blank(_))
    }

    pub fn as_uri(&self) -> Option<&str> {
        match self {
            Term::Uri(u) => Some(u),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<Num> {
        match self {
            Term::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&NumArray> {
        match self {
            Term::Array(a) => Some(a),
            _ => None,
        }
    }

    /// SPARQL Effective Boolean Value where defined.
    pub fn effective_bool(&self) -> Option<bool> {
        match self {
            Term::Bool(b) => Some(*b),
            Term::Number(n) => Some(n.effective_bool()),
            Term::Str(s) => Some(!s.is_empty()),
            Term::LangStr { value, .. } => Some(!value.is_empty()),
            Term::Uri(_) | Term::Typed { .. } => Some(true),
            Term::Blank(_) => Some(true),
            Term::Array(_) | Term::ArrayRef(_) => Some(true),
        }
    }

    /// Value-level equality for joins and `=` filters: numerics compare
    /// across int/real, arrays compare element-wise, other kinds compare
    /// structurally.
    pub fn value_eq(&self, other: &Term) -> bool {
        match (self, other) {
            (Term::Number(a), Term::Number(b)) => a == b,
            (Term::Array(a), Term::Array(b)) => a.array_eq(b),
            _ => self.same_node(other),
        }
    }

    /// Structural identity, used for dictionary interning. Numbers with
    /// different types (2 vs 2.0) are *distinct* nodes even though they
    /// compare value-equal in filters.
    pub fn same_node(&self, other: &Term) -> bool {
        match (self, other) {
            (Term::Uri(a), Term::Uri(b)) => a == b,
            (Term::Blank(a), Term::Blank(b)) => a == b,
            (Term::Str(a), Term::Str(b)) => a == b,
            (Term::LangStr { value: a, lang: la }, Term::LangStr { value: b, lang: lb }) => {
                a == b && la == lb
            }
            (Term::Number(Num::Int(a)), Term::Number(Num::Int(b))) => a == b,
            (Term::Number(Num::Real(a)), Term::Number(Num::Real(b))) => a.to_bits() == b.to_bits(),
            (Term::Bool(a), Term::Bool(b)) => a == b,
            (
                Term::Typed {
                    value: a,
                    datatype: da,
                },
                Term::Typed {
                    value: b,
                    datatype: db,
                },
            ) => a == b && da == db,
            // Arrays are interned by identity (shared buffer + same view),
            // never merged structurally.
            (Term::Array(a), Term::Array(b)) => {
                std::sync::Arc::ptr_eq(a.data(), b.data()) && a.view() == b.view()
            }
            (Term::ArrayRef(a), Term::ArrayRef(b)) => a == b,
            _ => false,
        }
    }

    /// SPARQL ORDER BY comparison: unbound < blank < URI < literal;
    /// numerics by value, strings lexically.
    pub fn order_cmp(&self, other: &Term) -> Ordering {
        fn rank(t: &Term) -> u8 {
            match t {
                Term::Blank(_) => 0,
                Term::Uri(_) => 1,
                Term::Number(_) => 2,
                Term::Str(_) | Term::LangStr { .. } => 3,
                Term::Bool(_) => 4,
                Term::Typed { .. } => 5,
                Term::Array(_) | Term::ArrayRef(_) => 6,
            }
        }
        match (self, other) {
            (Term::Number(a), Term::Number(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Term::Str(a), Term::Str(b)) => a.cmp(b),
            (Term::Uri(a), Term::Uri(b)) => a.cmp(b),
            (Term::Blank(a), Term::Blank(b)) => a.cmp(b),
            (Term::Bool(a), Term::Bool(b)) => a.cmp(b),
            (Term::LangStr { value: a, .. }, Term::LangStr { value: b, .. }) => a.cmp(b),
            (Term::Typed { value: a, .. }, Term::Typed { value: b, .. }) => a.cmp(b),
            (Term::ArrayRef(a), Term::ArrayRef(b)) => a.cmp(b),
            (Term::Array(a), Term::Array(b)) => {
                // Order arrays by shape then elements, to make ORDER BY total.
                a.shape().cmp(&b.shape()).then_with(|| {
                    for (x, y) in a.elements().iter().zip(b.elements()) {
                        match x.partial_cmp(&y) {
                            Some(Ordering::Equal) | None => continue,
                            Some(o) => return o,
                        }
                    }
                    Ordering::Equal
                })
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl PartialEq for Term {
    fn eq(&self, other: &Self) -> bool {
        self.same_node(other)
    }
}

impl Eq for Term {}

impl Hash for Term {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Term::Uri(u) => {
                0u8.hash(state);
                u.hash(state);
            }
            Term::Blank(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Term::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Term::LangStr { value, lang } => {
                3u8.hash(state);
                value.hash(state);
                lang.hash(state);
            }
            Term::Number(Num::Int(i)) => {
                4u8.hash(state);
                i.hash(state);
            }
            Term::Number(Num::Real(r)) => {
                5u8.hash(state);
                r.to_bits().hash(state);
            }
            Term::Bool(b) => {
                6u8.hash(state);
                b.hash(state);
            }
            Term::Typed { value, datatype } => {
                7u8.hash(state);
                value.hash(state);
                datatype.hash(state);
            }
            Term::Array(a) => {
                // Arrays intern by identity; hash the buffer pointer.
                8u8.hash(state);
                (std::sync::Arc::as_ptr(a.data()) as usize).hash(state);
                a.view().offset().hash(state);
            }
            Term::ArrayRef(id) => {
                9u8.hash(state);
                id.hash(state);
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Uri(u) => write!(f, "<{u}>"),
            Term::Blank(b) => write!(f, "_:{b}"),
            Term::Str(s) => write!(f, "\"{}\"", escape_str(s)),
            Term::LangStr { value, lang } => write!(f, "\"{}\"@{lang}", escape_str(value)),
            Term::Number(n) => write!(f, "{n}"),
            Term::Bool(b) => write!(f, "{b}"),
            Term::Typed { value, datatype } => {
                write!(f, "\"{}\"^^<{datatype}>", escape_str(value))
            }
            Term::Array(a) => write!(f, "{a}"),
            Term::ArrayRef(id) => write!(f, "@array:{id}"),
        }
    }
}

/// Escape a string for Turtle/N-Triples output.
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_eq_across_numeric_types() {
        assert!(Term::integer(2).value_eq(&Term::double(2.0)));
        assert!(!Term::integer(2).same_node(&Term::double(2.0)));
    }

    #[test]
    fn array_terms_compare_by_value_in_filters() {
        let a = Term::Array(NumArray::from_i64(vec![1, 2]));
        let b = Term::Array(NumArray::from_f64(vec![1.0, 2.0]));
        assert!(a.value_eq(&b));
        assert!(!a.same_node(&b));
    }

    #[test]
    fn effective_bool() {
        assert_eq!(Term::str("").effective_bool(), Some(false));
        assert_eq!(Term::str("x").effective_bool(), Some(true));
        assert_eq!(Term::integer(0).effective_bool(), Some(false));
        assert_eq!(Term::Bool(true).effective_bool(), Some(true));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::uri("http://x/y").to_string(), "<http://x/y>");
        assert_eq!(Term::blank("b0").to_string(), "_:b0");
        assert_eq!(Term::str("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(Term::integer(5).to_string(), "5");
        assert_eq!(Term::double(5.0).to_string(), "5.0");
        assert_eq!(
            Term::LangStr {
                value: "chat".into(),
                lang: "fr".into()
            }
            .to_string(),
            "\"chat\"@fr"
        );
    }

    #[test]
    fn order_cmp_numeric() {
        assert_eq!(
            Term::integer(1).order_cmp(&Term::double(1.5)),
            Ordering::Less
        );
        assert_eq!(Term::blank("a").order_cmp(&Term::uri("u")), Ordering::Less);
        assert_eq!(Term::uri("u").order_cmp(&Term::integer(0)), Ordering::Less);
    }

    #[test]
    fn nan_real_is_stable_node() {
        let a = Term::double(f64::NAN);
        let b = Term::double(f64::NAN);
        assert!(a.same_node(&b), "same NaN bit pattern interns to one node");
    }
}
