//! Turtle (Terse RDF Triple Language) parsing and serialization.
//!
//! The parser covers the Turtle subset used throughout the thesis:
//! `@prefix`/`@base` (and SPARQL-style `PREFIX`/`BASE`), predicate-object
//! lists with `;` and `,`, the `a` keyword, anonymous and labelled blank
//! nodes, `[ ... ]` property lists, numeric / boolean / string literals
//! (with language tags and `^^` datatypes), and collections `( ... )`.
//!
//! Collections whose leaves are all numeric and whose nesting is
//! rectangular are **consolidated into array values** on import, exactly
//! as SSDM does (thesis §5.3.2): the dataset `:s :p ((1 2) (3 4)) .`
//! produces a single triple whose object is a 2×2 array instead of 13
//! linked-list triples. Non-numeric or ragged collections expand into
//! the standard `rdf:first`/`rdf:rest` linked list. Consolidation can be
//! disabled to measure its effect (experiment E5).

use ssdm_array::{Nested, NumArray};

use crate::dictionary::TermId;
use crate::graph::Graph;
use crate::namespaces::{Namespaces, RDF_FIRST, RDF_NIL, RDF_REST, RDF_TYPE};
use crate::term::{escape_str, RdfError, Term};

/// Parser options.
#[derive(Debug, Clone, Copy)]
pub struct ParseOptions {
    /// Recognize rectangular numeric collections and store them as array
    /// values (SSDM behaviour). When false, collections always expand to
    /// `rdf:first`/`rdf:rest` lists.
    pub consolidate_arrays: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            consolidate_arrays: true,
        }
    }
}

/// Parse a Turtle document into `graph` with default options
/// (array consolidation on). Returns the number of triples added.
pub fn parse_into(graph: &mut Graph, text: &str) -> Result<usize, RdfError> {
    parse_into_with(graph, text, ParseOptions::default())
}

/// Parse with explicit options.
pub fn parse_into_with(
    graph: &mut Graph,
    text: &str,
    options: ParseOptions,
) -> Result<usize, RdfError> {
    let mut parser = Parser::new(text, options);
    parser.parse_document(graph)
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    IriRef(String),
    PName { prefix: String, local: String },
    BlankLabel(String),
    Anon, // []
    StringLit(String),
    LangTag(String),
    Integer(i64),
    Double(f64),
    KwA,
    KwPrefix, // @prefix or PREFIX
    KwBase,   // @base or BASE
    KwTrue,
    KwFalse,
    Dot,
    Semicolon,
    Comma,
    LParen,
    RParen,
    LBracket,
    RBracket,
    DoubleCaret, // ^^
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> RdfError {
        RdfError::Parse {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Result<Tok, RdfError> {
        self.skip_ws();
        let Some(c) = self.peek() else {
            return Ok(Tok::Eof);
        };
        match c {
            b'<' => self.lex_iri(),
            b'_' if self.peek2() == Some(b':') => self.lex_blank(),
            b'"' | b'\'' => self.lex_string(),
            b'@' => self.lex_at(),
            b'.' => {
                // Distinguish statement dot from a leading decimal point.
                if self
                    .src
                    .get(self.pos + 1)
                    .map(|c| c.is_ascii_digit())
                    .unwrap_or(false)
                {
                    self.lex_number()
                } else {
                    self.bump();
                    Ok(Tok::Dot)
                }
            }
            b';' => {
                self.bump();
                Ok(Tok::Semicolon)
            }
            b',' => {
                self.bump();
                Ok(Tok::Comma)
            }
            b'(' => {
                self.bump();
                Ok(Tok::LParen)
            }
            b')' => {
                self.bump();
                Ok(Tok::RParen)
            }
            b'[' => {
                self.bump();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.bump();
                    Ok(Tok::Anon)
                } else {
                    Ok(Tok::LBracket)
                }
            }
            b']' => {
                self.bump();
                Ok(Tok::RBracket)
            }
            b'^' => {
                self.bump();
                if self.peek() == Some(b'^') {
                    self.bump();
                    Ok(Tok::DoubleCaret)
                } else {
                    Err(self.err("expected '^^'"))
                }
            }
            b'+' | b'-' => self.lex_number(),
            c if c.is_ascii_digit() => self.lex_number(),
            _ => self.lex_name(),
        }
    }

    fn lex_iri(&mut self) -> Result<Tok, RdfError> {
        self.bump(); // <
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'>') => return Ok(Tok::IriRef(out)),
                Some(b'\\') => match self.bump() {
                    Some(c) => {
                        out.push('\\');
                        out.push(c as char);
                    }
                    None => return Err(self.err("unterminated IRI")),
                },
                // Re-assemble UTF-8 multibyte sequences (as lex_string).
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    let mut buf = vec![c];
                    while self.peek().map(|b| b & 0xC0 == 0x80).unwrap_or(false) {
                        buf.push(self.bump().unwrap());
                    }
                    out.push_str(
                        std::str::from_utf8(&buf).map_err(|_| self.err("invalid UTF-8 in IRI"))?,
                    );
                }
                None => return Err(self.err("unterminated IRI")),
            }
        }
    }

    fn lex_blank(&mut self) -> Result<Tok, RdfError> {
        self.bump(); // _
        self.bump(); // :
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' {
                // A dot only continues the label if followed by a label char.
                if c == b'.'
                    && !self
                        .src
                        .get(self.pos + 1)
                        .map(|n| n.is_ascii_alphanumeric() || *n == b'_')
                        .unwrap_or(false)
                {
                    break;
                }
                out.push(self.bump().unwrap() as char);
            } else {
                break;
            }
        }
        if out.is_empty() {
            return Err(self.err("empty blank node label"));
        }
        Ok(Tok::BlankLabel(out))
    }

    fn lex_string(&mut self) -> Result<Tok, RdfError> {
        let quote = self.bump().unwrap();
        // Long form """ / '''
        let long = self.peek() == Some(quote) && self.peek2() == Some(quote);
        if long {
            self.bump();
            self.bump();
        }
        let mut out = String::new();
        loop {
            let Some(c) = self.bump() else {
                return Err(self.err("unterminated string"));
            };
            if c == quote {
                if !long {
                    break;
                }
                if self.peek() == Some(quote) && self.peek2() == Some(quote) {
                    self.bump();
                    self.bump();
                    break;
                }
                out.push(quote as char);
                continue;
            }
            if c == b'\\' {
                let Some(e) = self.bump() else {
                    return Err(self.err("unterminated escape"));
                };
                match e {
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'"' => out.push('"'),
                    b'\'' => out.push('\''),
                    b'\\' => out.push('\\'),
                    b'u' | b'U' => {
                        let n = if e == b'u' { 4 } else { 8 };
                        let mut v: u32 = 0;
                        for _ in 0..n {
                            let Some(h) = self.bump() else {
                                return Err(self.err("unterminated \\u escape"));
                            };
                            v = v * 16
                                + (h as char)
                                    .to_digit(16)
                                    .ok_or_else(|| self.err("bad hex digit"))?;
                        }
                        out.push(char::from_u32(v).ok_or_else(|| self.err("bad code point"))?);
                    }
                    other => return Err(self.err(format!("bad escape '\\{}'", other as char))),
                }
                continue;
            }
            // Re-assemble UTF-8 multibyte sequences.
            if c < 0x80 {
                out.push(c as char);
            } else {
                let mut buf = vec![c];
                while self.peek().map(|b| b & 0xC0 == 0x80).unwrap_or(false) {
                    buf.push(self.bump().unwrap());
                }
                out.push_str(std::str::from_utf8(&buf).map_err(|_| self.err("invalid UTF-8"))?);
            }
        }
        Ok(Tok::StringLit(out))
    }

    fn lex_at(&mut self) -> Result<Tok, RdfError> {
        self.bump(); // @
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'-' {
                word.push(self.bump().unwrap() as char);
            } else {
                break;
            }
        }
        match word.as_str() {
            "prefix" => Ok(Tok::KwPrefix),
            "base" => Ok(Tok::KwBase),
            _ if !word.is_empty() => Ok(Tok::LangTag(word)),
            _ => Err(self.err("empty @ directive")),
        }
    }

    fn lex_number(&mut self) -> Result<Tok, RdfError> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
            self.bump();
        }
        let mut is_real = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.bump();
            } else if c == b'.'
                && self
                    .src
                    .get(self.pos + 1)
                    .map(|n| n.is_ascii_digit())
                    .unwrap_or(false)
            {
                is_real = true;
                self.bump();
            } else if c == b'e' || c == b'E' {
                is_real = true;
                self.bump();
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_real {
            text.parse::<f64>()
                .map(Tok::Double)
                .map_err(|_| self.err(format!("bad number '{text}'")))
        } else {
            text.parse::<i64>()
                .map(Tok::Integer)
                .map_err(|_| self.err(format!("bad number '{text}'")))
        }
    }

    // The duplicate-looking branches below differ in their guards,
    // which encode Turtle's dot-in-name rules; keep them explicit.
    #[allow(clippy::if_same_then_else)]
    fn lex_name(&mut self) -> Result<Tok, RdfError> {
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'%' {
                word.push(self.bump().unwrap() as char);
            } else if c == b'.'
                && self
                    .src
                    .get(self.pos + 1)
                    .map(|n| n.is_ascii_alphanumeric() || *n == b'_')
                    .unwrap_or(false)
                && word.contains(':')
            {
                word.push(self.bump().unwrap() as char);
            } else {
                break;
            }
        }
        if self.peek() == Some(b':') {
            self.bump();
            let prefix = word;
            let mut local = String::new();
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'%' {
                    local.push(self.bump().unwrap() as char);
                } else if c == b'.'
                    && self
                        .src
                        .get(self.pos + 1)
                        .map(|n| n.is_ascii_alphanumeric() || *n == b'_')
                        .unwrap_or(false)
                {
                    local.push(self.bump().unwrap() as char);
                } else {
                    break;
                }
            }
            return Ok(Tok::PName { prefix, local });
        }
        match word.as_str() {
            "a" => Ok(Tok::KwA),
            "true" => Ok(Tok::KwTrue),
            "false" => Ok(Tok::KwFalse),
            "PREFIX" | "prefix" => Ok(Tok::KwPrefix),
            "BASE" | "base" => Ok(Tok::KwBase),
            "" => Err(self.err(format!(
                "unexpected character '{}'",
                self.peek().map(|c| c as char).unwrap_or('?')
            ))),
            other => Err(self.err(format!("unexpected token '{other}'"))),
        }
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// A parsed object before triples are emitted: either a complete term or
/// a collection that may consolidate to an array.
enum Node {
    Term(Term),
    Collection(Vec<Node>),
    /// `[ po-list ]`: a fresh blank node with its own triples (already
    /// emitted); carries the node id.
    BlankWithProps(TermId),
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    ns: Namespaces,
    options: ParseOptions,
    blank_counter: usize,
    added: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str, options: ParseOptions) -> Self {
        Parser {
            lexer: Lexer::new(text),
            tok: Tok::Eof,
            ns: Namespaces::new(),
            options,
            blank_counter: 0,
            added: 0,
        }
    }

    fn advance(&mut self) -> Result<(), RdfError> {
        self.tok = self.lexer.next_token()?;
        Ok(())
    }

    fn err(&self, msg: impl Into<String>) -> RdfError {
        self.lexer.err(msg)
    }

    fn expect(&mut self, tok: Tok) -> Result<(), RdfError> {
        if self.tok == tok {
            self.advance()
        } else {
            Err(self.err(format!("expected {tok:?}, found {:?}", self.tok)))
        }
    }

    fn fresh_blank(&mut self, graph: &mut Graph) -> TermId {
        loop {
            let label = format!("tb{}", self.blank_counter);
            self.blank_counter += 1;
            let t = Term::blank(label);
            if graph.dictionary().lookup(&t).is_none() {
                return graph.intern(t);
            }
        }
    }

    fn parse_document(&mut self, graph: &mut Graph) -> Result<usize, RdfError> {
        self.advance()?;
        loop {
            match &self.tok {
                Tok::Eof => break,
                Tok::KwPrefix => {
                    self.advance()?;
                    let Tok::PName { prefix, local } = self.tok.clone() else {
                        return Err(self.err("expected prefix name"));
                    };
                    if !local.is_empty() {
                        return Err(self.err("prefix declaration must end with ':'"));
                    }
                    self.advance()?;
                    let Tok::IriRef(uri) = self.tok.clone() else {
                        return Err(self.err("expected IRI in prefix declaration"));
                    };
                    self.advance()?;
                    self.ns.declare(prefix, self.ns.resolve(&uri));
                    // The trailing '.' is required for @prefix, optional
                    // for SPARQL-style PREFIX.
                    if self.tok == Tok::Dot {
                        self.advance()?;
                    }
                }
                Tok::KwBase => {
                    self.advance()?;
                    let Tok::IriRef(uri) = self.tok.clone() else {
                        return Err(self.err("expected IRI in base declaration"));
                    };
                    self.advance()?;
                    self.ns.set_base(uri);
                    if self.tok == Tok::Dot {
                        self.advance()?;
                    }
                }
                _ => {
                    self.parse_statement(graph)?;
                }
            }
        }
        Ok(self.added)
    }

    fn parse_statement(&mut self, graph: &mut Graph) -> Result<(), RdfError> {
        let subject = self.parse_subject(graph)?;
        self.parse_predicate_object_list(graph, subject)?;
        self.expect(Tok::Dot)
    }

    fn parse_subject(&mut self, graph: &mut Graph) -> Result<TermId, RdfError> {
        match self.tok.clone() {
            Tok::IriRef(u) => {
                self.advance()?;
                Ok(graph.intern(Term::uri(self.ns.resolve(&u))))
            }
            Tok::PName { prefix, local } => {
                self.advance()?;
                Ok(graph.intern(Term::uri(self.ns.expand(&prefix, &local)?)))
            }
            Tok::KwA => Err(self.err("'a' cannot be a subject")),
            Tok::BlankLabel(b) => {
                self.advance()?;
                Ok(graph.intern(Term::blank(b)))
            }
            Tok::Anon => {
                self.advance()?;
                Ok(self.fresh_blank(graph))
            }
            Tok::LBracket => {
                self.advance()?;
                let node = self.fresh_blank(graph);
                self.parse_predicate_object_list(graph, node)?;
                self.expect(Tok::RBracket)?;
                Ok(node)
            }
            Tok::LParen => {
                // A collection as subject always expands to a list.
                self.advance()?;
                let nodes = self.parse_collection_nodes(graph)?;
                self.emit_list(graph, nodes)
            }
            other => Err(self.err(format!("bad subject: {other:?}"))),
        }
    }

    fn parse_predicate_object_list(
        &mut self,
        graph: &mut Graph,
        subject: TermId,
    ) -> Result<(), RdfError> {
        loop {
            let predicate = match self.tok.clone() {
                Tok::KwA => {
                    self.advance()?;
                    graph.intern(Term::uri(RDF_TYPE))
                }
                Tok::IriRef(u) => {
                    self.advance()?;
                    graph.intern(Term::uri(self.ns.resolve(&u)))
                }
                Tok::PName { prefix, local } => {
                    self.advance()?;
                    graph.intern(Term::uri(self.ns.expand(&prefix, &local)?))
                }
                other => return Err(self.err(format!("bad predicate: {other:?}"))),
            };
            loop {
                let node = self.parse_object(graph)?;
                let object = self.node_to_object(graph, node)?;
                if graph.insert_ids(subject, predicate, object) {
                    self.added += 1;
                }
                if self.tok == Tok::Comma {
                    self.advance()?;
                    continue;
                }
                break;
            }
            if self.tok == Tok::Semicolon {
                self.advance()?;
                // Trailing semicolon before '.' or ']' is legal.
                if matches!(self.tok, Tok::Dot | Tok::RBracket) {
                    break;
                }
                continue;
            }
            break;
        }
        Ok(())
    }

    fn parse_object(&mut self, graph: &mut Graph) -> Result<Node, RdfError> {
        match self.tok.clone() {
            Tok::IriRef(u) => {
                self.advance()?;
                Ok(Node::Term(Term::uri(self.ns.resolve(&u))))
            }
            Tok::PName { prefix, local } => {
                self.advance()?;
                Ok(Node::Term(Term::uri(self.ns.expand(&prefix, &local)?)))
            }
            Tok::BlankLabel(b) => {
                self.advance()?;
                Ok(Node::Term(Term::blank(b)))
            }
            Tok::Anon => {
                self.advance()?;
                Ok(Node::BlankWithProps(self.fresh_blank(graph)))
            }
            Tok::Integer(i) => {
                self.advance()?;
                Ok(Node::Term(Term::integer(i)))
            }
            Tok::Double(d) => {
                self.advance()?;
                Ok(Node::Term(Term::double(d)))
            }
            Tok::KwTrue => {
                self.advance()?;
                Ok(Node::Term(Term::Bool(true)))
            }
            Tok::KwFalse => {
                self.advance()?;
                Ok(Node::Term(Term::Bool(false)))
            }
            Tok::StringLit(s) => {
                self.advance()?;
                match self.tok.clone() {
                    Tok::LangTag(lang) => {
                        self.advance()?;
                        Ok(Node::Term(Term::LangStr { value: s, lang }))
                    }
                    Tok::DoubleCaret => {
                        self.advance()?;
                        let dt = match self.tok.clone() {
                            Tok::IriRef(u) => {
                                self.advance()?;
                                self.ns.resolve(&u)
                            }
                            Tok::PName { prefix, local } => {
                                self.advance()?;
                                self.ns.expand(&prefix, &local)?
                            }
                            other => return Err(self.err(format!("bad datatype: {other:?}"))),
                        };
                        Ok(Node::Term(typed_literal(s, dt)?))
                    }
                    _ => Ok(Node::Term(Term::Str(s))),
                }
            }
            Tok::LBracket => {
                self.advance()?;
                let node = self.fresh_blank(graph);
                self.parse_predicate_object_list(graph, node)?;
                self.expect(Tok::RBracket)?;
                Ok(Node::BlankWithProps(node))
            }
            Tok::LParen => {
                self.advance()?;
                let nodes = self.parse_collection_nodes(graph)?;
                Ok(Node::Collection(nodes))
            }
            other => Err(self.err(format!("bad object: {other:?}"))),
        }
    }

    fn parse_collection_nodes(&mut self, graph: &mut Graph) -> Result<Vec<Node>, RdfError> {
        let mut nodes = Vec::new();
        while self.tok != Tok::RParen {
            if self.tok == Tok::Eof {
                return Err(self.err("unterminated collection"));
            }
            nodes.push(self.parse_object(graph)?);
        }
        self.advance()?; // )
        Ok(nodes)
    }

    /// Turn a parsed object node into an interned object id, emitting
    /// auxiliary triples (lists) as needed and consolidating numeric
    /// collections into arrays when enabled.
    fn node_to_object(&mut self, graph: &mut Graph, node: Node) -> Result<TermId, RdfError> {
        match node {
            Node::Term(t) => Ok(graph.intern(t)),
            Node::BlankWithProps(id) => Ok(id),
            Node::Collection(nodes) => {
                if self.options.consolidate_arrays {
                    if let Some(nested) = collection_to_nested(&nodes) {
                        if let Ok(arr) = NumArray::from_nested(&nested) {
                            return Ok(graph.intern(Term::Array(arr)));
                        }
                    }
                }
                self.emit_list(graph, nodes)
            }
        }
    }

    /// Expand a collection into rdf:first / rdf:rest triples; returns the
    /// head node (or rdf:nil for the empty collection).
    fn emit_list(&mut self, graph: &mut Graph, nodes: Vec<Node>) -> Result<TermId, RdfError> {
        let nil = graph.intern(Term::uri(RDF_NIL));
        if nodes.is_empty() {
            return Ok(nil);
        }
        let first = graph.intern(Term::uri(RDF_FIRST));
        let rest = graph.intern(Term::uri(RDF_REST));
        let mut cells: Vec<TermId> = Vec::with_capacity(nodes.len());
        for _ in 0..nodes.len() {
            cells.push(self.fresh_blank(graph));
        }
        for (i, node) in nodes.into_iter().enumerate() {
            let value = self.node_to_object(graph, node)?;
            if graph.insert_ids(cells[i], first, value) {
                self.added += 1;
            }
            let next = cells.get(i + 1).copied().unwrap_or(nil);
            if graph.insert_ids(cells[i], rest, next) {
                self.added += 1;
            }
        }
        Ok(cells[0])
    }
}

/// Recognize a purely numeric (nested) collection.
fn collection_to_nested(nodes: &[Node]) -> Option<Nested> {
    if nodes.is_empty() {
        return None;
    }
    let mut rows = Vec::with_capacity(nodes.len());
    for n in nodes {
        match n {
            Node::Term(Term::Number(v)) => rows.push(Nested::Leaf(*v)),
            Node::Collection(inner) => rows.push(collection_to_nested(inner)?),
            _ => return None,
        }
    }
    Some(Nested::Row(rows))
}

/// Interpret a `"..."^^<datatype>` literal, mapping the numeric XSD
/// types onto native numbers.
fn typed_literal(value: String, datatype: String) -> Result<Term, RdfError> {
    match datatype.as_str() {
        "http://www.w3.org/2001/XMLSchema#integer"
        | "http://www.w3.org/2001/XMLSchema#int"
        | "http://www.w3.org/2001/XMLSchema#long" => value
            .parse::<i64>()
            .map(Term::integer)
            .map_err(|_| RdfError::BadLiteral(value)),
        "http://www.w3.org/2001/XMLSchema#double"
        | "http://www.w3.org/2001/XMLSchema#float"
        | "http://www.w3.org/2001/XMLSchema#decimal" => value
            .parse::<f64>()
            .map(Term::double)
            .map_err(|_| RdfError::BadLiteral(value)),
        "http://www.w3.org/2001/XMLSchema#boolean" => match value.as_str() {
            "true" | "1" => Ok(Term::Bool(true)),
            "false" | "0" => Ok(Term::Bool(false)),
            _ => Err(RdfError::BadLiteral(value)),
        },
        "http://www.w3.org/2001/XMLSchema#string" => Ok(Term::Str(value)),
        _ => Ok(Term::Typed { value, datatype }),
    }
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

/// Serialize a graph as Turtle, grouping triples by subject and writing
/// array values in collection notation.
pub fn serialize(graph: &Graph, ns: &Namespaces) -> String {
    let mut out = String::new();
    let mut prefixes: Vec<(&String, &String)> = ns.iter().collect();
    prefixes.sort();
    for (p, uri) in prefixes {
        out.push_str(&format!("@prefix {p}: <{uri}> .\n"));
    }
    out.push('\n');
    let mut last_subject: Option<TermId> = None;
    for t in graph.iter() {
        if last_subject == Some(t.s) {
            out.push_str(" ;\n    ");
        } else {
            if last_subject.is_some() {
                out.push_str(" .\n");
            }
            out.push_str(&term_text(graph.term(t.s), ns));
            out.push(' ');
        }
        out.push_str(&term_text(graph.term(t.p), ns));
        out.push(' ');
        out.push_str(&term_text(graph.term(t.o), ns));
        last_subject = Some(t.s);
    }
    if last_subject.is_some() {
        out.push_str(" .\n");
    }
    out
}

/// Render one term in Turtle syntax.
pub fn term_text(term: &Term, ns: &Namespaces) -> String {
    match term {
        Term::Uri(u) => {
            if u == RDF_TYPE {
                "a".to_string()
            } else {
                ns.compact(u).unwrap_or_else(|| format!("<{u}>"))
            }
        }
        Term::Typed { value, datatype } => {
            let dt = ns
                .compact(datatype)
                .unwrap_or_else(|| format!("<{datatype}>"));
            format!("\"{}\"^^{dt}", escape_str(value))
        }
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdm_array::Num;

    fn parse(text: &str) -> Graph {
        let mut g = Graph::new();
        parse_into(&mut g, text).unwrap();
        g
    }

    #[test]
    fn simple_triples() {
        let g = parse(
            r#"@prefix foaf: <http://xmlns.com/foaf/0.1/> .
               _:a foaf:name "Alice" ; foaf:knows _:b , _:d .
               _:b foaf:name "Bob" ."#,
        );
        assert_eq!(g.len(), 4);
        let knows = g
            .dictionary()
            .lookup(&Term::uri("http://xmlns.com/foaf/0.1/knows"))
            .unwrap();
        assert_eq!(g.match_pattern(None, Some(knows), None).count(), 2);
    }

    #[test]
    fn a_keyword_is_rdf_type() {
        let g = parse("_:x a <http://example.org/Person> .");
        let ty = g.dictionary().lookup(&Term::uri(RDF_TYPE)).unwrap();
        assert_eq!(g.match_pattern(None, Some(ty), None).count(), 1);
    }

    #[test]
    fn numeric_literals() {
        let g = parse("<http://s> <http://p> 42 , -7 , 3.5 , 1e3 .");
        let p = g.dictionary().lookup(&Term::uri("http://p")).unwrap();
        let objects: Vec<Term> = g
            .match_pattern(None, Some(p), None)
            .map(|t| g.term(t.o).clone())
            .collect();
        assert!(objects.contains(&Term::integer(42)));
        assert!(objects.contains(&Term::integer(-7)));
        assert!(objects.contains(&Term::double(3.5)));
        assert!(objects.contains(&Term::double(1000.0)));
    }

    #[test]
    fn string_escapes_and_lang() {
        let g = parse(r#"<http://s> <http://p> "a\nb" , "chat"@fr , """long "quoted" text""" ."#);
        let p = g.dictionary().lookup(&Term::uri("http://p")).unwrap();
        let objects: Vec<Term> = g
            .match_pattern(None, Some(p), None)
            .map(|t| g.term(t.o).clone())
            .collect();
        assert!(objects.contains(&Term::str("a\nb")));
        assert!(objects.contains(&Term::LangStr {
            value: "chat".into(),
            lang: "fr".into()
        }));
        assert!(objects.contains(&Term::str("long \"quoted\" text")));
    }

    #[test]
    fn typed_literals_normalize_numerics() {
        let g = parse(
            r#"@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
               <http://s> <http://p> "5"^^xsd:integer , "2.5"^^xsd:double , "x"^^<http://dt> ."#,
        );
        let p = g.dictionary().lookup(&Term::uri("http://p")).unwrap();
        let objects: Vec<Term> = g
            .match_pattern(None, Some(p), None)
            .map(|t| g.term(t.o).clone())
            .collect();
        assert!(objects.contains(&Term::integer(5)));
        assert!(objects.contains(&Term::double(2.5)));
        assert!(objects.contains(&Term::Typed {
            value: "x".into(),
            datatype: "http://dt".into()
        }));
    }

    #[test]
    fn collection_consolidates_to_array() {
        // The thesis example: :s :p ((1 2) (3 4)) becomes ONE triple
        // with a 2x2 array value instead of 13 list triples (§2.3.5.1).
        let g = parse("<http://s> <http://p> ((1 2) (3 4)) .");
        assert_eq!(g.len(), 1);
        let t = g.iter().next().unwrap();
        let arr = g.term(t.o).as_array().unwrap();
        assert_eq!(arr.shape(), vec![2, 2]);
        assert_eq!(arr.get(&[1, 0]).unwrap().as_i64(), 3);
    }

    #[test]
    fn collection_without_consolidation_expands() {
        let mut g = Graph::new();
        parse_into_with(
            &mut g,
            "<http://s> <http://p> ((1 2) (3 4)) .",
            ParseOptions {
                consolidate_arrays: false,
            },
        )
        .unwrap();
        // 1 root triple + 2 outer cells * 2 + 4 inner cells * 2 = 13.
        assert_eq!(g.len(), 13);
    }

    #[test]
    fn ragged_collection_falls_back_to_list() {
        let g = parse("<http://s> <http://p> ((1) (2 3)) .");
        assert!(g.len() > 1, "ragged nesting cannot consolidate");
    }

    #[test]
    fn mixed_collection_falls_back_to_list() {
        let g = parse(r#"<http://s> <http://p> (1 "two" 3) ."#);
        assert!(g.len() > 1);
        let first = g.dictionary().lookup(&Term::uri(RDF_FIRST)).unwrap();
        assert_eq!(g.match_pattern(None, Some(first), None).count(), 3);
    }

    #[test]
    fn empty_collection_is_nil() {
        let g = parse("<http://s> <http://p> () .");
        assert_eq!(g.len(), 1);
        let t = g.iter().next().unwrap();
        assert_eq!(g.term(t.o), &Term::uri(RDF_NIL));
    }

    #[test]
    fn bracketed_blank_nodes() {
        let g = parse(
            r#"@prefix foaf: <http://xmlns.com/foaf/0.1/> .
               [] foaf:name "Alice" ;
                  foaf:knows [ foaf:name "Bob" ] ."#,
        );
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn base_resolution() {
        let g = parse("@base <http://example.org/> . <s> <p> <o> .");
        assert!(g
            .dictionary()
            .lookup(&Term::uri("http://example.org/s"))
            .is_some());
    }

    #[test]
    fn sparql_style_prefix() {
        let g = parse("PREFIX ex: <http://example.org/>\nex:s ex:p ex:o .");
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn comments_ignored() {
        let g = parse("# a comment\n<http://s> <http://p> 1 . # trailing\n");
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn parse_error_reports_position() {
        let mut g = Graph::new();
        let err = parse_into(&mut g, "<http://s> <http://p> .").unwrap_err();
        match err {
            RdfError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_prefix_errors() {
        let mut g = Graph::new();
        assert!(matches!(
            parse_into(&mut g, "nope:s <http://p> 1 ."),
            Err(RdfError::UnknownPrefix(_))
        ));
    }

    #[test]
    fn serialize_round_trip() {
        let src = r#"@prefix ex: <http://example.org/> .
            ex:s ex:p 1 , 2.5 , "text" ; ex:q ex:o .
            ex:t ex:p (1 2 3) ."#;
        let g = parse(src);
        let mut ns = Namespaces::new();
        ns.declare("ex", "http://example.org/");
        let text = serialize(&g, &ns);
        let g2 = parse(&text);
        assert_eq!(g2.len(), g.len());
        // Every triple of g appears in g2 (term-wise).
        for t in g.iter() {
            let s = g.term(t.s);
            let p = g.term(t.p);
            let o = g.term(t.o);
            let found = g2.iter().any(|u| {
                g2.term(u.s).value_eq(s) && g2.term(u.p).value_eq(p) && g2.term(u.o).value_eq(o)
            });
            assert!(found, "missing triple {s} {p} {o}");
        }
    }

    #[test]
    fn nested_array_3d() {
        let g = parse("<http://s> <http://p> (((1 2)(3 4))((5 6)(7 8))) .");
        assert_eq!(g.len(), 1);
        let t = g.iter().next().unwrap();
        let arr = g.term(t.o).as_array().unwrap();
        assert_eq!(arr.shape(), vec![2, 2, 2]);
        assert_eq!(arr.get(&[1, 1, 1]).unwrap().as_i64(), 8);
    }

    #[test]
    fn real_array_promotes() {
        let g = parse("<http://s> <http://p> (1 2.5 3) .");
        let t = g.iter().next().unwrap();
        let arr = g.term(t.o).as_array().unwrap();
        assert_eq!(arr.get(&[1]).unwrap(), Num::Real(2.5));
        assert_eq!(arr.get(&[0]).unwrap(), Num::Real(1.0));
    }

    #[test]
    fn iri_with_multibyte_utf8_round_trips() {
        // Multi-byte sequences inside an IRIREF must be reassembled,
        // not widened byte-by-byte into mojibake.
        let iri = "http://ex.org/éλ日ф%20";
        let g = parse(&format!("<{iri}> <http://p> 1 ."));
        let t = g.iter().next().unwrap();
        assert_eq!(g.term(t.s), &Term::uri(iri));
    }
}
