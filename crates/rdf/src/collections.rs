//! Consolidation of RDF collections into array values.
//!
//! When SSDM imports an RDF graph, linked lists built from `rdf:first` /
//! `rdf:rest` whose leaves are all numeric and whose nesting is
//! rectangular are *consolidated*: the list triples are removed and the
//! referring triple's object becomes a single array value (thesis
//! §5.3.2). This turns the 13-triple graph of a 2×2 matrix (Fig. 4)
//! into one triple, shrinking the graph and making the data reachable by
//! array operations.

use std::collections::HashSet;

use ssdm_array::{Nested, NumArray};

use crate::dictionary::TermId;
use crate::graph::{Graph, Triple};
use crate::namespaces::{RDF_FIRST, RDF_NIL, RDF_REST};
use crate::term::Term;

/// Statistics of one consolidation pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ConsolidationReport {
    /// Arrays created.
    pub arrays: usize,
    /// List triples removed.
    pub removed_triples: usize,
}

/// Find every numeric rectangular collection reachable as the object of
/// a non-list triple and replace it with an array value. Returns what
/// was rewritten.
pub fn consolidate_collections(graph: &mut Graph) -> ConsolidationReport {
    let Some(first) = graph.dictionary().lookup(&Term::uri(RDF_FIRST)) else {
        return ConsolidationReport::default();
    };
    let Some(rest) = graph.dictionary().lookup(&Term::uri(RDF_REST)) else {
        return ConsolidationReport::default();
    };
    let nil = graph.dictionary().lookup(&Term::uri(RDF_NIL));

    // Candidate heads: objects of triples whose predicate is not
    // rdf:first/rdf:rest but which carry rdf:first themselves.
    let mut referring: Vec<Triple> = Vec::new();
    for t in graph.iter() {
        if t.p == first || t.p == rest {
            continue;
        }
        if graph.match_pattern(Some(t.o), Some(first), None).count() == 1 {
            referring.push(t);
        }
    }

    let mut report = ConsolidationReport::default();
    for t in referring {
        let mut cells: HashSet<TermId> = HashSet::new();
        let Some(nested) = read_list(graph, t.o, first, rest, nil, &mut cells, 0) else {
            continue;
        };
        let Ok(array) = NumArray::from_nested(&nested) else {
            continue;
        };
        // Cells may only be removed if no triple outside the list
        // structure references them (officially, blank list cells are
        // not addressable between queries — §2.3.5.1 — but be safe).
        let externally_referenced = graph.iter().any(|u| {
            (cells.contains(&u.o) && !cells.contains(&u.s) && (u.s, u.p, u.o) != (t.s, t.p, t.o))
                || (cells.contains(&u.s) && u.p != first && u.p != rest)
        });
        if externally_referenced {
            continue;
        }
        // Remove the list triples.
        let doomed: Vec<Triple> = graph
            .iter()
            .filter(|u| cells.contains(&u.s) && (u.p == first || u.p == rest))
            .collect();
        for d in &doomed {
            graph.remove_ids(d.s, d.p, d.o);
        }
        report.removed_triples += doomed.len();
        // Rewrite the referring triple.
        graph.remove_ids(t.s, t.p, t.o);
        let arr_id = graph.intern(Term::Array(array));
        graph.insert_ids(t.s, t.p, arr_id);
        report.arrays += 1;
    }
    report
}

/// Walk an rdf list, accumulating nested numeric rows. Returns `None`
/// when the structure is not a pure numeric collection. `depth` guards
/// against cyclic lists.
fn read_list(
    graph: &Graph,
    head: TermId,
    first: TermId,
    rest: TermId,
    nil: Option<TermId>,
    cells: &mut HashSet<TermId>,
    depth: usize,
) -> Option<Nested> {
    if depth > 64 {
        return None;
    }
    let mut rows: Vec<Nested> = Vec::new();
    let mut cur = head;
    loop {
        if Some(cur) == nil {
            break;
        }
        if !cells.insert(cur) {
            return None; // cycle
        }
        let mut firsts = graph.match_pattern(Some(cur), Some(first), None);
        let value = firsts.next()?.o;
        if firsts.next().is_some() {
            return None; // malformed: two rdf:first
        }
        match graph.term(value) {
            Term::Number(n) => rows.push(Nested::Leaf(*n)),
            Term::Blank(_) if graph.match_pattern(Some(value), Some(first), None).count() == 1 => {
                rows.push(read_list(graph, value, first, rest, nil, cells, depth + 1)?)
            }
            _ => return None,
        }
        let mut rests = graph.match_pattern(Some(cur), Some(rest), None);
        let next = rests.next()?.o;
        if rests.next().is_some() {
            return None;
        }
        cur = next;
    }
    if rows.is_empty() {
        return None;
    }
    Some(Nested::Row(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turtle::{self, ParseOptions};

    fn load_expanded(text: &str) -> Graph {
        let mut g = Graph::new();
        turtle::parse_into_with(
            &mut g,
            text,
            ParseOptions {
                consolidate_arrays: false,
            },
        )
        .unwrap();
        g
    }

    #[test]
    fn consolidates_matrix() {
        let mut g = load_expanded("<http://s> <http://p> ((1 2) (3 4)) .");
        assert_eq!(g.len(), 13);
        let rep = consolidate_collections(&mut g);
        assert_eq!(rep.arrays, 1);
        assert_eq!(rep.removed_triples, 12);
        assert_eq!(g.len(), 1);
        let t = g.iter().next().unwrap();
        let arr = g.term(t.o).as_array().unwrap();
        assert_eq!(arr.shape(), vec![2, 2]);
        assert_eq!(arr.get(&[0, 1]).unwrap().as_i64(), 2);
    }

    #[test]
    fn mixed_list_untouched() {
        let mut g = load_expanded(r#"<http://s> <http://p> (1 "two") ."#);
        let before = g.len();
        let rep = consolidate_collections(&mut g);
        assert_eq!(rep.arrays, 0);
        assert_eq!(g.len(), before);
    }

    #[test]
    fn ragged_list_untouched() {
        let mut g = load_expanded("<http://s> <http://p> ((1) (2 3)) .");
        let before = g.len();
        let rep = consolidate_collections(&mut g);
        assert_eq!(rep.arrays, 0);
        assert_eq!(g.len(), before);
    }

    #[test]
    fn multiple_collections() {
        let mut g = load_expanded(
            "<http://s> <http://p> (1 2 3) .
             <http://s> <http://q> (4.5 5.5) .",
        );
        let rep = consolidate_collections(&mut g);
        assert_eq!(rep.arrays, 2);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn shared_cell_not_consolidated() {
        // A second triple points into the middle of the list; removal
        // would lose information, so the list must survive.
        let mut g = load_expanded("<http://s> <http://p> (1 2 3) .");
        // Find a middle cell and reference it.
        let first = g.dictionary().lookup(&Term::uri(RDF_FIRST)).unwrap();
        let two = g.dictionary().lookup(&Term::integer(2)).unwrap();
        let cell = g
            .match_pattern(None, Some(first), Some(two))
            .next()
            .unwrap()
            .s;
        let marker = g.intern(Term::uri("http://marks"));
        let who = g.intern(Term::uri("http://someone"));
        g.insert_ids(who, marker, cell);
        let before = g.len();
        let rep = consolidate_collections(&mut g);
        assert_eq!(rep.arrays, 0);
        assert_eq!(g.len(), before);
    }

    #[test]
    fn idempotent() {
        let mut g = load_expanded("<http://s> <http://p> (1 2) .");
        consolidate_collections(&mut g);
        let rep2 = consolidate_collections(&mut g);
        assert_eq!(rep2, ConsolidationReport::default());
    }
}
