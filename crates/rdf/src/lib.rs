//! *RDF with Arrays*: the data model of Scientific SPARQL.
//!
//! This crate implements the RDF graph model extended with numeric
//! multidimensional arrays as node values (thesis ch. 5): terms
//! ([`Term`]), an interning dictionary ([`Dictionary`]), an indexed
//! in-memory triple store with per-predicate statistics ([`Graph`]),
//! namespace handling, and Turtle / N-Triples parsing and serialization
//! including the condensed collection syntax `((1 2) (3 4))` that SSDM
//! consolidates into array values.
//!
//! # Example
//!
//! ```
//! use ssdm_rdf::{Graph, Term, turtle};
//!
//! let mut g = Graph::new();
//! turtle::parse_into(
//!     &mut g,
//!     r#"@prefix foaf: <http://xmlns.com/foaf/0.1/> .
//!        _:a foaf:name "Alice" ; foaf:knows _:b .
//!        _:b foaf:name "Bob" ."#,
//! ).unwrap();
//! assert_eq!(g.len(), 3);
//! let name = g.dictionary().lookup(&Term::uri("http://xmlns.com/foaf/0.1/name")).unwrap();
//! assert_eq!(g.match_pattern(None, Some(name), None).count(), 2);
//! ```

pub mod collections;
mod dictionary;
mod graph;
mod namespaces;
pub mod ntriples;
pub mod stats;
mod term;
pub mod turtle;

pub use collections::{consolidate_collections, ConsolidationReport};
pub use dictionary::{Dictionary, TermId};
pub use graph::{Graph, GraphStats, PredicateStats, Triple};
pub use namespaces::{Namespaces, RDF_FIRST, RDF_NIL, RDF_REST, RDF_TYPE, XSD_DOUBLE, XSD_INTEGER};
pub use stats::{DistinctSketch, NumericHistogram, ObjectStats};
pub use term::{RdfError, Term};
