//! N-Triples serialization (one fully-qualified triple per line).
//!
//! N-Triples has no collection or array syntax, so array values are
//! expanded back into `rdf:first`/`rdf:rest` linked lists on output —
//! the inverse of the import-time consolidation (thesis §5.3.2). This
//! keeps SSDM exports consumable by any standard RDF tool, and the
//! expand → parse → consolidate round trip is exercised in tests.

use ssdm_array::NumArray;

use crate::graph::Graph;
use crate::namespaces::{RDF_FIRST, RDF_NIL, RDF_REST};
use crate::term::{escape_str, Term};

/// Serialize a graph as N-Triples text. Arrays expand to linked lists
/// with generated blank nodes.
pub fn serialize(graph: &Graph) -> String {
    let mut out = String::new();
    let mut gen = 0usize;
    for t in graph.iter() {
        let s = term_text(graph.term(t.s));
        let p = term_text(graph.term(t.p));
        match graph.term(t.o) {
            Term::Array(a) => {
                let head = expand_array(a, &mut out, &mut gen);
                out.push_str(&format!("{s} {p} {head} .\n"));
            }
            o => {
                out.push_str(&format!("{s} {p} {} .\n", term_text(o)));
            }
        }
    }
    out
}

/// Emit the linked-list triples for (a slice of) an array; returns the
/// head node's text.
fn expand_array(a: &NumArray, out: &mut String, gen: &mut usize) -> String {
    let size = if a.ndims() == 0 { 1 } else { a.shape()[0] };
    if size == 0 {
        return format!("<{RDF_NIL}>");
    }
    let cells: Vec<String> = (0..size)
        .map(|_| {
            let c = format!("_:arr{}", *gen);
            *gen += 1;
            c
        })
        .collect();
    for i in 0..size {
        let value = if a.ndims() <= 1 {
            let v = a.get(&[i]).expect("in-bounds by construction");
            Term::Number(v).to_string()
        } else {
            let slice = a.subscript(0, i).expect("in-bounds by construction");
            expand_array(&slice, out, gen)
        };
        out.push_str(&format!("{} <{RDF_FIRST}> {value} .\n", cells[i]));
        let next = cells
            .get(i + 1)
            .cloned()
            .unwrap_or_else(|| format!("<{RDF_NIL}>"));
        out.push_str(&format!("{} <{RDF_REST}> {next} .\n", cells[i]));
    }
    cells[0].clone()
}

/// Render one term in N-Triples syntax (always fully qualified).
pub fn term_text(term: &Term) -> String {
    match term {
        Term::Uri(u) => format!("<{u}>"),
        Term::Blank(b) => format!("_:{b}"),
        Term::Str(s) => format!("\"{}\"", escape_str(s)),
        Term::LangStr { value, lang } => format!("\"{}\"@{lang}", escape_str(value)),
        Term::Number(n) => match n {
            ssdm_array::Num::Int(i) => {
                format!("\"{i}\"^^<http://www.w3.org/2001/XMLSchema#integer>")
            }
            ssdm_array::Num::Real(r) => {
                format!("\"{r}\"^^<http://www.w3.org/2001/XMLSchema#double>")
            }
        },
        Term::Bool(b) => format!("\"{b}\"^^<http://www.w3.org/2001/XMLSchema#boolean>"),
        Term::Typed { value, datatype } => {
            format!("\"{}\"^^<{datatype}>", escape_str(value))
        }
        Term::Array(_) => unreachable!("arrays expand before rendering"),
        // External arrays export as an SSDM-scoped URI; the chunk data
        // itself lives in the back-end, not in the RDF serialization.
        Term::ArrayRef(id) => format!("<urn:ssdm:array:{id}>"),
    }
}

/// Parse N-Triples text (a syntactic subset of Turtle).
pub fn parse_into(graph: &mut Graph, text: &str) -> Result<usize, crate::term::RdfError> {
    crate::turtle::parse_into(graph, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turtle;

    #[test]
    fn scalar_triples_round_trip() {
        let mut g = Graph::new();
        turtle::parse_into(&mut g, r#"<http://s> <http://p> 42 , "x" , true , 2.5 ."#).unwrap();
        let text = serialize(&g);
        let mut g2 = Graph::new();
        parse_into(&mut g2, &text).unwrap();
        assert_eq!(g2.len(), g.len());
    }

    #[test]
    fn array_expands_and_reconsolidates() {
        let mut g = Graph::new();
        turtle::parse_into(&mut g, "<http://s> <http://p> ((1 2) (3 4)) .").unwrap();
        assert_eq!(g.len(), 1);
        let text = serialize(&g);
        // The expansion is 13 lines of standard N-Triples.
        assert_eq!(text.lines().count(), 13);
        // Re-importing yields the expanded lists; the consolidation pass
        // restores the single array triple.
        let mut g2 = Graph::new();
        parse_into(&mut g2, &text).unwrap();
        assert_eq!(g2.len(), 13);
        crate::collections::consolidate_collections(&mut g2);
        assert_eq!(g2.len(), 1);
        let t = g2.iter().next().unwrap();
        let arr = g2.term(t.o).as_array().unwrap();
        assert_eq!(arr.shape(), vec![2, 2]);
        assert_eq!(arr.get(&[1, 1]).unwrap().as_i64(), 4);
    }

    #[test]
    fn typed_numeric_output() {
        assert_eq!(
            term_text(&Term::integer(5)),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
    }
}
