//! The in-memory triple store.
//!
//! Triples of interned term ids are kept in three sorted indexes (SPO,
//! POS, OSP) so any pattern with bound components resolves to a range
//! scan — the standard native-RDF-store layout (thesis §2.2.3). The
//! store maintains per-predicate statistics (triple count, distinct
//! subjects/objects) that drive the SciSPARQL cost-based optimizer the
//! way RDF-3X-style histograms do (§2.3.1).

use std::collections::{BTreeSet, HashMap, HashSet};
use std::ops::Bound;

use crate::dictionary::{Dictionary, TermId};
use crate::stats::ObjectStats;
use crate::term::Term;

/// One RDF statement as interned ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    pub s: TermId,
    pub p: TermId,
    pub o: TermId,
}

/// Statistics for one predicate, used for selectivity estimation.
#[derive(Debug, Clone, Default)]
pub struct PredicateStats {
    pub count: usize,
    pub distinct_subjects: usize,
    pub distinct_objects: usize,
}

/// Whole-graph statistics snapshot.
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    pub triples: usize,
    pub predicates: usize,
}

/// An RDF-with-Arrays graph: dictionary plus indexed triples.
#[derive(Debug, Default)]
pub struct Graph {
    dict: Dictionary,
    spo: BTreeSet<(TermId, TermId, TermId)>,
    pos: BTreeSet<(TermId, TermId, TermId)>,
    osp: BTreeSet<(TermId, TermId, TermId)>,
    pred_subjects: HashMap<TermId, HashSet<TermId>>,
    pred_objects: HashMap<TermId, HashSet<TermId>>,
    pred_counts: HashMap<TermId, usize>,
    /// Histogram + distinct sketch over numeric object values, per
    /// predicate — maintained incrementally on insert/delete and
    /// consulted by the optimizer's range/equality selectivities.
    pred_obj_stats: HashMap<TermId, ObjectStats>,
}

impl Graph {
    pub fn new() -> Self {
        Graph::default()
    }

    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    pub fn dictionary_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }

    pub fn len(&self) -> usize {
        self.spo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Intern a term into this graph's dictionary.
    pub fn intern(&mut self, t: Term) -> TermId {
        self.dict.intern(t)
    }

    /// Resolve an id to its term.
    pub fn term(&self, id: TermId) -> &Term {
        self.dict.term(id)
    }

    /// Insert a triple of already-interned ids. Returns false if present.
    pub fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        if !self.spo.insert((s, p, o)) {
            return false;
        }
        self.pos.insert((p, o, s));
        self.osp.insert((o, s, p));
        *self.pred_counts.entry(p).or_default() += 1;
        self.pred_subjects.entry(p).or_default().insert(s);
        self.pred_objects.entry(p).or_default().insert(o);
        if let Some(v) = self.numeric_value(o) {
            let st = self.pred_obj_stats.entry(p).or_default();
            st.histogram.insert(v);
            st.sketch.insert_f64(v);
        }
        true
    }

    /// The f64 value of a numeric-literal term id, if it is one.
    fn numeric_value(&self, id: TermId) -> Option<f64> {
        match self.dict.get(id)? {
            Term::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Intern terms and insert the triple.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) -> bool {
        let s = self.dict.intern(s);
        let p = self.dict.intern(p);
        let o = self.dict.intern(o);
        self.insert_ids(s, p, o)
    }

    /// Remove a triple. Returns true if it was present.
    pub fn remove_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        if !self.spo.remove(&(s, p, o)) {
            return false;
        }
        self.pos.remove(&(p, o, s));
        self.osp.remove(&(o, s, p));
        if let Some(c) = self.pred_counts.get_mut(&p) {
            *c -= 1;
        }
        if let Some(v) = self.numeric_value(o) {
            if let Some(st) = self.pred_obj_stats.get_mut(&p) {
                st.histogram.remove(v);
                st.sketch.note_delete();
            }
        }
        // Distinct-value stats are maintained lazily: recompute on demand.
        if !self.spo.range(range_sp_any(s, p)).any(|_| true) {
            if let Some(set) = self.pred_subjects.get_mut(&p) {
                set.remove(&s);
            }
        }
        if !self
            .pos
            .range((
                Bound::Included((p, o, TermId(0))),
                Bound::Included((p, o, TermId(u32::MAX))),
            ))
            .any(|_| true)
        {
            if let Some(set) = self.pred_objects.get_mut(&p) {
                set.remove(&o);
            }
        }
        true
    }

    pub fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.spo.contains(&(s, p, o))
    }

    /// All triples matching a pattern with optional bound components.
    /// Chooses the index whose prefix covers the bound positions.
    pub fn match_pattern(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Box<dyn Iterator<Item = Triple> + '_> {
        const MIN: TermId = TermId(0);
        const MAX: TermId = TermId(u32::MAX);
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                let hit = self.spo.contains(&(s, p, o));
                Box::new(hit.then_some(Triple { s, p, o }).into_iter())
            }
            (Some(s), Some(p), None) => Box::new(
                self.spo
                    .range((Bound::Included((s, p, MIN)), Bound::Included((s, p, MAX))))
                    .map(|&(s, p, o)| Triple { s, p, o }),
            ),
            (Some(s), None, None) => Box::new(
                self.spo
                    .range((
                        Bound::Included((s, MIN, MIN)),
                        Bound::Included((s, MAX, MAX)),
                    ))
                    .map(|&(s, p, o)| Triple { s, p, o }),
            ),
            (None, Some(p), Some(o)) => Box::new(
                self.pos
                    .range((Bound::Included((p, o, MIN)), Bound::Included((p, o, MAX))))
                    .map(|&(p, o, s)| Triple { s, p, o }),
            ),
            (None, Some(p), None) => Box::new(
                self.pos
                    .range((
                        Bound::Included((p, MIN, MIN)),
                        Bound::Included((p, MAX, MAX)),
                    ))
                    .map(|&(p, o, s)| Triple { s, p, o }),
            ),
            (None, None, Some(o)) => Box::new(
                self.osp
                    .range((
                        Bound::Included((o, MIN, MIN)),
                        Bound::Included((o, MAX, MAX)),
                    ))
                    .map(|&(o, s, p)| Triple { s, p, o }),
            ),
            (Some(s), None, Some(o)) => Box::new(
                self.osp
                    .range((Bound::Included((o, s, MIN)), Bound::Included((o, s, MAX))))
                    .map(|&(o, s, p)| Triple { s, p, o }),
            ),
            (None, None, None) => Box::new(self.spo.iter().map(|&(s, p, o)| Triple { s, p, o })),
        }
    }

    /// Estimated number of matches for a pattern, without scanning.
    /// Drives join-order selection in the optimizer.
    pub fn estimate_pattern(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> f64 {
        let total = self.spo.len() as f64;
        if total == 0.0 {
            return 0.0;
        }
        match (s, p, o) {
            (Some(_), Some(_), Some(_)) => 1.0,
            (_, Some(p), _) => {
                let st = self.predicate_stats(p);
                let mut est = st.count as f64;
                if s.is_some() {
                    est /= (st.distinct_subjects.max(1)) as f64;
                }
                if o.is_some() {
                    est /= (st.distinct_objects.max(1)) as f64;
                }
                est.max(if st.count == 0 { 0.0 } else { 1.0 })
            }
            (Some(_), None, Some(_)) => (total / self.dict.len().max(1) as f64).max(1.0),
            (Some(_), None, None) | (None, None, Some(_)) => {
                (total / self.dict.len().max(1) as f64).max(1.0) * 3.0
            }
            (None, None, None) => total,
        }
    }

    pub fn predicate_stats(&self, p: TermId) -> PredicateStats {
        PredicateStats {
            count: self.pred_counts.get(&p).copied().unwrap_or(0),
            distinct_subjects: self.pred_subjects.get(&p).map(|s| s.len()).unwrap_or(0),
            distinct_objects: self.pred_objects.get(&p).map(|s| s.len()).unwrap_or(0),
        }
    }

    /// The numeric-object statistics kept for a predicate (histogram
    /// + distinct sketch), if any numeric object was ever inserted.
    pub fn object_stats(&self, p: TermId) -> Option<&ObjectStats> {
        self.pred_obj_stats.get(&p)
    }

    /// Estimated triples `(?, p, o)` whose numeric object lies in
    /// `[lo, hi]` (either bound optional), from the predicate's
    /// histogram. `None` when no numeric statistics exist for `p`.
    pub fn estimate_object_range(
        &self,
        p: TermId,
        lo: Option<f64>,
        hi: Option<f64>,
    ) -> Option<f64> {
        Some(self.pred_obj_stats.get(&p)?.estimate_range(lo, hi))
    }

    /// Estimated triples `(?, p, v)` for a numeric constant `v`, using
    /// the histogram bucket mass and the distinct sketch — robust to
    /// value skew, unlike the uniform `count / distinct` guess.
    pub fn estimate_object_eq(&self, p: TermId, v: f64) -> Option<f64> {
        let st = self.pred_obj_stats.get(&p)?;
        if st.histogram.count() == 0 {
            return None;
        }
        Some(st.estimate_eq(v))
    }

    pub fn stats(&self) -> GraphStats {
        GraphStats {
            triples: self.spo.len(),
            predicates: self.pred_counts.iter().filter(|(_, &c)| c > 0).count(),
        }
    }

    /// All triples in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(|&(s, p, o)| Triple { s, p, o })
    }
}

type TripleRange = (
    Bound<(TermId, TermId, TermId)>,
    Bound<(TermId, TermId, TermId)>,
);

fn range_sp_any(s: TermId, p: TermId) -> TripleRange {
    (
        Bound::Included((s, p, TermId(0))),
        Bound::Included((s, p, TermId(u32::MAX))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert(Term::blank("a"), Term::uri("foaf:name"), Term::str("Alice"));
        g.insert(Term::blank("a"), Term::uri("foaf:knows"), Term::blank("b"));
        g.insert(Term::blank("a"), Term::uri("foaf:knows"), Term::blank("d"));
        g.insert(Term::blank("b"), Term::uri("foaf:name"), Term::str("Bob"));
        g.insert(
            Term::blank("d"),
            Term::uri("foaf:name"),
            Term::str("Daniel"),
        );
        g
    }

    #[test]
    fn insert_dedups() {
        let mut g = Graph::new();
        assert!(g.insert(Term::blank("x"), Term::uri("p"), Term::integer(1)));
        assert!(!g.insert(Term::blank("x"), Term::uri("p"), Term::integer(1)));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn pattern_spo_bound_combinations() {
        let g = sample();
        let name = g.dictionary().lookup(&Term::uri("foaf:name")).unwrap();
        let knows = g.dictionary().lookup(&Term::uri("foaf:knows")).unwrap();
        let a = g.dictionary().lookup(&Term::blank("a")).unwrap();
        let alice = g.dictionary().lookup(&Term::str("Alice")).unwrap();

        assert_eq!(g.match_pattern(None, None, None).count(), 5);
        assert_eq!(g.match_pattern(None, Some(name), None).count(), 3);
        assert_eq!(g.match_pattern(Some(a), None, None).count(), 3);
        assert_eq!(g.match_pattern(Some(a), Some(knows), None).count(), 2);
        assert_eq!(g.match_pattern(None, Some(name), Some(alice)).count(), 1);
        assert_eq!(g.match_pattern(None, None, Some(alice)).count(), 1);
        assert_eq!(g.match_pattern(Some(a), Some(name), Some(alice)).count(), 1);
        assert_eq!(g.match_pattern(Some(a), None, Some(alice)).count(), 1);
    }

    #[test]
    fn remove_maintains_indexes() {
        let mut g = sample();
        let name = g.dictionary().lookup(&Term::uri("foaf:name")).unwrap();
        let a = g.dictionary().lookup(&Term::blank("a")).unwrap();
        let alice = g.dictionary().lookup(&Term::str("Alice")).unwrap();
        assert!(g.remove_ids(a, name, alice));
        assert!(!g.remove_ids(a, name, alice));
        assert_eq!(g.len(), 4);
        assert_eq!(g.match_pattern(None, Some(name), None).count(), 2);
        assert_eq!(g.match_pattern(None, None, Some(alice)).count(), 0);
    }

    #[test]
    fn predicate_stats_track_distincts() {
        let g = sample();
        let knows = g.dictionary().lookup(&Term::uri("foaf:knows")).unwrap();
        let st = g.predicate_stats(knows);
        assert_eq!(st.count, 2);
        assert_eq!(st.distinct_subjects, 1);
        assert_eq!(st.distinct_objects, 2);
    }

    #[test]
    fn estimates_are_ordered_sensibly() {
        let g = sample();
        let name = g.dictionary().lookup(&Term::uri("foaf:name")).unwrap();
        let full = g.estimate_pattern(None, None, None);
        let by_p = g.estimate_pattern(None, Some(name), None);
        let by_po = g.estimate_pattern(None, Some(name), Some(TermId(0)));
        assert!(by_p <= full);
        assert!(by_po <= by_p);
    }

    #[test]
    fn object_value_statistics_follow_inserts_and_deletes() {
        let mut g = Graph::new();
        for i in 0..100 {
            g.insert(
                Term::blank(format!("s{i}")),
                Term::uri("p:val"),
                Term::integer(i % 10),
            );
        }
        let p = g.dictionary().lookup(&Term::uri("p:val")).unwrap();
        let st = g.object_stats(p).expect("numeric stats kept");
        assert_eq!(st.histogram.count(), 100);
        assert_eq!(st.sketch.estimate(), 10.0);
        let low = g.estimate_object_range(p, None, Some(4.5)).unwrap();
        assert!((30.0..=70.0).contains(&low), "got {low}");
        // Equality estimate lands near the true frequency (10 each).
        let eq = g.estimate_object_eq(p, 3.0).unwrap();
        assert!((1.0..=40.0).contains(&eq), "got {eq}");
        // Deleting updates the histogram mass.
        let s0 = g.dictionary().lookup(&Term::blank("s0")).unwrap();
        let v0 = g.dictionary().lookup(&Term::integer(0)).unwrap();
        assert!(g.remove_ids(s0, p, v0));
        assert_eq!(g.object_stats(p).unwrap().histogram.count(), 99);
        // Non-numeric objects never create stats.
        let mut g2 = Graph::new();
        g2.insert(Term::blank("a"), Term::uri("p:s"), Term::str("x"));
        let ps = g2.dictionary().lookup(&Term::uri("p:s")).unwrap();
        assert!(g2.object_stats(ps).is_none());
    }

    #[test]
    fn stats_snapshot() {
        let g = sample();
        let st = g.stats();
        assert_eq!(st.triples, 5);
        assert_eq!(st.predicates, 2);
    }
}
