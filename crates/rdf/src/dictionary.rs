//! Term interning.
//!
//! Triples are stored as compact `(TermId, TermId, TermId)` tuples; the
//! dictionary maps ids to full [`Term`] values and back. This mirrors the
//! normalized physical representation of RDF terms in SSDM (thesis §5.1)
//! and keeps join processing on fixed-size integers.

use std::collections::HashMap;

use crate::term::Term;

/// A dense identifier for an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

impl TermId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional term ↔ id map. URIs, blank nodes and scalar literals
/// are deduplicated structurally; array values are interned by identity
/// (every stored array gets its own id — arrays are compared by value
/// only inside query filters, never merged at load time).
#[derive(Debug, Default)]
pub struct Dictionary {
    terms: Vec<Term>,
    ids: HashMap<Term, TermId>,
}

impl Dictionary {
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Intern a term, returning its id (existing or fresh).
    pub fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.ids.get(&term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.clone());
        self.ids.insert(term, id);
        id
    }

    /// Id of an already-interned term, if any.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// The term behind an id. Panics on a foreign id.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    pub fn get(&self, id: TermId) -> Option<&Term> {
        self.terms.get(id.index())
    }

    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Generate a fresh blank node unused in this dictionary.
    pub fn fresh_blank(&mut self) -> TermId {
        let mut n = self.terms.len();
        loop {
            let t = Term::blank(format!("gen{n}"));
            if self.ids.contains_key(&t) {
                n += 1;
                continue;
            }
            return self.intern(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdm_array::NumArray;

    #[test]
    fn interning_dedups() {
        let mut d = Dictionary::new();
        let a = d.intern(Term::uri("http://x"));
        let b = d.intern(Term::uri("http://x"));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
        let c = d.intern(Term::uri("http://y"));
        assert_ne!(a, c);
    }

    #[test]
    fn numeric_literals_distinct_by_type() {
        let mut d = Dictionary::new();
        let i = d.intern(Term::integer(2));
        let r = d.intern(Term::double(2.0));
        assert_ne!(i, r, "2 and 2.0 are distinct RDF nodes");
    }

    #[test]
    fn arrays_intern_by_identity() {
        let mut d = Dictionary::new();
        let a1 = d.intern(Term::Array(NumArray::from_i64(vec![1, 2])));
        let a2 = d.intern(Term::Array(NumArray::from_i64(vec![1, 2])));
        assert_ne!(a1, a2, "structurally equal arrays stay separate nodes");
        let arr = NumArray::from_i64(vec![3]);
        let b1 = d.intern(Term::Array(arr.clone()));
        let b2 = d.intern(Term::Array(arr));
        assert_eq!(b1, b2, "the same shared buffer interns once");
    }

    #[test]
    fn lookup_and_resolve() {
        let mut d = Dictionary::new();
        let id = d.intern(Term::str("hello"));
        assert_eq!(d.lookup(&Term::str("hello")), Some(id));
        assert_eq!(d.term(id), &Term::str("hello"));
        assert_eq!(d.lookup(&Term::str("other")), None);
    }

    #[test]
    fn fresh_blank_avoids_collisions() {
        let mut d = Dictionary::new();
        d.intern(Term::blank("gen0"));
        let b = d.fresh_blank();
        assert_ne!(d.term(b), &Term::blank("gen0"));
    }
}
