//! Query-level observability for SSDM: a lightweight span/counter
//! recorder with monotonic log2-bucketed latency histograms and
//! Prometheus-text rendering — no external dependencies.
//!
//! The dissertation's evaluation chapters are built on per-phase timing
//! breakdowns of array access patterns; this crate is the substrate
//! those measurements report into at runtime:
//!
//! * [`Counter`] — a relaxed atomic monotonic counter;
//! * [`Histogram`] — fixed log2 buckets over microseconds (bucket `i`
//!   holds observations in `[2^(i-1), 2^i)` µs), recording is two
//!   relaxed atomic adds;
//! * [`Span`] — an RAII timer that observes its elapsed wall time into
//!   a histogram on drop;
//! * [`Recorder`] — a process-global registry of named counters and
//!   histograms; hot paths cache `Arc` handles in `OnceLock` statics so
//!   the registry lock is taken once per name per process;
//! * [`Report`] — a *structured* snapshot of engine statistics
//!   (sections × metric names × explicit [`Scope`]), replacing ad-hoc
//!   string concatenation; it renders both the human `.stats` text and
//!   the Prometheus exposition format.
//!
//! Recording can be globally disabled ([`Recorder::set_enabled`]) to
//! measure the recorder's own overhead (see `repro_obs` in the bench
//! crate); the documented budget is <3% on the parallel-retrieval
//! workload.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of finite histogram buckets. Bucket `i >= 1` covers
/// `[2^(i-1), 2^i)` microseconds; bucket 0 covers sub-microsecond
/// observations. The last finite bucket's upper bound is ~36 minutes;
/// anything beyond lands in `+Inf`.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonic counter. Cheap enough for per-chunk hot paths.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn add(&self, delta: u64) {
        if delta > 0 {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A monotonic latency histogram with fixed log2 buckets over
/// microseconds. Observations are two relaxed atomic adds; snapshots
/// are lock-free reads.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    overflow: AtomicU64,
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

/// A point-in-time copy of a histogram's buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts; index as in [`Histogram`].
    pub buckets: Vec<u64>,
    /// Observations beyond the last finite bucket.
    pub overflow: u64,
    pub count: u64,
    pub sum_micros: u64,
}

impl Histogram {
    /// The bucket index an observation of `micros` falls into.
    pub fn bucket_of(micros: u64) -> usize {
        if micros == 0 {
            0
        } else {
            (64 - micros.leading_zeros() as usize).min(HISTOGRAM_BUCKETS)
        }
    }

    /// Exclusive upper bound of finite bucket `i`, in microseconds.
    pub fn bucket_bound_micros(i: usize) -> u64 {
        1u64 << i
    }

    pub fn observe_micros(&self, micros: u64) {
        let idx = Self::bucket_of(micros);
        if idx < HISTOGRAM_BUCKETS {
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        } else {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    pub fn observe(&self, elapsed: std::time::Duration) {
        self.observe_micros(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            overflow: self.overflow.load(Ordering::Relaxed),
            count: self.count(),
            sum_micros: self.sum_micros(),
        }
    }
}

/// An RAII timing span: created against a histogram handle, it observes
/// the elapsed wall time on drop. When the recorder is disabled the
/// span is inert (no clock reads).
pub struct Span {
    target: Option<(Arc<Histogram>, Instant)>,
}

impl Span {
    /// Start a span against a cached histogram handle, respecting the
    /// global enable switch.
    pub fn start(hist: &Arc<Histogram>) -> Span {
        if recorder().enabled() {
            Span {
                target: Some((Arc::clone(hist), Instant::now())),
            }
        } else {
            Span { target: None }
        }
    }

    /// A span that never records (for code paths that must hand back a
    /// `Span` unconditionally).
    pub fn disabled() -> Span {
        Span { target: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.target.take() {
            hist.observe(start.elapsed());
        }
    }
}

/// The process-global registry of named counters and histograms.
pub struct Recorder {
    enabled: AtomicBool,
    counters: Mutex<std::collections::BTreeMap<&'static str, Arc<Counter>>>,
    histograms: Mutex<std::collections::BTreeMap<&'static str, Arc<Histogram>>>,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            enabled: AtomicBool::new(true),
            counters: Mutex::new(Default::default()),
            histograms: Mutex::new(Default::default()),
        }
    }

    /// Whether spans/counters record. On by default; switched off only
    /// to measure recorder overhead.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Look up (or create) a named counter. Call sites should cache the
    /// handle in a `OnceLock` static rather than re-resolving per hit.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .expect("obs counter registry")
                .entry(name)
                .or_default(),
        )
    }

    /// Look up (or create) a named histogram.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .expect("obs histogram registry")
                .entry(name)
                .or_default(),
        )
    }

    /// Add to a named counter (slow path; prefer cached handles).
    pub fn add(&self, name: &'static str, delta: u64) {
        if self.enabled() {
            self.counter(name).add(delta);
        }
    }

    /// Render every registered counter and histogram in the Prometheus
    /// text exposition format (version 0.0.4). Histograms emit
    /// cumulative `_bucket{le="..."}` series with bounds in seconds,
    /// plus `_sum` (seconds) and `_count`.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let counters: Vec<(&'static str, Arc<Counter>)> = self
            .counters
            .lock()
            .expect("obs counter registry")
            .iter()
            .map(|(n, c)| (*n, Arc::clone(c)))
            .collect();
        for (name, counter) in counters {
            out.push_str(&format!("# TYPE {name} counter\n"));
            out.push_str(&format!("{name} {}\n", counter.get()));
        }
        let histograms: Vec<(&'static str, Arc<Histogram>)> = self
            .histograms
            .lock()
            .expect("obs histogram registry")
            .iter()
            .map(|(n, h)| (*n, Arc::clone(h)))
            .collect();
        for (name, hist) in histograms {
            let snap = hist.snapshot();
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (i, n) in snap.buckets.iter().enumerate() {
                cumulative += n;
                // Render only buckets that advance the CDF, plus the
                // first — full 33-series dumps drown the useful signal.
                if *n == 0 && i != 0 {
                    continue;
                }
                let le = Histogram::bucket_bound_micros(i) as f64 / 1e6;
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
            out.push_str(&format!("{name}_sum {}\n", snap.sum_micros as f64 / 1e6));
            out.push_str(&format!("{name}_count {}\n", snap.count));
        }
        out
    }
}

/// The global recorder every layer reports into.
pub fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(Recorder::new)
}

// ---------------------------------------------------------------------------
// Structured statistics report
// ---------------------------------------------------------------------------

/// Whether a metric accumulates over the engine's lifetime or describes
/// only the most recent operation. Surfacing this explicitly is what
/// keeps `.stats` / `STATS` from conflating the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    Cumulative,
    LastOp,
}

impl Scope {
    pub fn label(&self) -> &'static str {
        match self {
            Scope::Cumulative => "cumulative",
            Scope::LastOp => "last_op",
        }
    }
}

/// One metric value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    Int(u64),
    Float(f64),
}

impl std::fmt::Display for MetricValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricValue::Int(v) => write!(f, "{v}"),
            MetricValue::Float(v) => write!(f, "{v:.3}"),
        }
    }
}

/// One named metric within a report section. A metric may carry one
/// label pair (e.g. `tenant="alice"`), which scopes the series in both
/// the `.stats` text and the Prometheus rendering — the mechanism the
/// multi-tenant serving layer uses for per-tenant accounting.
#[derive(Debug, Clone)]
pub struct Metric {
    pub section: &'static str,
    pub name: &'static str,
    pub scope: Scope,
    pub value: MetricValue,
    /// Optional `(label_name, label_value)` pair.
    pub label: Option<(&'static str, String)>,
}

/// A structured snapshot of engine statistics: the single registry
/// behind `.stats`, the `STATS` wire statement, and the counter half of
/// the `METRICS` Prometheus dump.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub metrics: Vec<Metric>,
}

impl Report {
    pub fn push_int(&mut self, section: &'static str, scope: Scope, name: &'static str, v: u64) {
        self.metrics.push(Metric {
            section,
            name,
            scope,
            value: MetricValue::Int(v),
            label: None,
        });
    }

    pub fn push_float(&mut self, section: &'static str, scope: Scope, name: &'static str, v: f64) {
        self.metrics.push(Metric {
            section,
            name,
            scope,
            value: MetricValue::Float(v),
            label: None,
        });
    }

    /// Push a labelled integer series, e.g.
    /// `push_labeled_int("tenant", Cumulative, "admitted", ("tenant", "alice"), 3)`.
    pub fn push_labeled_int(
        &mut self,
        section: &'static str,
        scope: Scope,
        name: &'static str,
        label: (&'static str, impl Into<String>),
        v: u64,
    ) {
        self.metrics.push(Metric {
            section,
            name,
            scope,
            value: MetricValue::Int(v),
            label: Some((label.0, label.1.into())),
        });
    }

    /// Look a metric up by section and name.
    pub fn get(&self, section: &str, name: &str) -> Option<MetricValue> {
        self.metrics
            .iter()
            .find(|m| m.section == section && m.name == name && m.label.is_none())
            .map(|m| m.value)
    }

    /// Look a labelled metric up by section, name, and label value.
    pub fn get_labeled(&self, section: &str, name: &str, label_value: &str) -> Option<MetricValue> {
        self.metrics
            .iter()
            .find(|m| {
                m.section == section
                    && m.name == name
                    && m.label.as_ref().is_some_and(|(_, v)| v == label_value)
            })
            .map(|m| m.value)
    }

    /// Render the human-readable `.stats` text: one line per
    /// `section[scope]`, metrics as `name=value` in insertion order.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut current: Option<(&str, Scope)> = None;
        for m in &self.metrics {
            if current != Some((m.section, m.scope)) {
                if current.is_some() {
                    out.push('\n');
                }
                out.push_str(&format!("{}[{}]:", m.section, m.scope.label()));
                current = Some((m.section, m.scope));
            }
            match &m.label {
                Some((k, v)) => out.push_str(&format!(" {}{{{k}={v}}}={}", m.name, m.value)),
                None => out.push_str(&format!(" {}={}", m.name, m.value)),
            }
        }
        if current.is_some() {
            out.push('\n');
        }
        out
    }

    /// Render the report's metrics in Prometheus text format.
    /// Cumulative integers become `ssdm_<section>_<name>_total`
    /// counters; everything else becomes a gauge labelled with its
    /// scope.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<String> = Default::default();
        for m in &self.metrics {
            let base = format!("ssdm_{}_{}", m.section, m.name);
            let labels = |extra: Option<String>| -> String {
                let mut parts: Vec<String> = Vec::new();
                if let Some((k, v)) = &m.label {
                    parts.push(format!("{k}=\"{v}\""));
                }
                if let Some(e) = extra {
                    parts.push(e);
                }
                if parts.is_empty() {
                    String::new()
                } else {
                    format!("{{{}}}", parts.join(","))
                }
            };
            match (m.scope, m.value) {
                (Scope::Cumulative, MetricValue::Int(v)) => {
                    if typed.insert(format!("{base}_total")) {
                        out.push_str(&format!("# TYPE {base}_total counter\n"));
                    }
                    out.push_str(&format!("{base}_total{} {v}\n", labels(None)));
                }
                (scope, value) => {
                    if typed.insert(base.clone()) {
                        out.push_str(&format!("# TYPE {base} gauge\n"));
                    }
                    out.push_str(&format!(
                        "{base}{} {value}\n",
                        labels(Some(format!("scope=\"{}\"", scope.label())))
                    ));
                }
            }
        }
        out
    }
}

/// Lightweight structural check that `text` is valid Prometheus text
/// exposition format: every non-comment line is `name[{labels}] value`
/// with a parseable float value and a legal metric name. Used by tests
/// and the CI metrics smoke.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    fn name_ok(name: &str) -> bool {
        !name.is_empty()
            && name.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            })
    }
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line:?}", lineno + 1))?;
        if value != "+Inf" && value.parse::<f64>().is_err() {
            return Err(format!("line {}: bad value {value:?}", lineno + 1));
        }
        let name = match series.split_once('{') {
            Some((name, labels)) => {
                if !labels.ends_with('}') {
                    return Err(format!("line {}: unterminated labels", lineno + 1));
                }
                name
            }
            None => series,
        };
        if !name_ok(name) {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::default();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.add(0);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn histogram_bucketing_is_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS);
    }

    #[test]
    fn histogram_observations_land_in_buckets() {
        let h = Histogram::default();
        h.observe_micros(0);
        h.observe_micros(1);
        h.observe_micros(1000);
        h.observe_micros(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[10], 1);
        assert_eq!(s.overflow, 1);
    }

    #[test]
    fn span_records_on_drop() {
        let h = recorder().histogram("obs_test_span_seconds");
        let before = h.count();
        {
            let _s = Span::start(&h);
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        assert_eq!(h.count(), before + 1);
        assert!(h.sum_micros() > 0);
    }

    #[test]
    fn disabled_recorder_skips_spans() {
        let h = recorder().histogram("obs_test_disabled_seconds");
        recorder().set_enabled(false);
        {
            let _s = Span::start(&h);
        }
        recorder().set_enabled(true);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn report_renders_scoped_text() {
        let mut r = Report::default();
        r.push_int("cache", Scope::Cumulative, "hits", 10);
        r.push_int("cache", Scope::Cumulative, "misses", 2);
        r.push_int("apr", Scope::LastOp, "chunks", 7);
        let text = r.render_text();
        assert!(text.contains("cache[cumulative]: hits=10 misses=2"));
        assert!(text.contains("apr[last_op]: chunks=7"));
        assert_eq!(r.get("cache", "hits"), Some(MetricValue::Int(10)));
    }

    #[test]
    fn prometheus_output_is_valid() {
        let h = recorder().histogram("obs_test_prom_seconds");
        h.observe_micros(3);
        h.observe_micros(900);
        recorder().counter("obs_test_prom_total").add(5);
        let text = recorder().prometheus_text();
        validate_prometheus_text(&text).unwrap();
        assert!(text.contains("# TYPE obs_test_prom_seconds histogram"));
        assert!(text.contains("obs_test_prom_seconds_count 2"));
        assert!(text.contains("obs_test_prom_total 5"));

        let mut r = Report::default();
        r.push_int("cache", Scope::Cumulative, "hits", 10);
        r.push_float("cache", Scope::Cumulative, "hit_rate", 0.5);
        r.push_int("apr", Scope::LastOp, "chunks", 7);
        let text = r.render_prometheus();
        validate_prometheus_text(&text).unwrap();
        assert!(text.contains("ssdm_cache_hits_total 10"));
        assert!(text.contains("ssdm_apr_chunks{scope=\"last_op\"} 7"));
    }

    #[test]
    fn labeled_metrics_render_in_both_formats() {
        let mut r = Report::default();
        r.push_labeled_int(
            "tenant",
            Scope::Cumulative,
            "admitted",
            ("tenant", "alice"),
            3,
        );
        r.push_labeled_int(
            "tenant",
            Scope::Cumulative,
            "admitted",
            ("tenant", "bob"),
            7,
        );
        let text = r.render_text();
        assert!(text.contains("admitted{tenant=alice}=3"), "{text}");
        assert!(text.contains("admitted{tenant=bob}=7"), "{text}");
        let prom = r.render_prometheus();
        validate_prometheus_text(&prom).unwrap();
        assert!(
            prom.contains("ssdm_tenant_admitted_total{tenant=\"alice\"} 3"),
            "{prom}"
        );
        assert!(
            prom.contains("ssdm_tenant_admitted_total{tenant=\"bob\"} 7"),
            "{prom}"
        );
        // The shared # TYPE header is emitted once, not per series.
        assert_eq!(prom.matches("# TYPE ssdm_tenant_admitted_total").count(), 1);
        assert_eq!(
            r.get_labeled("tenant", "admitted", "bob"),
            Some(MetricValue::Int(7))
        );
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_prometheus_text("ok_metric 1\n").is_ok());
        assert!(validate_prometheus_text("9bad 1\n").is_err());
        assert!(validate_prometheus_text("no_value\n").is_err());
        assert!(validate_prometheus_text("bad_value x\n").is_err());
        assert!(validate_prometheus_text("unterminated{le=\"1\" 3\n").is_err());
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_prometheus() {
        let h = recorder().histogram("obs_test_cdf_seconds");
        for us in [1u64, 1, 3, 900, 70_000] {
            h.observe_micros(us);
        }
        let text = recorder().prometheus_text();
        // The +Inf bucket equals the count.
        let inf = text
            .lines()
            .find(|l| l.starts_with("obs_test_cdf_seconds_bucket{le=\"+Inf\"}"))
            .unwrap();
        assert!(inf.ends_with(" 5"), "{inf}");
    }
}
