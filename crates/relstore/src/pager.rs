//! Raw page storage: a flat array of fixed-size pages, in memory or in
//! a file. Physical reads/writes are counted so experiments can report
//! I/O volume independently of wall-clock time.

use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;

/// Fixed page size in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page (its position in the store).
pub type PageId = u32;

/// Errors raised by the storage substrate.
#[derive(Debug)]
pub enum StoreError {
    Io(io::Error),
    /// A structural invariant was violated (corrupt page, bad tag...).
    Corrupt(String),
    /// A requested key was not found where it was required.
    NotFound,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store: {m}"),
            StoreError::NotFound => write!(f, "key not found"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One page worth of bytes.
pub type Page = Box<[u8; PAGE_SIZE]>;

pub fn blank_page() -> Page {
    Box::new([0u8; PAGE_SIZE])
}

enum Backing {
    Memory(Vec<Page>),
    File { file: File, pages: u32 },
}

/// Page-granular storage with physical I/O counters.
pub struct Pager {
    backing: Backing,
    pub physical_reads: u64,
    pub physical_writes: u64,
}

impl Pager {
    /// An in-memory pager (volatile; used by tests and pure benchmarks).
    pub fn in_memory() -> Self {
        Pager {
            backing: Backing::Memory(Vec::new()),
            physical_reads: 0,
            physical_writes: 0,
        }
    }

    /// A file-backed pager; creates or truncates the file.
    pub fn create_file(path: &Path) -> Result<Self, StoreError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Pager {
            backing: Backing::File { file, pages: 0 },
            physical_reads: 0,
            physical_writes: 0,
        })
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u32 {
        match &self.backing {
            Backing::Memory(v) => v.len() as u32,
            Backing::File { pages, .. } => *pages,
        }
    }

    /// Allocate a fresh zeroed page, returning its id.
    pub fn allocate(&mut self) -> Result<PageId, StoreError> {
        match &mut self.backing {
            Backing::Memory(v) => {
                v.push(blank_page());
                Ok((v.len() - 1) as PageId)
            }
            Backing::File { file, pages } => {
                let id = *pages;
                *pages += 1;
                let zero = [0u8; PAGE_SIZE];
                file.write_all_at(&zero, id as u64 * PAGE_SIZE as u64)?;
                self.physical_writes += 1;
                Ok(id)
            }
        }
    }

    /// Read a page into a fresh buffer.
    pub fn read(&mut self, id: PageId) -> Result<Page, StoreError> {
        self.physical_reads += 1;
        match &mut self.backing {
            Backing::Memory(v) => v
                .get(id as usize)
                .cloned()
                .ok_or_else(|| StoreError::Corrupt(format!("page {id} out of range"))),
            Backing::File { file, pages } => {
                if id >= *pages {
                    return Err(StoreError::Corrupt(format!("page {id} out of range")));
                }
                let mut buf = blank_page();
                file.read_exact_at(&mut buf[..], id as u64 * PAGE_SIZE as u64)?;
                Ok(buf)
            }
        }
    }

    /// Write a page back.
    pub fn write(&mut self, id: PageId, page: &Page) -> Result<(), StoreError> {
        self.physical_writes += 1;
        match &mut self.backing {
            Backing::Memory(v) => {
                let slot = v
                    .get_mut(id as usize)
                    .ok_or_else(|| StoreError::Corrupt(format!("page {id} out of range")))?;
                *slot = page.clone();
                Ok(())
            }
            Backing::File { file, pages } => {
                if id >= *pages {
                    return Err(StoreError::Corrupt(format!("page {id} out of range")));
                }
                file.write_all_at(&page[..], id as u64 * PAGE_SIZE as u64)?;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_roundtrip() {
        let mut p = Pager::in_memory();
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        assert_ne!(a, b);
        let mut page = blank_page();
        page[0] = 7;
        page[PAGE_SIZE - 1] = 9;
        p.write(a, &page).unwrap();
        let back = p.read(a).unwrap();
        assert_eq!(back[0], 7);
        assert_eq!(back[PAGE_SIZE - 1], 9);
        let untouched = p.read(b).unwrap();
        assert_eq!(untouched[0], 0);
    }

    #[test]
    fn out_of_range_is_error() {
        let mut p = Pager::in_memory();
        assert!(p.read(0).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("relstore-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pager.db");
        let mut p = Pager::create_file(&path).unwrap();
        let a = p.allocate().unwrap();
        let mut page = blank_page();
        page[100] = 42;
        p.write(a, &page).unwrap();
        assert_eq!(p.read(a).unwrap()[100], 42);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn io_counters() {
        let mut p = Pager::in_memory();
        let a = p.allocate().unwrap();
        p.read(a).unwrap();
        p.read(a).unwrap();
        assert_eq!(p.physical_reads, 2);
    }
}
