//! The relational "SQL" surface over the chunk table.
//!
//! [`Db`] exposes exactly the statement shapes the thesis' retrieval
//! strategies generate against the back-end's chunk table (§6.2.3):
//!
//! * `get`        — `SELECT data WHERE array=? AND chunk=?` (one row);
//! * `get_in`     — `... WHERE array=? AND chunk IN (...)`;
//! * `get_range`  — `... WHERE array=? AND chunk BETWEEN ? AND ?`;
//! * `put`/`delete` — the load/update path.
//!
//! Every call counts as one statement and is charged through the
//! [`LatencyModel`], so strategy comparisons reproduce the round-trip
//! economics of the paper's MySQL deployment.

use std::path::Path;

use crate::btree::{BPlusTree, TreeKey};
use crate::buffer::{BufferPool, PoolStats};
use crate::latency::LatencyModel;
use crate::pager::Pager;
use crate::Result;

/// Composite row key: `(array_id, chunk_id)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key {
    pub array_id: u64,
    pub chunk_id: u64,
}

impl Key {
    pub fn new(array_id: u64, chunk_id: u64) -> Self {
        Key { array_id, chunk_id }
    }

    fn encode(self) -> TreeKey {
        let mut k = [0u8; 16];
        k[..8].copy_from_slice(&self.array_id.to_be_bytes());
        k[8..].copy_from_slice(&self.chunk_id.to_be_bytes());
        k
    }

    fn decode(k: &TreeKey) -> Self {
        Key {
            array_id: u64::from_be_bytes(k[..8].try_into().unwrap()),
            chunk_id: u64::from_be_bytes(k[8..].try_into().unwrap()),
        }
    }
}

/// Cumulative statement-level statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StatementStats {
    pub statements: u64,
    pub rows_returned: u64,
    pub bytes_returned: u64,
}

/// Construction options.
#[derive(Debug, Clone)]
pub struct DbOptions {
    /// Buffer-pool capacity in pages.
    pub pool_pages: usize,
    /// Simulated client–server latency.
    pub latency: LatencyModel,
}

impl Default for DbOptions {
    fn default() -> Self {
        DbOptions {
            pool_pages: 1024,
            latency: LatencyModel::none(),
        }
    }
}

/// The embedded chunk database.
pub struct Db {
    pool: BufferPool,
    tree: BPlusTree,
    latency: LatencyModel,
    stats: StatementStats,
}

impl Db {
    /// A volatile in-memory database.
    pub fn open_memory(options: DbOptions) -> Result<Self> {
        let mut pool = BufferPool::new(Pager::in_memory(), options.pool_pages);
        let tree = BPlusTree::create(&mut pool)?;
        Ok(Db {
            pool,
            tree,
            latency: options.latency,
            stats: StatementStats::default(),
        })
    }

    /// A file-backed database (created fresh).
    pub fn create_file(path: &Path, options: DbOptions) -> Result<Self> {
        let mut pool = BufferPool::new(Pager::create_file(path)?, options.pool_pages);
        let tree = BPlusTree::create(&mut pool)?;
        Ok(Db {
            pool,
            tree,
            latency: options.latency,
            stats: StatementStats::default(),
        })
    }

    /// Store a chunk (INSERT ... ON DUPLICATE KEY UPDATE). The load path
    /// is not latency-charged: experiments measure query time.
    pub fn put(&mut self, key: Key, data: &[u8]) -> Result<()> {
        self.tree.put(&mut self.pool, &key.encode(), data)
    }

    /// Point lookup: one statement.
    pub fn get(&mut self, key: Key) -> Result<Option<Vec<u8>>> {
        let v = self.tree.get(&mut self.pool, &key.encode())?;
        let (rows, bytes) = match &v {
            Some(b) => (1, b.len()),
            None => (0, 0),
        };
        self.account(rows, bytes);
        Ok(v)
    }

    /// `IN`-list lookup: one statement, many point probes server-side.
    pub fn get_in(&mut self, array_id: u64, chunk_ids: &[u64]) -> Result<Vec<(Key, Vec<u8>)>> {
        let mut out = Vec::with_capacity(chunk_ids.len());
        let mut bytes = 0usize;
        for &c in chunk_ids {
            let key = Key::new(array_id, c);
            if let Some(v) = self.tree.get(&mut self.pool, &key.encode())? {
                bytes += v.len();
                out.push((key, v));
            }
        }
        self.account(out.len(), bytes);
        Ok(out)
    }

    /// Range lookup (`BETWEEN`, inclusive): one statement, one clustered
    /// leaf scan server-side.
    pub fn get_range(
        &mut self,
        array_id: u64,
        chunk_lo: u64,
        chunk_hi: u64,
    ) -> Result<Vec<(Key, Vec<u8>)>> {
        let lo = Key::new(array_id, chunk_lo).encode();
        let hi = Key::new(array_id, chunk_hi).encode();
        let rows = self.tree.range(&mut self.pool, &lo, &hi)?;
        let bytes: usize = rows.iter().map(|(_, v)| v.len()).sum();
        self.account(rows.len(), bytes);
        Ok(rows
            .into_iter()
            .map(|(k, v)| (Key::decode(&k), v))
            .collect())
    }

    /// Composite-key range lookup (`(array, chunk) BETWEEN ? AND ?`,
    /// inclusive): one statement, one clustered scan that may span
    /// array boundaries — the physical operation behind bag-of-proxy
    /// resolution (thesis §6.2.4).
    pub fn get_key_range(&mut self, lo: Key, hi: Key) -> Result<Vec<(Key, Vec<u8>)>> {
        let rows = self
            .tree
            .range(&mut self.pool, &lo.encode(), &hi.encode())?;
        let bytes: usize = rows.iter().map(|(_, v)| v.len()).sum();
        self.account(rows.len(), bytes);
        Ok(rows
            .into_iter()
            .map(|(k, v)| (Key::decode(&k), v))
            .collect())
    }

    /// Row-value `IN`-list lookup over composite keys
    /// (`WHERE (array, chunk) IN ((...),(...))`): one statement.
    pub fn get_keys(&mut self, keys: &[Key]) -> Result<Vec<(Key, Vec<u8>)>> {
        let mut out = Vec::with_capacity(keys.len());
        let mut bytes = 0usize;
        for &key in keys {
            if let Some(v) = self.tree.get(&mut self.pool, &key.encode())? {
                bytes += v.len();
                out.push((key, v));
            }
        }
        self.account(out.len(), bytes);
        Ok(out)
    }

    /// Delete a chunk row.
    pub fn delete(&mut self, key: Key) -> Result<bool> {
        let existed = self.tree.delete(&mut self.pool, &key.encode())?;
        self.account(usize::from(existed), 0);
        Ok(existed)
    }

    /// Flush dirty pages.
    pub fn flush(&mut self) -> Result<()> {
        self.pool.flush()
    }

    pub fn statement_stats(&self) -> StatementStats {
        self.stats
    }

    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    pub fn reset_stats(&mut self) {
        self.stats = StatementStats::default();
        self.pool.reset_stats();
    }

    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    pub fn set_latency(&mut self, latency: LatencyModel) {
        self.latency = latency;
    }

    fn account(&mut self, rows: usize, bytes: usize) {
        self.stats.statements += 1;
        self.stats.rows_returned += rows as u64;
        self.stats.bytes_returned += bytes as u64;
        self.latency.apply(rows, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Db {
        Db::open_memory(DbOptions::default()).unwrap()
    }

    #[test]
    fn point_lookup() {
        let mut d = db();
        d.put(Key::new(1, 0), b"chunk0").unwrap();
        assert_eq!(d.get(Key::new(1, 0)).unwrap().unwrap(), b"chunk0");
        assert_eq!(d.get(Key::new(1, 1)).unwrap(), None);
        let s = d.statement_stats();
        assert_eq!(s.statements, 2);
        assert_eq!(s.rows_returned, 1);
        assert_eq!(s.bytes_returned, 6);
    }

    #[test]
    fn in_list_is_one_statement() {
        let mut d = db();
        for c in 0..10 {
            d.put(Key::new(1, c), &[c as u8]).unwrap();
        }
        d.reset_stats();
        let rows = d.get_in(1, &[2, 4, 6, 99]).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(d.statement_stats().statements, 1);
        assert_eq!(d.statement_stats().rows_returned, 3);
    }

    #[test]
    fn range_is_inclusive_and_ordered() {
        let mut d = db();
        for c in 0..20 {
            d.put(Key::new(7, c), &[c as u8]).unwrap();
        }
        d.put(Key::new(8, 0), b"other-array").unwrap();
        let rows = d.get_range(7, 5, 9).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].0, Key::new(7, 5));
        assert_eq!(rows[4].0, Key::new(7, 9));
    }

    #[test]
    fn range_does_not_leak_across_arrays() {
        let mut d = db();
        d.put(Key::new(1, u64::MAX), b"a").unwrap();
        d.put(Key::new(2, 0), b"b").unwrap();
        let rows = d.get_range(1, 0, u64::MAX).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0.array_id, 1);
    }

    #[test]
    fn delete_row() {
        let mut d = db();
        d.put(Key::new(1, 1), b"x").unwrap();
        assert!(d.delete(Key::new(1, 1)).unwrap());
        assert_eq!(d.get(Key::new(1, 1)).unwrap(), None);
    }

    #[test]
    fn large_chunks_round_trip() {
        let mut d = db();
        let big: Vec<u8> = (0..1_000_000u32).map(|i| (i % 255) as u8).collect();
        d.put(Key::new(1, 0), &big).unwrap();
        assert_eq!(d.get(Key::new(1, 0)).unwrap().unwrap(), big);
    }

    #[test]
    fn file_backed_db() {
        let dir = std::env::temp_dir().join(format!("relstore-db-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut d = Db::create_file(&dir.join("t.db"), DbOptions::default()).unwrap();
        for c in 0..100 {
            d.put(Key::new(1, c), &c.to_le_bytes()).unwrap();
        }
        d.flush().unwrap();
        let rows = d.get_range(1, 0, 99).unwrap();
        assert_eq!(rows.len(), 100);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn small_pool_still_correct() {
        let mut d = Db::open_memory(DbOptions {
            pool_pages: 2,
            latency: LatencyModel::none(),
        })
        .unwrap();
        for c in 0..500u64 {
            d.put(Key::new(1, c), &c.to_le_bytes()).unwrap();
        }
        for c in (0..500u64).step_by(17) {
            assert_eq!(
                d.get(Key::new(1, c)).unwrap().unwrap(),
                c.to_le_bytes().to_vec()
            );
        }
        assert!(d.pool_stats().evictions > 0, "tiny pool must evict");
    }

    #[test]
    fn latency_is_charged_per_statement() {
        use std::time::{Duration, Instant};
        let mut d = Db::open_memory(DbOptions {
            pool_pages: 64,
            latency: LatencyModel {
                per_statement: Duration::from_micros(300),
                per_row: Duration::ZERO,
                per_kib: Duration::ZERO,
            },
        })
        .unwrap();
        for c in 0..8 {
            d.put(Key::new(1, c), b"x").unwrap();
        }
        let t = Instant::now();
        for c in 0..8 {
            d.get(Key::new(1, c)).unwrap();
        }
        let eight_statements = t.elapsed();
        let t = Instant::now();
        d.get_in(1, &(0..8).collect::<Vec<_>>()).unwrap();
        let one_statement = t.elapsed();
        assert!(
            eight_statements > one_statement * 3,
            "batching must amortize per-statement cost: {eight_statements:?} vs {one_statement:?}"
        );
    }
}
