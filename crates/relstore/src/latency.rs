//! The client–server latency model.
//!
//! In the thesis setup SSDM talks to a MySQL server over JDBC-style
//! round trips, so the dominant cost of the naive retrieval strategy is
//! *per-statement* overhead, while row and byte transfer costs scale
//! with the result size (§6.3). This model charges a configurable cost
//! for each component by spinning a calibrated busy-wait, making the
//! embedded store behave — in relative terms — like the remote RDBMS.

use std::time::{Duration, Instant};

/// Per-operation simulated costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed cost per SQL statement (round trip + parse + plan).
    pub per_statement: Duration,
    /// Cost per row returned.
    pub per_row: Duration,
    /// Cost per KiB of payload transferred.
    pub per_kib: Duration,
}

impl LatencyModel {
    /// No simulated latency: pure embedded-engine time.
    pub fn none() -> Self {
        LatencyModel {
            per_statement: Duration::ZERO,
            per_row: Duration::ZERO,
            per_kib: Duration::ZERO,
        }
    }

    /// A local-socket RDBMS: cheap but non-trivial round trips.
    /// These defaults are in the ratio reported for local MySQL setups:
    /// ~100µs per statement, ~1µs per row, ~2µs per KiB.
    pub fn local_dbms() -> Self {
        LatencyModel {
            per_statement: Duration::from_micros(100),
            per_row: Duration::from_micros(1),
            per_kib: Duration::from_micros(2),
        }
    }

    /// A networked RDBMS one switch away (~0.5ms RTT).
    pub fn networked_dbms() -> Self {
        LatencyModel {
            per_statement: Duration::from_micros(500),
            per_row: Duration::from_micros(2),
            per_kib: Duration::from_micros(8),
        }
    }

    /// Total charge for one statement returning `rows` rows and `bytes`
    /// payload bytes.
    pub fn charge(&self, rows: usize, bytes: usize) -> Duration {
        self.per_statement + self.per_row * rows as u32 + self.per_kib * bytes.div_ceil(1024) as u32
    }

    /// Busy-wait for the charged duration (sleeping is too coarse for
    /// sub-millisecond charges).
    pub fn apply(&self, rows: usize, bytes: usize) {
        busy_wait(self.charge(rows, bytes));
    }
}

/// Wait for `d` by *parking* the thread (`thread::sleep`) instead of
/// spinning. A real client–server round trip is an I/O wait, not CPU
/// work: concurrent connections overlap their waits even on a single
/// core. The parallel retrieval pipeline charges its simulated latency
/// this way so worker threads genuinely overlap round trips, at the
/// cost of the OS timer's coarser (tens of microseconds) granularity.
pub fn park_wait(d: Duration) {
    if !d.is_zero() {
        std::thread::sleep(d);
    }
}

/// Busy-wait for `d` (sleeping is too coarse for sub-millisecond
/// charges). Also used by the storage fault injector to simulate
/// latency spikes with the same mechanism as statement latency.
pub fn busy_wait(d: Duration) {
    if d.is_zero() {
        return;
    }
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_composition() {
        let m = LatencyModel {
            per_statement: Duration::from_micros(100),
            per_row: Duration::from_micros(10),
            per_kib: Duration::from_micros(1),
        };
        assert_eq!(m.charge(0, 0), Duration::from_micros(100));
        assert_eq!(m.charge(5, 0), Duration::from_micros(150));
        assert_eq!(m.charge(0, 2048), Duration::from_micros(102));
        assert_eq!(
            m.charge(0, 1),
            Duration::from_micros(101),
            "partial KiB rounds up"
        );
    }

    #[test]
    fn none_is_free() {
        assert!(LatencyModel::none().charge(100, 1 << 20).is_zero());
    }

    #[test]
    fn apply_waits_roughly() {
        let m = LatencyModel {
            per_statement: Duration::from_micros(200),
            per_row: Duration::ZERO,
            per_kib: Duration::ZERO,
        };
        let t = Instant::now();
        m.apply(0, 0);
        assert!(t.elapsed() >= Duration::from_micros(200));
    }
}
