//! An embedded page-based relational storage substrate.
//!
//! The SciSPARQL evaluation (thesis §6.2–6.3) stores array chunks in a
//! relational back-end table keyed `(array_id, chunk_id)` with a
//! clustered index, and compares retrieval strategies that differ in how
//! many SQL statements they issue (one per chunk, an `IN`-list, or range
//! queries produced by the Sequence Pattern Detector). This crate
//! reproduces that substrate without an external RDBMS:
//!
//! * [`Pager`] — page storage, in memory or in a file;
//! * [`BufferPool`] — an LRU page cache with hit/miss statistics;
//! * [`BPlusTree`] — a clustered B+-tree of 16-byte keys with
//!   overflow-chain values (chunks may exceed the page size);
//! * [`Db`] — the "SQL" surface: point, `IN`-list and range lookups,
//!   each counted as one *statement* and charged a configurable
//!   per-statement latency that models the client–server round trip of
//!   the paper's MySQL setup.
//!
//! The observable quantities the paper's experiments depend on —
//! statements issued, rows fetched, pages touched, buffer hit rate,
//! sequential-vs-random access cost — are all first-class here.

mod btree;
mod buffer;
mod db;
mod latency;
mod pager;

pub use btree::BPlusTree;
pub use buffer::{BufferPool, PoolStats};
pub use db::{Db, DbOptions, Key, StatementStats};
pub use latency::{busy_wait, park_wait, LatencyModel};
pub use pager::{PageId, Pager, StoreError, PAGE_SIZE};

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StoreError>;
