//! A clustered B+-tree over 16-byte keys with overflow-chain values.
//!
//! This is the physical structure behind the back-end's chunk table
//! (thesis §6.2.1): rows are clustered by `(array_id, chunk_id)` so a
//! range query over consecutive chunk ids is a sequential leaf scan,
//! while point lookups pay a full root-to-leaf descent each — the
//! asymmetry the retrieval-strategy experiments measure.
//!
//! Layout (page size 4096):
//! * internal: `[tag=1][nkeys:u16][pad:u8][child0:u32]` then
//!   `nkeys × (key:16, child:u32)` entries;
//! * leaf: `[tag=2][nkeys:u16][pad:u8][next_leaf:u32]` then
//!   `nkeys × (key:16, val_len:u32, overflow:u32)` entries;
//! * value: `[tag=3][next:u32][used:u16]` then payload bytes.
//!
//! Deletion removes leaf entries without rebalancing; freed value pages
//! are recycled through a free list.

use crate::buffer::BufferPool;
use crate::pager::{PageId, StoreError, PAGE_SIZE};
use crate::Result;

/// Fixed-width tree key (big-endian composite sorts correctly bytewise).
pub type TreeKey = [u8; 16];

const TAG_INTERNAL: u8 = 1;
const TAG_LEAF: u8 = 2;
const TAG_VALUE: u8 = 3;

const HDR: usize = 8;
const INT_ENTRY: usize = 20; // key(16) + child(4)
const LEAF_ENTRY: usize = 24; // key(16) + len(4) + overflow(4)
const VAL_HDR: usize = 7; // tag(1) + next(4) + used(2)
const VAL_CAP: usize = PAGE_SIZE - VAL_HDR;

// One entry of slack is reserved so a node can temporarily hold
// MAX+1 entries between insertion and the split that follows.
const MAX_INT_KEYS: usize = (PAGE_SIZE - HDR) / INT_ENTRY - 1; // 203
const MAX_LEAF_KEYS: usize = (PAGE_SIZE - HDR) / LEAF_ENTRY - 1; // 169

#[inline]
fn get_u16(b: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([b[off], b[off + 1]])
}

#[inline]
fn put_u16(b: &mut [u8], off: usize, v: u16) {
    b[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

#[inline]
fn get_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
}

#[inline]
fn put_u32(b: &mut [u8], off: usize, v: u32) {
    b[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

#[inline]
fn get_key(b: &[u8], off: usize) -> TreeKey {
    b[off..off + 16].try_into().expect("16-byte slice")
}

/// The B+-tree handle: root id plus a free list of recycled value pages.
/// All operations borrow the buffer pool explicitly so one pool can be
/// shared by several trees.
pub struct BPlusTree {
    root: PageId,
    free_head: Option<PageId>,
    /// Logical counters for experiments.
    pub leaf_reads: u64,
    pub descents: u64,
}

impl BPlusTree {
    /// Create an empty tree: the root starts as an empty leaf.
    pub fn create(pool: &mut BufferPool) -> Result<Self> {
        let root = pool.allocate()?;
        pool.with_page_mut(root, |p| {
            p[0] = TAG_LEAF;
            put_u16(p, 1, 0);
            put_u32(p, 4, 0);
        })?;
        Ok(BPlusTree {
            root,
            free_head: None,
            leaf_reads: 0,
            descents: 0,
        })
    }

    pub fn root(&self) -> PageId {
        self.root
    }

    // -----------------------------------------------------------------
    // Value chains
    // -----------------------------------------------------------------

    fn alloc_value_page(&mut self, pool: &mut BufferPool) -> Result<PageId> {
        if let Some(id) = self.free_head {
            let next = pool.with_page(id, |p| get_u32(p, 1))?;
            self.free_head = if next == 0 { None } else { Some(next) };
            return Ok(id);
        }
        pool.allocate()
    }

    fn write_value(&mut self, pool: &mut BufferPool, value: &[u8]) -> Result<PageId> {
        let mut chunks: Vec<&[u8]> = value.chunks(VAL_CAP).collect();
        if chunks.is_empty() {
            chunks.push(&[]);
        }
        let pages: Vec<PageId> = (0..chunks.len())
            .map(|_| self.alloc_value_page(pool))
            .collect::<Result<_>>()?;
        for (i, part) in chunks.iter().enumerate() {
            let next = pages.get(i + 1).copied().unwrap_or(0);
            pool.with_page_mut(pages[i], |p| {
                p[0] = TAG_VALUE;
                put_u32(p, 1, next);
                put_u16(p, 5, part.len() as u16);
                p[VAL_HDR..VAL_HDR + part.len()].copy_from_slice(part);
            })?;
        }
        Ok(pages[0])
    }

    fn read_value(&self, pool: &mut BufferPool, head: PageId, len: usize) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(len);
        let mut cur = head;
        while out.len() < len {
            let (next, part): (u32, Vec<u8>) = pool.with_page(cur, |p| {
                if p[0] != TAG_VALUE {
                    return Err(StoreError::Corrupt(format!(
                        "page {cur} is not a value page"
                    )));
                }
                let used = get_u16(p, 5) as usize;
                Ok((get_u32(p, 1), p[VAL_HDR..VAL_HDR + used].to_vec()))
            })??;
            out.extend_from_slice(&part);
            if next == 0 {
                break;
            }
            cur = next;
        }
        if out.len() != len {
            return Err(StoreError::Corrupt(format!(
                "value chain yielded {} bytes, expected {len}",
                out.len()
            )));
        }
        Ok(out)
    }

    fn free_value_chain(&mut self, pool: &mut BufferPool, head: PageId) -> Result<()> {
        let mut cur = head;
        loop {
            let next = pool.with_page(cur, |p| get_u32(p, 1))?;
            let old_head = self.free_head.unwrap_or(0);
            pool.with_page_mut(cur, |p| {
                put_u32(p, 1, old_head);
            })?;
            self.free_head = Some(cur);
            if next == 0 {
                break;
            }
            cur = next;
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Search
    // -----------------------------------------------------------------

    /// Descend to the leaf that may contain `key`.
    fn find_leaf(&mut self, pool: &mut BufferPool, key: &TreeKey) -> Result<PageId> {
        self.descents += 1;
        let mut cur = self.root;
        loop {
            let (tag, next) = pool.with_page(cur, |p| {
                if p[0] == TAG_LEAF {
                    (TAG_LEAF, 0)
                } else {
                    let n = get_u16(p, 1) as usize;
                    let mut child = get_u32(p, 4);
                    for i in 0..n {
                        let off = HDR + i * INT_ENTRY;
                        if key < &get_key(p, off) {
                            break;
                        }
                        child = get_u32(p, off + 16);
                    }
                    (TAG_INTERNAL, child)
                }
            })?;
            if tag == TAG_LEAF {
                return Ok(cur);
            }
            cur = next;
        }
    }

    /// Get the value stored under `key`.
    pub fn get(&mut self, pool: &mut BufferPool, key: &TreeKey) -> Result<Option<Vec<u8>>> {
        let leaf = self.find_leaf(pool, key)?;
        self.leaf_reads += 1;
        let found = pool.with_page(leaf, |p| {
            let n = get_u16(p, 1) as usize;
            for i in 0..n {
                let off = HDR + i * LEAF_ENTRY;
                if &get_key(p, off) == key {
                    return Some((get_u32(p, off + 16) as usize, get_u32(p, off + 20)));
                }
            }
            None
        })?;
        match found {
            Some((len, head)) => Ok(Some(self.read_value(pool, head, len)?)),
            None => Ok(None),
        }
    }

    /// All `(key, value)` pairs with `lo <= key <= hi`, in key order.
    pub fn range(
        &mut self,
        pool: &mut BufferPool,
        lo: &TreeKey,
        hi: &TreeKey,
    ) -> Result<Vec<(TreeKey, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut leaf = self.find_leaf(pool, lo)?;
        loop {
            self.leaf_reads += 1;
            let (entries, next): (Vec<(TreeKey, usize, PageId)>, u32) =
                pool.with_page(leaf, |p| {
                    let n = get_u16(p, 1) as usize;
                    let mut es = Vec::with_capacity(n);
                    for i in 0..n {
                        let off = HDR + i * LEAF_ENTRY;
                        es.push((
                            get_key(p, off),
                            get_u32(p, off + 16) as usize,
                            get_u32(p, off + 20),
                        ));
                    }
                    (es, get_u32(p, 4))
                })?;
            let mut done = false;
            for (k, len, head) in entries {
                if &k < lo {
                    continue;
                }
                if &k > hi {
                    done = true;
                    break;
                }
                let v = self.read_value(pool, head, len)?;
                out.push((k, v));
            }
            if done || next == 0 {
                break;
            }
            leaf = next;
        }
        Ok(out)
    }

    // -----------------------------------------------------------------
    // Insert
    // -----------------------------------------------------------------

    /// Insert or replace the value under `key`.
    pub fn put(&mut self, pool: &mut BufferPool, key: &TreeKey, value: &[u8]) -> Result<()> {
        let head = self.write_value(pool, value)?;
        let len = value.len() as u32;
        if let Some((sep, right)) = self.insert_rec(pool, self.root, key, len, head)? {
            // Grow a new root.
            let new_root = pool.allocate()?;
            let old_root = self.root;
            pool.with_page_mut(new_root, |p| {
                p[0] = TAG_INTERNAL;
                put_u16(p, 1, 1);
                put_u32(p, 4, old_root);
                p[HDR..HDR + 16].copy_from_slice(&sep);
                put_u32(p, HDR + 16, right);
            })?;
            self.root = new_root;
        }
        Ok(())
    }

    fn insert_rec(
        &mut self,
        pool: &mut BufferPool,
        node: PageId,
        key: &TreeKey,
        len: u32,
        head: PageId,
    ) -> Result<Option<(TreeKey, PageId)>> {
        let tag = pool.with_page(node, |p| p[0])?;
        if tag == TAG_LEAF {
            return self.leaf_insert(pool, node, key, len, head);
        }
        // Internal: find child position.
        let (pos, child) = pool.with_page(node, |p| {
            let n = get_u16(p, 1) as usize;
            let mut child = get_u32(p, 4);
            let mut pos = 0usize;
            for i in 0..n {
                let off = HDR + i * INT_ENTRY;
                if key < &get_key(p, off) {
                    break;
                }
                child = get_u32(p, off + 16);
                pos = i + 1;
            }
            (pos, child)
        })?;
        let Some((sep, right)) = self.insert_rec(pool, child, key, len, head)? else {
            return Ok(None);
        };
        // Insert (sep, right) at `pos` in this internal node.
        let overflow = pool.with_page_mut(node, |p| {
            let n = get_u16(p, 1) as usize;
            // Shift entries right.
            let start = HDR + pos * INT_ENTRY;
            let end = HDR + n * INT_ENTRY;
            p.copy_within(start..end, start + INT_ENTRY);
            p[start..start + 16].copy_from_slice(&sep);
            put_u32(p, start + 16, right);
            put_u16(p, 1, (n + 1) as u16);
            n + 1 > MAX_INT_KEYS
        })?;
        if !overflow {
            return Ok(None);
        }
        // Split internal node: middle key moves up.
        let new_right = pool.allocate()?;
        let (mid_key, moved): (TreeKey, Vec<u8>) = pool.with_page_mut(node, |p| {
            let n = get_u16(p, 1) as usize;
            let mid = n / 2;
            let mid_off = HDR + mid * INT_ENTRY;
            let mid_key = get_key(p, mid_off);
            // Right node gets child = mid entry's child as child0, plus
            // entries mid+1..n.
            let mut moved = Vec::new();
            moved.extend_from_slice(&get_u32(p, mid_off + 16).to_le_bytes());
            moved.extend_from_slice(&p[mid_off + INT_ENTRY..HDR + n * INT_ENTRY]);
            put_u16(p, 1, mid as u16);
            (mid_key, moved)
        })?;
        pool.with_page_mut(new_right, |p| {
            p[0] = TAG_INTERNAL;
            let child0 = u32::from_le_bytes(moved[0..4].try_into().unwrap());
            put_u32(p, 4, child0);
            let rest = &moved[4..];
            let nkeys = rest.len() / INT_ENTRY;
            p[HDR..HDR + rest.len()].copy_from_slice(rest);
            put_u16(p, 1, nkeys as u16);
        })?;
        Ok(Some((mid_key, new_right)))
    }

    fn leaf_insert(
        &mut self,
        pool: &mut BufferPool,
        leaf: PageId,
        key: &TreeKey,
        len: u32,
        head: PageId,
    ) -> Result<Option<(TreeKey, PageId)>> {
        // Replace in place if the key exists, freeing the old chain.
        let replaced = pool.with_page_mut(leaf, |p| {
            let n = get_u16(p, 1) as usize;
            for i in 0..n {
                let off = HDR + i * LEAF_ENTRY;
                if &get_key(p, off) == key {
                    let old_head = get_u32(p, off + 20);
                    put_u32(p, off + 16, len);
                    put_u32(p, off + 20, head);
                    return Some(old_head);
                }
            }
            None
        })?;
        if let Some(old_head) = replaced {
            self.free_value_chain(pool, old_head)?;
            return Ok(None);
        }
        let overflow = pool.with_page_mut(leaf, |p| {
            let n = get_u16(p, 1) as usize;
            let mut pos = n;
            for i in 0..n {
                let off = HDR + i * LEAF_ENTRY;
                if key < &get_key(p, off) {
                    pos = i;
                    break;
                }
            }
            let start = HDR + pos * LEAF_ENTRY;
            let end = HDR + n * LEAF_ENTRY;
            p.copy_within(start..end, start + LEAF_ENTRY);
            p[start..start + 16].copy_from_slice(key);
            put_u32(p, start + 16, len);
            put_u32(p, start + 20, head);
            put_u16(p, 1, (n + 1) as u16);
            n + 1 > MAX_LEAF_KEYS
        })?;
        if !overflow {
            return Ok(None);
        }
        // Split leaf.
        let new_right = pool.allocate()?;
        let (sep, moved, old_next): (TreeKey, Vec<u8>, u32) = pool.with_page_mut(leaf, |p| {
            let n = get_u16(p, 1) as usize;
            let mid = n / 2;
            let sep = get_key(p, HDR + mid * LEAF_ENTRY);
            let moved = p[HDR + mid * LEAF_ENTRY..HDR + n * LEAF_ENTRY].to_vec();
            let old_next = get_u32(p, 4);
            put_u16(p, 1, mid as u16);
            put_u32(p, 4, new_right);
            (sep, moved, old_next)
        })?;
        pool.with_page_mut(new_right, |p| {
            p[0] = TAG_LEAF;
            put_u16(p, 1, (moved.len() / LEAF_ENTRY) as u16);
            put_u32(p, 4, old_next);
            p[HDR..HDR + moved.len()].copy_from_slice(&moved);
        })?;
        Ok(Some((sep, new_right)))
    }

    // -----------------------------------------------------------------
    // Delete
    // -----------------------------------------------------------------

    /// Remove `key`. Returns true if it existed. Leaves are not merged.
    pub fn delete(&mut self, pool: &mut BufferPool, key: &TreeKey) -> Result<bool> {
        let leaf = self.find_leaf(pool, key)?;
        let removed = pool.with_page_mut(leaf, |p| {
            let n = get_u16(p, 1) as usize;
            for i in 0..n {
                let off = HDR + i * LEAF_ENTRY;
                if &get_key(p, off) == key {
                    let head = get_u32(p, off + 20);
                    let start = off + LEAF_ENTRY;
                    let end = HDR + n * LEAF_ENTRY;
                    p.copy_within(start..end, off);
                    put_u16(p, 1, (n - 1) as u16);
                    return Some(head);
                }
            }
            None
        })?;
        match removed {
            Some(head) => {
                self.free_value_chain(pool, head)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    fn key(hi: u64, lo: u64) -> TreeKey {
        let mut k = [0u8; 16];
        k[..8].copy_from_slice(&hi.to_be_bytes());
        k[8..].copy_from_slice(&lo.to_be_bytes());
        k
    }

    fn setup() -> (BufferPool, BPlusTree) {
        let mut pool = BufferPool::new(Pager::in_memory(), 64);
        let tree = BPlusTree::create(&mut pool).unwrap();
        (pool, tree)
    }

    #[test]
    fn put_get_small() {
        let (mut pool, mut tree) = setup();
        tree.put(&mut pool, &key(1, 1), b"hello").unwrap();
        assert_eq!(tree.get(&mut pool, &key(1, 1)).unwrap().unwrap(), b"hello");
        assert_eq!(tree.get(&mut pool, &key(1, 2)).unwrap(), None);
    }

    #[test]
    fn replace_value() {
        let (mut pool, mut tree) = setup();
        tree.put(&mut pool, &key(1, 1), b"old").unwrap();
        tree.put(&mut pool, &key(1, 1), b"new-value").unwrap();
        assert_eq!(
            tree.get(&mut pool, &key(1, 1)).unwrap().unwrap(),
            b"new-value"
        );
    }

    #[test]
    fn large_value_spans_pages() {
        let (mut pool, mut tree) = setup();
        let v: Vec<u8> = (0..20_000).map(|i| (i % 251) as u8).collect();
        tree.put(&mut pool, &key(9, 9), &v).unwrap();
        assert_eq!(tree.get(&mut pool, &key(9, 9)).unwrap().unwrap(), v);
    }

    #[test]
    fn empty_value() {
        let (mut pool, mut tree) = setup();
        tree.put(&mut pool, &key(3, 3), b"").unwrap();
        assert_eq!(tree.get(&mut pool, &key(3, 3)).unwrap().unwrap(), b"");
    }

    #[test]
    fn many_keys_force_splits() {
        let (mut pool, mut tree) = setup();
        let n = 2000u64;
        // Insert in a scrambled order to exercise mid-leaf insertion.
        for i in 0..n {
            let k = (i * 7919) % n;
            tree.put(&mut pool, &key(1, k), format!("v{k}").as_bytes())
                .unwrap();
        }
        for k in 0..n {
            let got = tree.get(&mut pool, &key(1, k)).unwrap().unwrap();
            assert_eq!(got, format!("v{k}").as_bytes(), "key {k}");
        }
    }

    #[test]
    fn range_scan_in_order() {
        let (mut pool, mut tree) = setup();
        for k in 0..500u64 {
            tree.put(&mut pool, &key(2, k), &k.to_le_bytes()).unwrap();
        }
        let rows = tree.range(&mut pool, &key(2, 100), &key(2, 199)).unwrap();
        assert_eq!(rows.len(), 100);
        for (i, (k, v)) in rows.iter().enumerate() {
            assert_eq!(*k, key(2, 100 + i as u64));
            assert_eq!(v.as_slice(), &(100 + i as u64).to_le_bytes());
        }
    }

    #[test]
    fn range_scan_crosses_arrays() {
        let (mut pool, mut tree) = setup();
        tree.put(&mut pool, &key(1, 5), b"a").unwrap();
        tree.put(&mut pool, &key(2, 0), b"b").unwrap();
        let rows = tree
            .range(&mut pool, &key(1, 0), &key(1, u64::MAX))
            .unwrap();
        assert_eq!(rows.len(), 1, "range is bounded by the composite key");
    }

    #[test]
    fn delete_and_reinsert() {
        let (mut pool, mut tree) = setup();
        for k in 0..300u64 {
            tree.put(&mut pool, &key(1, k), b"x").unwrap();
        }
        assert!(tree.delete(&mut pool, &key(1, 150)).unwrap());
        assert!(!tree.delete(&mut pool, &key(1, 150)).unwrap());
        assert_eq!(tree.get(&mut pool, &key(1, 150)).unwrap(), None);
        tree.put(&mut pool, &key(1, 150), b"back").unwrap();
        assert_eq!(tree.get(&mut pool, &key(1, 150)).unwrap().unwrap(), b"back");
    }

    #[test]
    fn freed_chains_are_recycled() {
        let (mut pool, mut tree) = setup();
        let big = vec![7u8; 50_000];
        tree.put(&mut pool, &key(1, 1), &big).unwrap();
        let pages_after_first = pool.pager().page_count();
        tree.delete(&mut pool, &key(1, 1)).unwrap();
        tree.put(&mut pool, &key(1, 2), &big).unwrap();
        let growth = pool.pager().page_count() - pages_after_first;
        assert!(
            growth <= 2,
            "second insert should reuse freed pages, grew by {growth}"
        );
    }

    #[test]
    fn descending_insert_order() {
        let (mut pool, mut tree) = setup();
        for k in (0..800u64).rev() {
            tree.put(&mut pool, &key(1, k), &k.to_le_bytes()).unwrap();
        }
        let rows = tree.range(&mut pool, &key(1, 0), &key(1, 799)).unwrap();
        assert_eq!(rows.len(), 800);
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
