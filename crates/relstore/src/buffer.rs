//! LRU buffer pool over the pager.
//!
//! All B+-tree page accesses go through the pool, so the buffer-size
//! experiments observe realistic caching effects: clustered range scans
//! hit mostly-resident pages while random point lookups thrash a small
//! pool.

use std::collections::HashMap;

use crate::pager::{Page, PageId, Pager, StoreError};

/// Buffer pool statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl PoolStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    page: Page,
    dirty: bool,
    /// Logical clock for LRU.
    last_used: u64,
}

/// A write-back LRU page cache of fixed capacity.
pub struct BufferPool {
    pager: Pager,
    capacity: usize,
    frames: HashMap<PageId, Frame>,
    clock: u64,
    stats: PoolStats,
}

impl BufferPool {
    /// Wrap a pager with a pool holding at most `capacity` pages
    /// (minimum 1).
    pub fn new(pager: Pager, capacity: usize) -> Self {
        BufferPool {
            pager,
            capacity: capacity.max(1),
            frames: HashMap::new(),
            clock: 0,
            stats: PoolStats::default(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
    }

    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    /// Allocate a fresh page and cache it.
    pub fn allocate(&mut self) -> Result<PageId, StoreError> {
        let id = self.pager.allocate()?;
        self.make_room()?;
        self.clock += 1;
        self.frames.insert(
            id,
            Frame {
                page: crate::pager::blank_page(),
                dirty: true,
                last_used: self.clock,
            },
        );
        Ok(id)
    }

    /// Read access: returns a copy-free closure result over the page.
    pub fn with_page<R>(
        &mut self,
        id: PageId,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, StoreError> {
        self.fault_in(id)?;
        self.clock += 1;
        let frame = self.frames.get_mut(&id).expect("just faulted in");
        frame.last_used = self.clock;
        Ok(f(&frame.page[..]))
    }

    /// Write access: mutate the page in place; marks it dirty.
    pub fn with_page_mut<R>(
        &mut self,
        id: PageId,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, StoreError> {
        self.fault_in(id)?;
        self.clock += 1;
        let frame = self.frames.get_mut(&id).expect("just faulted in");
        frame.last_used = self.clock;
        frame.dirty = true;
        Ok(f(&mut frame.page[..]))
    }

    /// Flush all dirty pages to the pager.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        // Drain dirty frames in a stable order for deterministic I/O.
        let mut ids: Vec<PageId> = self
            .frames
            .iter()
            .filter(|(_, fr)| fr.dirty)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            let frame = self.frames.get_mut(&id).expect("listed above");
            self.pager.write(id, &frame.page)?;
            frame.dirty = false;
        }
        Ok(())
    }

    fn fault_in(&mut self, id: PageId) -> Result<(), StoreError> {
        if self.frames.contains_key(&id) {
            self.stats.hits += 1;
            return Ok(());
        }
        self.stats.misses += 1;
        self.make_room()?;
        let page = self.pager.read(id)?;
        self.clock += 1;
        self.frames.insert(
            id,
            Frame {
                page,
                dirty: false,
                last_used: self.clock,
            },
        );
        Ok(())
    }

    fn make_room(&mut self) -> Result<(), StoreError> {
        while self.frames.len() >= self.capacity {
            let victim = self
                .frames
                .iter()
                .min_by_key(|(_, fr)| fr.last_used)
                .map(|(&id, _)| id)
                .expect("frames nonempty when at capacity");
            let frame = self.frames.remove(&victim).expect("chosen from map");
            if frame.dirty {
                self.pager.write(victim, &frame.page)?;
            }
            self.stats.evictions += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    fn pool(cap: usize, pages: usize) -> (BufferPool, Vec<PageId>) {
        let mut pool = BufferPool::new(Pager::in_memory(), cap);
        let ids: Vec<PageId> = (0..pages).map(|_| pool.allocate().unwrap()).collect();
        pool.flush().unwrap();
        (pool, ids)
    }

    #[test]
    fn hits_and_misses() {
        let (mut pool, ids) = pool(2, 4);
        pool.reset_stats();
        // Frames may retain recently allocated pages; force distinct ones.
        pool.with_page(ids[0], |_| ()).unwrap();
        pool.with_page(ids[0], |_| ()).unwrap();
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 2);
        assert!(s.hits >= 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let (mut pool, ids) = pool(2, 3);
        pool.with_page(ids[0], |_| ()).unwrap();
        pool.with_page(ids[1], |_| ()).unwrap();
        pool.with_page(ids[2], |_| ()).unwrap(); // evicts ids[0]
        pool.reset_stats();
        pool.with_page(ids[1], |_| ()).unwrap();
        pool.with_page(ids[2], |_| ()).unwrap();
        assert_eq!(pool.stats().misses, 0, "recent pages stay resident");
        pool.with_page(ids[0], |_| ()).unwrap();
        assert_eq!(pool.stats().misses, 1, "evicted page faults back in");
    }

    #[test]
    fn writes_survive_eviction() {
        let (mut pool, ids) = pool(1, 3);
        pool.with_page_mut(ids[0], |p| p[7] = 99).unwrap();
        // Touch other pages to force eviction of ids[0].
        pool.with_page(ids[1], |_| ()).unwrap();
        pool.with_page(ids[2], |_| ()).unwrap();
        let v = pool.with_page(ids[0], |p| p[7]).unwrap();
        assert_eq!(v, 99);
    }

    #[test]
    fn flush_writes_dirty_pages() {
        let (mut pool, ids) = pool(4, 1);
        pool.with_page_mut(ids[0], |p| p[0] = 5).unwrap();
        pool.flush().unwrap();
        // Read directly from the pager: change must be durable.
        let pager = Pager::in_memory();
        let _ = pager; // structural check happens through pool reuse below
        let v = pool.with_page(ids[0], |p| p[0]).unwrap();
        assert_eq!(v, 5);
    }
}
