//! Behavioural tests of the buffer pool under realistic access
//! patterns: these properties are what make the buffer-size experiment
//! (E2) and the sequential-vs-random comparison meaningful.

use relstore::{Db, DbOptions, Key, LatencyModel};

fn filled_db(pool_pages: usize, rows: u64, value_len: usize) -> Db {
    let mut db = Db::open_memory(DbOptions {
        pool_pages,
        latency: LatencyModel::none(),
    })
    .unwrap();
    let payload = vec![7u8; value_len];
    for k in 0..rows {
        db.put(Key::new(1, k), &payload).unwrap();
    }
    db.flush().unwrap();
    db
}

#[test]
fn sequential_scan_beats_random_on_physical_reads() {
    // A pool big enough for the working set of a scan but far smaller
    // than the whole table.
    let rows = 4000u64;
    let mut db = filled_db(32, rows, 64);
    db.reset_stats();

    // Sequential: one range scan.
    db.get_range(1, 0, rows - 1).unwrap();
    let seq = db.pool_stats();

    // Random: same number of rows touched by shuffled point lookups.
    let mut db2 = filled_db(32, rows, 64);
    db2.reset_stats();
    let mut k = 1u64;
    for _ in 0..rows {
        k = (k * 48271) % rows;
        db2.get(Key::new(1, k)).unwrap();
    }
    let rnd = db2.pool_stats();

    assert!(
        rnd.misses as f64 > seq.misses as f64 * 1.5,
        "random access must fault more: seq {} vs rnd {}",
        seq.misses,
        rnd.misses
    );
}

#[test]
fn bigger_pool_means_fewer_misses() {
    let rows = 2000u64;
    let mut misses = Vec::new();
    for pool in [4usize, 16, 64, 256, 4096] {
        let mut db = filled_db(pool, rows, 32);
        db.reset_stats();
        // A repeated scan workload with some locality.
        for _ in 0..3 {
            db.get_range(1, 0, 499).unwrap();
        }
        misses.push(db.pool_stats().misses);
    }
    assert!(
        misses.windows(2).all(|w| w[0] >= w[1]),
        "misses must be non-increasing in pool size: {misses:?}"
    );
    // With a pool covering the working set, repeat scans hit entirely.
    assert!(misses.last().unwrap() < misses.first().unwrap());
}

#[test]
fn repeated_point_lookups_hit_cache() {
    let mut db = filled_db(128, 100, 32);
    db.get(Key::new(1, 42)).unwrap();
    db.reset_stats();
    for _ in 0..50 {
        db.get(Key::new(1, 42)).unwrap();
    }
    let s = db.pool_stats();
    assert_eq!(s.misses, 0, "hot key must stay resident");
    assert!(s.hits > 0);
}

#[test]
fn hit_rate_reporting() {
    let mut db = filled_db(1024, 10, 16);
    db.reset_stats();
    db.get(Key::new(1, 3)).unwrap();
    db.get(Key::new(1, 3)).unwrap();
    let s = db.pool_stats();
    assert!(s.hit_rate() > 0.0 && s.hit_rate() <= 1.0);
}

#[test]
fn overwrites_do_not_corrupt_neighbours() {
    let mut db = filled_db(8, 500, 48);
    // Overwrite every 7th row with a distinct payload.
    for k in (0..500u64).step_by(7) {
        db.put(Key::new(1, k), &k.to_le_bytes()).unwrap();
    }
    for k in 0..500u64 {
        let v = db.get(Key::new(1, k)).unwrap().unwrap();
        if k % 7 == 0 {
            assert_eq!(v, k.to_le_bytes().to_vec());
        } else {
            assert_eq!(v, vec![7u8; 48]);
        }
    }
}
