//! Model-based property tests: the chunk database must behave exactly
//! like a `BTreeMap<(u64, u64), Vec<u8>>` under random operation mixes.

use std::collections::BTreeMap;

use proptest::prelude::*;
use relstore::{Db, DbOptions, Key, LatencyModel};

#[derive(Debug, Clone)]
enum Op {
    Put(u64, u64, Vec<u8>),
    Get(u64, u64),
    Delete(u64, u64),
    Range(u64, u64, u64),
    In(u64, Vec<u64>),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (
            0u64..4,
            0u64..64,
            prop::collection::vec(any::<u8>(), 0..200)
        )
            .prop_map(|(a, c, v)| Op::Put(a, c, v)),
        (0u64..4, 0u64..64).prop_map(|(a, c)| Op::Get(a, c)),
        (0u64..4, 0u64..64).prop_map(|(a, c)| Op::Delete(a, c)),
        (0u64..4, 0u64..64, 0u64..64).prop_map(|(a, l, h)| Op::Range(a, l.min(h), l.max(h))),
        (0u64..4, prop::collection::vec(0u64..64, 0..10)).prop_map(|(a, cs)| Op::In(a, cs)),
    ];
    prop::collection::vec(op, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn db_matches_btreemap_model(ops in ops(), pool_pages in 2usize..64) {
        let mut db = Db::open_memory(DbOptions {
            pool_pages,
            latency: LatencyModel::none(),
        }).unwrap();
        let mut model: BTreeMap<(u64, u64), Vec<u8>> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Put(a, c, v) => {
                    db.put(Key::new(a, c), &v).unwrap();
                    model.insert((a, c), v);
                }
                Op::Get(a, c) => {
                    let got = db.get(Key::new(a, c)).unwrap();
                    prop_assert_eq!(got.as_ref(), model.get(&(a, c)));
                }
                Op::Delete(a, c) => {
                    let existed = db.delete(Key::new(a, c)).unwrap();
                    prop_assert_eq!(existed, model.remove(&(a, c)).is_some());
                }
                Op::Range(a, lo, hi) => {
                    let got = db.get_range(a, lo, hi).unwrap();
                    let want: Vec<((u64, u64), Vec<u8>)> = model
                        .range((a, lo)..=(a, hi))
                        .map(|(k, v)| (*k, v.clone()))
                        .collect();
                    prop_assert_eq!(got.len(), want.len());
                    for ((k, v), (wk, wv)) in got.iter().zip(&want) {
                        prop_assert_eq!((k.array_id, k.chunk_id), *wk);
                        prop_assert_eq!(v, wv);
                    }
                }
                Op::In(a, cs) => {
                    let got = db.get_in(a, &cs).unwrap();
                    let want: Vec<(u64, Vec<u8>)> = cs
                        .iter()
                        .filter_map(|&c| model.get(&(a, c)).map(|v| (c, v.clone())))
                        .collect();
                    prop_assert_eq!(got.len(), want.len());
                    for ((k, v), (wc, wv)) in got.iter().zip(&want) {
                        prop_assert_eq!(k.chunk_id, *wc);
                        prop_assert_eq!(v, wv);
                    }
                }
            }
        }
    }

    /// Bulk sequential load then full scan: order and contents intact
    /// across leaf splits, including values larger than one page.
    #[test]
    fn bulk_load_scan(n in 1usize..600, value_len in 0usize..9000) {
        let mut db = Db::open_memory(DbOptions::default()).unwrap();
        let payload: Vec<u8> = (0..value_len).map(|i| (i % 251) as u8).collect();
        for c in 0..n as u64 {
            let mut v = payload.clone();
            v.extend_from_slice(&c.to_le_bytes());
            db.put(Key::new(1, c), &v).unwrap();
        }
        let rows = db.get_range(1, 0, n as u64).unwrap();
        prop_assert_eq!(rows.len(), n);
        for (i, (k, v)) in rows.iter().enumerate() {
            prop_assert_eq!(k.chunk_id, i as u64);
            prop_assert_eq!(&v[value_len..], &(i as u64).to_le_bytes());
        }
    }
}
