//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter`,
//! the `criterion_group!`/`criterion_main!` macros and `black_box` —
//! with a plain measure-and-print harness instead of criterion's
//! statistical machinery. `cargo bench -- --test` (smoke mode, one
//! iteration per bench) is honoured like in real criterion.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// `cargo bench -- --test`: run each bench once, skip measurement.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, &name.into(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_bench(self.criterion, &full, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, name: &str, mut f: F) {
    if c.test_mode {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("Testing {name} ... ok");
        return;
    }
    // Warm-up with a single iteration to estimate per-iteration cost.
    let mut probe = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    while warm_start.elapsed() < c.warm_up_time {
        f(&mut probe);
    }
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));
    let budget = c.measurement_time.as_nanos() / c.sample_size.max(1) as u128;
    let iterations = (budget / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..c.sample_size.max(1) {
        let mut b = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iterations.max(1) as u32;
        best = best.min(per);
        total += per;
    }
    let mean = total / c.sample_size.max(1) as u32;
    println!("{name}: mean {mean:?}/iter, best {best:?}/iter ({iterations} iters/sample)");
}

/// `criterion_group!(name, target, ...)` or the struct-like form with
/// `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
