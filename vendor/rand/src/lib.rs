//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the rand 0.8 API the workspace
//! actually uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` extension methods `gen`, `gen_range` and `gen_bool`. The
//! generator is SplitMix64 — statistically fine for test-data and
//! workload generation, deterministic for a given seed (which is all
//! the callers rely on). It is **not** the real StdRng (ChaCha12) and
//! must not be used for cryptography.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling of a "standard" value of a type (the `Standard`
/// distribution of real rand).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// `RngCore` like in real rand.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 behind the `StdRng` name (see crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-advance once so seeds 0 and 1 do not share a prefix.
            let mut rng = StdRng { state };
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
