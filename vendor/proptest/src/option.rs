//! `prop::option` — optional-value strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `prop::option::of(strategy)`: `None` a quarter of the time.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() % 4 == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
