//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of proptest's API that the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `boxed`, range and tuple strategies, [`Just`], regex-subset string
//! strategies, `prop::collection::vec`, `prop::option::of`, `any::<T>()`,
//! and the `proptest!` / `prop_oneof!` / `prop_assert!` family of macros.
//!
//! Differences from real proptest, deliberate for simplicity:
//!
//! * **No shrinking** — a failing case reports the generated inputs via
//!   the panic message (strategies generate `Debug`-free values, so the
//!   macro reports the failing assertion, not the inputs).
//! * Generation is driven by a SplitMix64 RNG seeded from the test's
//!   module path and name, so runs are deterministic. Set
//!   `PROPTEST_SEED=<n>` to perturb the seed and explore new cases.
//! * String strategies support the character-class subset of regex
//!   actually used in this workspace: `[...]` classes with ranges and
//!   `\n`/`\t`/`\\` escapes, literal characters, and the quantifiers
//!   `{n}`, `{m,n}`, `?`, `*`, `+`.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// The top-level macro: a block of `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __passed: u32 = 0;
                let mut __attempts: u32 = 0;
                while __passed < __cfg.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __cfg.cases.saturating_mul(20).max(1000),
                        "proptest: too many rejected cases (prop_assume! filters too much)"
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(m)) => {
                            panic!("proptest case {} failed: {}", __passed + 1, m)
                        }
                    }
                }
            }
        )*
    };
}

/// Choose uniformly among several strategies producing the same value
/// type (no weights — the workspace does not use them).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)*), __a, __b),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                __a, __b
            )));
        }
    }};
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
