//! Test-runner plumbing: configuration, the deterministic RNG, and the
//! case-level error type the assertion macros return.

/// Per-`proptest!` block configuration (only `cases` is honoured).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of *passing* cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the full-workspace
        // test run fast while still exploring a useful input space.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// SplitMix64, seeded from the test name so every test explores its own
/// deterministic sequence. `PROPTEST_SEED` perturbs all tests at once.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = extra.trim().parse::<u64>() {
                h = h.wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
        }
        TestRng { state: h }
    }

    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + ((self.next_u64() as u128 % span) as usize)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
