//! String strategies from regex-subset patterns.
//!
//! `&str` implements [`Strategy`] like in real proptest, generating
//! strings that match the pattern. Supported syntax (the subset used by
//! this workspace's tests): character classes `[...]` with ranges and
//! `\n`/`\t`/`\r`/`\\` escapes, literal characters, escapes outside
//! classes, and the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (the
//! unbounded ones cap at 8 repetitions).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
struct CharSet {
    /// Inclusive `(lo, hi)` codepoint ranges.
    ranges: Vec<(char, char)>,
}

impl CharSet {
    fn size(&self) -> usize {
        self.ranges
            .iter()
            .map(|&(lo, hi)| hi as usize - lo as usize + 1)
            .sum()
    }

    fn pick(&self, rng: &mut TestRng) -> char {
        let mut k = rng.usize_inclusive(0, self.size() - 1);
        for &(lo, hi) in &self.ranges {
            let n = hi as usize - lo as usize + 1;
            if k < n {
                return char::from_u32(lo as u32 + k as u32).expect("valid range");
            }
            k -= n;
        }
        unreachable!("pick index within size")
    }
}

#[derive(Debug, Clone)]
struct Item {
    set: CharSet,
    min: usize,
    max: usize,
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> CharSet {
    let mut ranges = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated [ in pattern {pattern:?}"));
        match c {
            ']' => break,
            '\\' => {
                let e = unescape(chars.next().expect("escape target"));
                ranges.push((e, e));
            }
            lo => {
                if chars.peek() == Some(&'-') {
                    let mut ahead = chars.clone();
                    ahead.next(); // consume '-'
                    match ahead.peek() {
                        Some(']') | None => ranges.push((lo, lo)), // trailing literal '-'
                        Some(_) => {
                            chars.next();
                            let mut hi = chars.next().expect("range end");
                            if hi == '\\' {
                                hi = unescape(chars.next().expect("escape target"));
                            }
                            assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                            ranges.push((lo, hi));
                        }
                    }
                } else {
                    ranges.push((lo, lo));
                }
            }
        }
    }
    assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
    CharSet { ranges }
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                body.push(c);
            }
            match body.split_once(',') {
                Some((m, n)) => {
                    let m: usize = m.trim().parse().expect("quantifier lower bound");
                    let n: usize = n.trim().parse().expect("quantifier upper bound");
                    assert!(m <= n, "inverted quantifier in pattern {pattern:?}");
                    (m, n)
                }
                None => {
                    let n: usize = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn parse(pattern: &str) -> Vec<Item> {
    let mut chars = pattern.chars().peekable();
    let mut items = Vec::new();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => parse_class(&mut chars, pattern),
            '\\' => {
                let e = unescape(chars.next().expect("escape target"));
                CharSet {
                    ranges: vec![(e, e)],
                }
            }
            lit => CharSet {
                ranges: vec![(lit, lit)],
            },
        };
        let (min, max) = parse_quantifier(&mut chars, pattern);
        items.push(Item { set, min, max });
    }
    items
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for item in parse(self) {
            let n = rng.usize_inclusive(item.min, item.max);
            for _ in 0..n {
                out.push(item.set.pick(rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_quantifier() {
        let mut rng = TestRng::from_seed(42);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn printable_with_escapes() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..200 {
            let s = "[ -~\\n\\t]{0,200}".generate(&mut rng);
            assert!(s.len() <= 200);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));
        }
    }
}
