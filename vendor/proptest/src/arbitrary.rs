//! `any::<T>()` — full-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait ArbitraryValue {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    /// Finite doubles over a wide range (no NaN/inf: they break the
    /// equality-based properties these tests state).
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.f64_unit() - 0.5) * 2.0e12
    }
}

impl ArbitraryValue for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text well-formed everywhere.
        (0x20u8 + (rng.next_u64() % 95) as u8) as char
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}
