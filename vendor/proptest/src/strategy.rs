//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking:
/// `generate` produces one independent random value per call.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.reason
        );
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy (what `prop_oneof!` branches become).
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among same-typed strategies.
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_inclusive(0, self.branches.len() - 1);
        self.branches[i].generate(rng)
    }
}

// --- ranges ----------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = rng.next_u64() as u128 % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = rng.next_u64() as u128 % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

// --- tuples ----------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g, H / h);
